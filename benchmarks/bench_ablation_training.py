"""Ablation benchmark (experiment E8): the design choices of Sec. III-C.

The paper calls out two training-side design decisions without a dedicated
figure: the row normalization applied before every binary-memory refresh
(Sec. III-C-4, "prevents any single vector from dominating") and the
learning-rate range (0.01--0.1, Sec. III-C-3).  This benchmark quantifies
both at benchmark scale:

* MEMHD trained with normalization ("zscore" / "l2") vs. without ("none"),
* a learning-rate sweep across and beyond the paper's recommended range.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_EPOCHS, print_section

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.reporting import format_table


def _train(dataset, config, seed=3):
    model = MEMHDModel(dataset.num_features, dataset.num_classes, config, rng=seed)
    history = model.fit(dataset.train_features, dataset.train_labels)
    return model.score(dataset.test_features, dataset.test_labels), history


def test_ablation_normalization(benchmark, fmnist):
    base = MEMHDConfig(dimension=128, columns=64, epochs=BENCH_EPOCHS, seed=0)

    def run():
        results = {}
        for mode in ("zscore", "l2", "none"):
            accuracy, history = _train(fmnist, base.with_updates(normalization=mode))
            results[mode] = (accuracy, history.final_train_accuracy)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "normalization": mode,
            "test_accuracy_%": 100.0 * accuracy,
            "train_accuracy_%": 100.0 * train_accuracy,
        }
        for mode, (accuracy, train_accuracy) in results.items()
    ]
    print_section(
        "Ablation: row normalization before binary-AM refresh (FMNIST profile, 128x64)",
        format_table(rows, float_format="{:.1f}"),
    )

    chance = 1.0 / fmnist.num_classes
    assert all(accuracy > chance for accuracy, _ in results.values())
    # The normalized variants must not lose to the unnormalized one by a
    # meaningful margin (the paper includes the step because it helps or is
    # neutral; it should never be clearly harmful).
    best_normalized = max(results["zscore"][0], results["l2"][0])
    assert best_normalized >= results["none"][0] - 0.05


def test_ablation_learning_rate(benchmark, fmnist):
    base = MEMHDConfig(dimension=128, columns=64, epochs=BENCH_EPOCHS, seed=0)
    rates = (0.005, 0.01, 0.05, 0.1, 0.5)

    def run():
        return {
            rate: _train(fmnist, base.with_updates(learning_rate=rate))[0]
            for rate in rates
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"learning_rate": rate, "test_accuracy_%": 100.0 * accuracy}
        for rate, accuracy in results.items()
    ]
    print_section(
        "Ablation: learning-rate sweep (FMNIST profile, 128x64)",
        format_table(rows, float_format="{:.3g}"),
    )

    chance = 1.0 / fmnist.num_classes
    assert all(accuracy > chance for accuracy in results.values())
    # The paper's recommended range should contain a configuration at least
    # as good as the extremes of the sweep.
    recommended_best = max(results[0.01], results[0.05], results[0.1])
    assert recommended_best >= max(results[0.005], results[0.5]) - 0.05
