"""Extension benchmark (experiment E10): ADC resolution vs. accuracy and energy.

Real IMC macros digitize each column's analog sum with a finite-resolution
ADC, and ADC energy is the dominant readout cost (it roughly doubles per
extra bit).  MEMHD's associative search accumulates at most ``D`` ones per
column, so the required ADC resolution is set by the AM's dimension, not by
the 10k-dimensional hypervectors of conventional HDC -- a further, implicit
advantage of the paper's small-D design.  This benchmark sweeps the column
ADC resolution for a trained MEMHD 128x128 model and reports accuracy next
to the relative ADC energy.
"""

from __future__ import annotations

import pytest
from conftest import BENCH_EPOCHS, print_section

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.reporting import format_table
from repro.imc.adc import adc_energy_scale, evaluate_adc_sweep
from repro.imc.array import IMCArrayConfig

BIT_SETTINGS = (2, 3, 4, 5, 6, 8, None)


def test_adc_precision_sweep(benchmark, mnist):
    def run():
        model = MEMHDModel(
            mnist.num_features,
            mnist.num_classes,
            MEMHDConfig(dimension=128, columns=128, epochs=BENCH_EPOCHS, seed=0),
            rng=0,
        )
        model.fit(mnist.train_features, mnist.train_labels)
        results = evaluate_adc_sweep(
            model,
            mnist.test_features,
            mnist.test_labels,
            bit_settings=BIT_SETTINGS,
            array_config=IMCArrayConfig(128, 128),
        )
        return model, results

    model, results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "adc_bits": "ideal" if bits is None else bits,
            "test_accuracy_%": 100.0 * accuracy,
            "relative_adc_energy": adc_energy_scale(bits),
        }
        for bits, accuracy in results.items()
    ]
    print_section(
        "ADC resolution sweep: MEMHD 128x128 associative search (MNIST profile)",
        format_table(rows, float_format="{:.3g}"),
    )

    ideal = results[None]
    software = model.score(mnist.test_features, mnist.test_labels)
    # Ideal readout is exactly the software model.
    assert ideal == pytest.approx(software)
    # D = 128 sums fit in 7 bits, so 8 bits are lossless; 6 bits (half-LSB
    # error of ~1 count on a 0..128 sum) may cost a few points because the
    # multi-centroid decision margins are only a handful of counts.
    assert results[8] == pytest.approx(ideal)
    assert results[6] >= ideal - 0.15
    # Very coarse ADCs lose accuracy (monotone, no free lunch).
    assert results[2] <= results[6] + 0.02
