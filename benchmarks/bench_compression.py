"""Extension benchmark (experiment E12): post-training AM compression.

MEMHD fixes the AM size to the target array at training time; this study
quantifies how gracefully a *trained* multi-centroid AM shrinks when columns
must be reclaimed afterwards (deployment to a narrower macro, or making room
for new classes via the online-learning path).  Usage-ranked pruning
(`repro.core.compression.prune_centroids`) is swept from the full AM down to
one centroid per class and the accuracy-vs-columns curve is printed.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_EPOCHS, print_section

from repro.core.compression import merge_similar_centroids, prune_centroids
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.reporting import format_table


def test_compression_pruning_curve(benchmark, mnist):
    def run():
        model = MEMHDModel(
            mnist.num_features,
            mnist.num_classes,
            MEMHDConfig(dimension=128, columns=128, epochs=BENCH_EPOCHS, seed=0),
            rng=0,
        )
        model.fit(mnist.train_features, mnist.train_labels)
        am = model.associative_memory
        train_queries = model.encode_binary(mnist.train_features).astype(np.float64)
        test_queries = model.encode_binary(mnist.test_features).astype(np.float64)

        results = []
        for target in (128, 96, 64, 32, 16, mnist.num_classes):
            pruned, report = prune_centroids(
                am, train_queries, mnist.train_labels, target_columns=target
            )
            accuracy = float(np.mean(pruned.predict(test_queries) == mnist.test_labels))
            results.append(
                {
                    "columns": pruned.num_columns,
                    "removed": report.columns_removed,
                    "am_kib": pruned.memory_bits() / 8192,
                    "test_accuracy_%": 100.0 * accuracy,
                }
            )
        merged, merge_report = merge_similar_centroids(am, max_hamming_fraction=0.02)
        merged_accuracy = float(
            np.mean(merged.predict(test_queries) == mnist.test_labels)
        )
        return results, merge_report, merged_accuracy

    results, merge_report, merged_accuracy = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    body = format_table(results, float_format="{:.1f}")
    body += (
        f"\nnear-duplicate merge (<=2% Hamming): removed "
        f"{merge_report.columns_removed} columns, accuracy {merged_accuracy * 100:.1f}%"
    )
    print_section(
        "Post-training AM compression: usage-ranked pruning (MEMHD 128x128, MNIST profile)",
        body,
    )

    by_columns = {row["columns"]: row for row in results}
    full = by_columns[128]["test_accuracy_%"]
    chance = 100.0 / mnist.num_classes
    # Halving the AM keeps most of the accuracy; single-centroid-per-class is
    # the worst point of the curve (that is exactly the regime the paper's
    # multi-centroid design escapes).
    assert by_columns[64]["test_accuracy_%"] >= full - 20.0
    assert by_columns[mnist.num_classes]["test_accuracy_%"] <= by_columns[64]["test_accuracy_%"] + 1.0
    assert all(row["test_accuracy_%"] > chance for row in results)
    # Merging near-duplicates is (almost) free.
    assert merged_accuracy * 100.0 >= full - 5.0
