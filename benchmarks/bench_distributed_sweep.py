"""Distributed elastic sweep: pool-vs-oneshot equivalence and overhead.

The distributed layer (lease claims, heartbeats, the shared store) must
buy scale-out without changing *what* is computed.  This benchmark runs
the same grid twice -- a single-process oneshot sweep and a 2-worker
elastic pool over a shared store directory -- gates on the differential
(``ResultStore.diff`` clean in both directions), and prints the wall
times side by side.  Timing is informational: on one machine the pool
pays process spawn + polling against true parallelism, so the interesting
number is the protocol overhead staying small, not a speedup.
"""

from __future__ import annotations

import time

from conftest import BENCH_EPOCHS, print_section

from repro.eval.distributed import run_distributed_pool, store_paths
from repro.eval.reporting import format_table
from repro.eval.store import ResultStore
from repro.eval.sweep import SweepSpec, run_sweep


def _grid(smoke: bool) -> SweepSpec:
    return SweepSpec(
        models=("memhd", "basichdc"),
        datasets=("mnist",),
        dimensions=(32,) if smoke else (64, 128),
        columns=(16,) if smoke else (32,),
        engines=("float",),
        scale=0.01 if smoke else 0.05,
        epochs=1 if smoke else BENCH_EPOCHS,
        seed=13,
    )


def test_distributed_pool_matches_oneshot(benchmark, smoke, tmp_path):
    spec = _grid(smoke)
    cells = len(spec.expand())

    oneshot = ResultStore(tmp_path / "oneshot.jsonl")
    start = time.perf_counter()
    result = run_sweep(spec, oneshot, workers=1)
    oneshot_s = time.perf_counter() - start
    assert result.ok

    pool_dir = tmp_path / "pool"

    def run_pool():
        return run_distributed_pool(spec, pool_dir, workers=2, ttl_s=10.0, poll_s=0.05)

    start = time.perf_counter()
    summary = benchmark.pedantic(run_pool, rounds=1, iterations=1)
    pool_s = time.perf_counter() - start
    assert summary["cells"] == cells

    # The correctness gate: scale-out must not change any deterministic
    # metric, in either direction.
    pool_store = ResultStore(store_paths(pool_dir)["results"])
    forward = oneshot.diff(pool_store)
    assert forward.is_clean, f"pool drifted from oneshot: {forward.summary()}"
    assert pool_store.diff(oneshot).is_clean

    print_section(
        "Distributed elastic sweep vs oneshot (identical grid, 2 workers)",
        format_table(
            [
                {"runner": "oneshot (1 proc)", "cells": cells, "wall_s": oneshot_s},
                {"runner": "elastic pool (2 procs)", "cells": cells, "wall_s": pool_s},
            ],
            float_format="{:.2f}",
        ),
    )
