"""Fig. 3 -- accuracy vs. memory requirement (experiment E2).

For each dataset profile the paper plots test accuracy against total model
memory (KB) for MEMHD at several DxC sizes and for the four baselines at
several dimensionalities.  This benchmark regenerates the same series at
laptop scale (reduced sample counts, epochs and baseline dimensions -- the
absolute accuracies differ from the paper, the *ordering* is what matters:
MEMHD reaches baseline-level accuracy at a fraction of the memory).
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import BENCH_EPOCHS, BENCH_TRIALS, print_section

from repro.baselines import (
    BasicHDC,
    BasicHDCConfig,
    LeHDC,
    LeHDCConfig,
    QuantHD,
    QuantHDConfig,
    SearcHD,
    SearcHDConfig,
)
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.experiments import accuracy_memory_curve
from repro.eval.reporting import format_accuracy_memory

#: Reduced ID-Level settings keep the (slow, python-loop) ID-Level encoders
#: tractable at benchmark scale while preserving the models' behaviour.
ID_LEVELS = 32
SEARCHD_MODELS = 8


def memhd(dimension, columns):
    def factory(num_features, num_classes, seed):
        return MEMHDModel(
            num_features,
            num_classes,
            MEMHDConfig(
                dimension=dimension, columns=columns, epochs=BENCH_EPOCHS, seed=seed
            ),
            rng=seed,
        )

    return f"MEMHD {dimension}x{columns}", factory


def basic(dimension):
    def factory(num_features, num_classes, seed):
        return BasicHDC(
            num_features,
            num_classes,
            BasicHDCConfig(dimension=dimension, refine_epochs=BENCH_EPOCHS, seed=seed),
        )

    return f"BasicHDC {dimension}D", factory


def quanthd(dimension):
    def factory(num_features, num_classes, seed):
        return QuantHD(
            num_features,
            num_classes,
            QuantHDConfig(
                dimension=dimension, num_levels=ID_LEVELS, epochs=BENCH_EPOCHS, seed=seed
            ),
        )

    return f"QuantHD {dimension}D", factory


def searchd(dimension):
    def factory(num_features, num_classes, seed):
        return SearcHD(
            num_features,
            num_classes,
            SearcHDConfig(
                dimension=dimension,
                num_models=SEARCHD_MODELS,
                num_levels=ID_LEVELS,
                epochs=1,
                seed=seed,
            ),
        )

    return f"SearcHD {dimension}D", factory


def lehdc(dimension):
    def factory(num_features, num_classes, seed):
        return LeHDC(
            num_features,
            num_classes,
            LeHDCConfig(
                dimension=dimension,
                num_levels=ID_LEVELS,
                epochs=BENCH_EPOCHS,
                learning_rate=0.1,
                seed=seed,
            ),
        )

    return f"LeHDC {dimension}D", factory


def image_series():
    """Model points for the MNIST / FMNIST panels."""
    return [
        memhd(64, 64),
        memhd(128, 128),
        memhd(256, 256),
        basic(512),
        basic(2048),
        quanthd(512),
        quanthd(1024),
        searchd(512),
        lehdc(256),
        lehdc(512),
    ]


def isolet_series():
    """Model points for the ISOLET panel (fixed 128 MEMHD columns)."""
    return [
        memhd(128, 128),
        memhd(256, 128),
        memhd(512, 128),
        basic(512),
        basic(2048),
        quanthd(512),
        searchd(512),
        lehdc(256),
    ]


@pytest.mark.parametrize("dataset_name", ["mnist", "fmnist", "isolet"])
def test_fig3_accuracy_vs_memory(benchmark, dataset_name, request):
    dataset = request.getfixturevalue(dataset_name)
    factories = isolet_series() if dataset_name == "isolet" else image_series()

    def run():
        return accuracy_memory_curve(dataset, factories, trials=BENCH_TRIALS, rng=7)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        f"Fig. 3 ({dataset_name.upper()}): accuracy vs. memory (KB)",
        format_accuracy_memory(records),
    )

    by_label = {record.label: record for record in records}
    # Shape check 1: every model clears the chance level.
    chance = 1.0 / dataset.num_classes
    for record in records:
        assert record.test_accuracy > chance, record.label

    # Shape check 2 (the paper's headline): the mid-size MEMHD model reaches
    # at least the accuracy of the large BasicHDC baseline while using less
    # memory.
    memhd_label = "MEMHD 256x256" if dataset_name != "isolet" else "MEMHD 512x128"
    memhd_record = by_label[memhd_label]
    basic_record = by_label["BasicHDC 2048D"]
    assert memhd_record.test_accuracy >= basic_record.test_accuracy - 0.05
    assert memhd_record.memory_kib < basic_record.memory_kib
