"""Fig. 4 -- MEMHD accuracy heatmap over dimensions and columns (experiment E3).

The paper sweeps D and C from 64 to 1024 on all three datasets; this
benchmark declares the reduced 64--256 grid (configurable) as a
:class:`repro.eval.sweep.SweepSpec` and runs it through the experiment-matrix
engine -- the same resumable, config-hash-keyed path ``repro sweep run``
uses -- then pivots the result store into the heatmap.  The qualitative
findings checked here:

* accuracy improves with dimension (better encoding quality), and
* for the large-sample image profiles more columns help, while ISOLET's
  small per-class sample count means extra columns stop paying off
  (the overfitting effect the paper discusses).
"""

from __future__ import annotations

import os

import pytest
from conftest import BENCH_EPOCHS, BENCH_SCALE_IMAGE, BENCH_SCALE_ISOLET, print_section

from repro.eval.reporting import format_heatmap, sweep_grid
from repro.eval.store import ResultStore
from repro.eval.sweep import SweepSpec, run_sweep, spec_records


def _grid_points():
    """Grid of (dimensions, columns); extend via REPRO_BENCH_FULL_GRID=1."""
    if os.environ.get("REPRO_BENCH_FULL_GRID"):
        return (64, 128, 256, 512, 1024), (64, 128, 256, 512, 1024)
    return (64, 128, 256), (32, 64, 128, 256)


@pytest.mark.parametrize("dataset_name", ["mnist", "fmnist", "isolet"])
def test_fig4_accuracy_heatmap(benchmark, dataset_name, request, tmp_path):
    dataset = request.getfixturevalue(dataset_name)
    dimensions, columns = _grid_points()
    spec = SweepSpec(
        models=("memhd",),
        datasets=(dataset_name,),
        dimensions=dimensions,
        columns=columns,
        engines=("float",),
        scale=BENCH_SCALE_ISOLET if dataset_name == "isolet" else BENCH_SCALE_IMAGE,
        epochs=BENCH_EPOCHS,
        seed=11,
    )
    store = ResultStore(tmp_path / "fig4.jsonl")

    def run():
        return run_sweep(spec, store, workers=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, result.failed
    grid = sweep_grid(spec_records(spec, store))
    print_section(
        f"Fig. 4 ({dataset_name.upper()}): MEMHD accuracy (%) over D (rows) x C (columns)",
        format_heatmap(grid),
    )

    # Shape check 1: the largest dimension beats the smallest dimension when
    # the column budget is held at its maximum value.
    widest_column = max(c for d, c in grid if (max(dimensions), c) in grid)
    assert grid[(max(dimensions), widest_column)] >= grid[(min(dimensions), widest_column)] - 0.02

    # Shape check 2: accuracy everywhere beats chance.
    chance = 1.0 / dataset.num_classes
    assert all(value > chance for value in grid.values())

    # Shape check 3 (image profiles only): at the largest dimension, the
    # widest AM is at least as good as the narrowest one -- more centroids
    # help when there are enough samples per class.
    if dataset_name in ("mnist", "fmnist"):
        columns_at_max_d = sorted(c for d, c in grid if d == max(dimensions))
        narrow = grid[(max(dimensions), columns_at_max_d[0])]
        wide = grid[(max(dimensions), columns_at_max_d[-1])]
        assert wide >= narrow - 0.02
