"""Fig. 5 -- clustering-based vs. random-sampling initialization (experiment E4).

The paper reports that clustering-based initialization starts from a much
higher accuracy (+8.69% on MNIST 512x512, +19.95% on ISOLET 1024x256),
converges in fewer epochs and ends slightly higher.  This benchmark runs
both initializations with identical hyperparameters at benchmark scale
(smaller AMs, fewer epochs) and prints the per-epoch accuracy curves and the
initial-accuracy gap.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import BENCH_EPOCHS, print_section

from repro.core.config import MEMHDConfig
from repro.eval.experiments import initialization_comparison
from repro.eval.reporting import format_table

#: (dataset fixture name, D, C) -- scaled-down versions of the paper's
#: MNIST 512x512 and ISOLET 1024x256 configurations.
SETUPS = [
    ("mnist", 256, 128),
    ("isolet", 256, 104),
]


@pytest.mark.parametrize("dataset_name,dimension,columns", SETUPS)
def test_fig5_initialization_comparison(
    benchmark, dataset_name, dimension, columns, request
):
    dataset = request.getfixturevalue(dataset_name)
    config = MEMHDConfig(
        dimension=dimension,
        columns=columns,
        epochs=BENCH_EPOCHS,
        seed=0,
    )

    def run():
        return initialization_comparison(dataset, config, rng=5)

    histories = benchmark.pedantic(run, rounds=1, iterations=1)

    clustering = histories["clustering"]
    random_sampling = histories["random"]
    rows = []
    epochs = max(clustering.epochs, random_sampling.epochs)
    for epoch in range(epochs):
        rows.append(
            {
                "epoch": epoch + 1,
                "clustering_%": 100.0 * clustering.train_accuracy[min(epoch, clustering.epochs - 1)],
                "random_%": 100.0 * random_sampling.train_accuracy[min(epoch, random_sampling.epochs - 1)],
            }
        )
    gap = clustering.initial_accuracy - random_sampling.initial_accuracy
    body = format_table(rows, float_format="{:.1f}")
    body += (
        f"\ninitial accuracy: clustering {clustering.initial_accuracy * 100:.1f}% vs "
        f"random {random_sampling.initial_accuracy * 100:.1f}% "
        f"(gap {gap * 100:+.2f} pp)"
    )
    print_section(
        f"Fig. 5 ({dataset_name.upper()} {dimension}x{columns}): clustering vs random init",
        body,
    )

    # Shape checks mirroring the paper: clustering starts higher and the
    # trained model ends at least as high as the random-sampling run.
    assert clustering.initial_accuracy > random_sampling.initial_accuracy
    assert (
        clustering.final_train_accuracy
        >= random_sampling.final_train_accuracy - 0.03
    )

    # Convergence speed: the epoch at which each run reaches 95% of its own
    # final accuracy; clustering should not be slower.
    def epochs_to_95_percent(history):
        target = 0.95 * history.final_train_accuracy
        reached = history.epochs_to_reach(target)
        return reached if reached is not None else history.epochs

    assert epochs_to_95_percent(clustering) <= epochs_to_95_percent(random_sampling)
