"""Fig. 6 -- accuracy vs. the initial cluster ratio R (experiment E5).

The paper sweeps R from 0.1 to 1.0 on FMNIST (512x512 and 512x64) and
ISOLET and finds that R has little effect when the AM is large relative to
the class count but matters when columns are scarce, with the best values in
the 0.8--1.0 range.  This benchmark sweeps R at benchmark scale on a large
and a small column budget and prints both curves.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import BENCH_EPOCHS, print_section

from repro.core.config import MEMHDConfig
from repro.eval.experiments import cluster_ratio_sweep
from repro.eval.reporting import format_table

RATIOS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: (dataset fixture, D, C) pairs: a column-rich and a column-poor setup, the
#: scaled analogue of the paper's 512x512 vs 512x64 comparison.
SETUPS = [
    ("fmnist", 128, 128),
    ("fmnist", 128, 32),
    ("isolet", 128, 52),
]


@pytest.mark.parametrize("dataset_name,dimension,columns", SETUPS)
def test_fig6_cluster_ratio_sweep(benchmark, dataset_name, dimension, columns, request):
    dataset = request.getfixturevalue(dataset_name)
    config = MEMHDConfig(
        dimension=dimension,
        columns=columns,
        epochs=BENCH_EPOCHS,
        seed=0,
    )

    def run():
        return cluster_ratio_sweep(dataset, config, RATIOS, rng=13)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"R": ratio, "accuracy_%": 100.0 * accuracy}
        for ratio, accuracy in sorted(results.items())
    ]
    print_section(
        f"Fig. 6 ({dataset_name.upper()} {dimension}x{columns}): accuracy vs cluster ratio R",
        format_table(rows, float_format="{:.1f}"),
    )

    values = np.array([results[r] for r in RATIOS])
    chance = 1.0 / dataset.num_classes
    assert np.all(values > chance)
    # R is a mild hyperparameter: the spread across the sweep stays bounded
    # (the paper's curves move by a few points, not tens of points).  Which
    # end of the range wins depends on the dataset and the column budget, so
    # only the bounded-spread property is asserted; the printed curve records
    # the measured optimum for EXPERIMENTS.md.
    assert values.max() - values.min() < 0.25
