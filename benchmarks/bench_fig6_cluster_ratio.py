"""Fig. 6 -- accuracy vs. the initial cluster ratio R (experiment E5).

The paper sweeps R from 0.1 to 1.0 on FMNIST (512x512 and 512x64) and
ISOLET and finds that R has little effect when the AM is large relative to
the class count but matters when columns are scarce, with the best values in
the 0.8--1.0 range.  This benchmark declares the R axis as a
:class:`repro.eval.sweep.SweepSpec` and runs it through the
experiment-matrix engine (the ``repro sweep run`` path) on a large and a
small column budget, printing both curves.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import BENCH_EPOCHS, BENCH_SCALE_IMAGE, BENCH_SCALE_ISOLET, print_section

from repro.eval.reporting import format_table
from repro.eval.store import ResultStore
from repro.eval.sweep import SweepSpec, run_sweep, spec_records

RATIOS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: (dataset fixture, D, C) pairs: a column-rich and a column-poor setup, the
#: scaled analogue of the paper's 512x512 vs 512x64 comparison.
SETUPS = [
    ("fmnist", 128, 128),
    ("fmnist", 128, 32),
    ("isolet", 128, 52),
]


@pytest.mark.parametrize("dataset_name,dimension,columns", SETUPS)
def test_fig6_cluster_ratio_sweep(
    benchmark, dataset_name, dimension, columns, request, tmp_path, smoke
):
    dataset = request.getfixturevalue(dataset_name)
    spec = SweepSpec(
        models=("memhd",),
        datasets=(dataset_name,),
        dimensions=(dimension,),
        columns=(columns,),
        cluster_ratios=RATIOS,
        engines=("float",),
        scale=BENCH_SCALE_ISOLET if dataset_name == "isolet" else BENCH_SCALE_IMAGE,
        epochs=BENCH_EPOCHS,
        seed=13,
    )
    store = ResultStore(tmp_path / "fig6.jsonl")

    def run():
        return run_sweep(spec, store, workers=1)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.ok, outcome.failed
    results = {
        record.config["cluster_ratio"]: record.metrics["test_accuracy"]
        for record in spec_records(spec, store)
    }
    assert set(results) == set(RATIOS)
    rows = [
        {"R": ratio, "accuracy_%": 100.0 * accuracy}
        for ratio, accuracy in sorted(results.items())
    ]
    print_section(
        f"Fig. 6 ({dataset_name.upper()} {dimension}x{columns}): accuracy vs cluster ratio R",
        format_table(rows, float_format="{:.1f}"),
    )

    values = np.array([results[r] for r in RATIOS])
    chance = 1.0 / dataset.num_classes
    assert np.all(values > chance)
    # R is a mild hyperparameter: the spread across the sweep stays bounded
    # (the paper's curves move by a few points, not tens of points).  Which
    # end of the range wins depends on the dataset and the column budget, so
    # only the bounded-spread property is asserted; the printed curve records
    # the measured optimum for EXPERIMENTS.md.  Smoke runs train for so few
    # epochs that per-cell seed variance dominates the R effect, so the
    # bound relaxes there (the usual --smoke measurement-gate convention).
    assert values.max() - values.min() < (0.4 if smoke else 0.25)
