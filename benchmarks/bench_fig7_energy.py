"""Fig. 7 -- normalized AM energy, cycles and array usage (experiment E7).

The paper compares the associative memories of iso-accuracy configurations
on FMNIST when mapped to 128x128 arrays: BasicHDC (10240D, also partitioned
P=10), SearcHD (8000D, also P=10), QuantHD (1600D, also P=10), LeHDC (400D,
also P=4) and MEMHD (128x128).  Energy tracks the number of array
activations (cycles), so partitioning reduces arrays but not energy, and
MEMHD's single-array single-cycle search is 80x more energy-efficient than
BasicHDC and 4x more than LeHDC.  This benchmark regenerates the normalized
bars from the cost model.
"""

from __future__ import annotations

import pytest
from conftest import print_section

from repro.eval.reporting import format_table
from repro.imc.analysis import energy_comparison
from repro.imc.array import IMCArrayConfig

#: The Fig. 7 model structures (AM only; k = 10 classes on FMNIST).
FIG7_MODELS = [
    {"name": "BasicHDC 10240x10", "dimension": 10240, "num_vectors": 10},
    {"name": "BasicHDC 1024x100 (P=10)", "dimension": 1024, "num_vectors": 100, "partitions": 10},
    {"name": "SearcHD 8000x10", "dimension": 8000, "num_vectors": 10},
    {"name": "SearcHD 800x100 (P=10)", "dimension": 800, "num_vectors": 100, "partitions": 10},
    {"name": "QuantHD 1600x10", "dimension": 1600, "num_vectors": 10},
    {"name": "QuantHD 160x100 (P=10)", "dimension": 160, "num_vectors": 100, "partitions": 10},
    {"name": "LeHDC 400x10", "dimension": 400, "num_vectors": 10},
    {"name": "LeHDC 100x40 (P=4)", "dimension": 100, "num_vectors": 40, "partitions": 4},
    {"name": "MEMHD 128x128", "dimension": 128, "num_vectors": 128},
]


def test_fig7_normalized_am_energy_and_cycles(benchmark):
    entries = benchmark(
        energy_comparison, FIG7_MODELS, array=IMCArrayConfig(128, 128)
    )
    rows = [entry.as_dict() for entry in entries]
    print_section(
        "Fig. 7: normalized AM energy, cycles and array usage (128x128 arrays, FMNIST-equivalent sizes)",
        format_table(
            rows,
            columns=[
                "model",
                "am_structure",
                "arrays",
                "cycles",
                "normalized_energy",
                "normalized_cycles",
                "normalized_arrays",
            ],
            float_format="{:.1f}",
        ),
    )

    by_name = {entry.model: entry for entry in entries}
    memhd = by_name["MEMHD 128x128"]

    # MEMHD: single cycle, single array, minimal energy.
    assert memhd.cycles == 1
    assert memhd.arrays == 1
    assert memhd.normalized_energy == min(e.normalized_energy for e in entries)

    # Partitioning halves/eighths the arrays but keeps energy constant.
    assert by_name["BasicHDC 10240x10"].energy_pj == pytest.approx(
        by_name["BasicHDC 1024x100 (P=10)"].energy_pj
    )
    assert by_name["BasicHDC 1024x100 (P=10)"].arrays < by_name["BasicHDC 10240x10"].arrays

    # The paper's headline efficiency ratios.
    assert by_name["BasicHDC 10240x10"].energy_pj / memhd.energy_pj == pytest.approx(80.0)
    assert by_name["LeHDC 400x10"].energy_pj / memhd.energy_pj == pytest.approx(4.0)
    assert by_name["SearcHD 8000x10"].energy_pj / memhd.energy_pj == pytest.approx(63.0, rel=0.02)
    assert by_name["QuantHD 1600x10"].energy_pj / memhd.energy_pj == pytest.approx(13.0, rel=0.03)
