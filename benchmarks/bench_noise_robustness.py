"""Extension benchmark (experiment E9): robustness to IMC device non-idealities.

HDC's appeal on emerging-memory substrates is its tolerance of bit errors
and analog noise; the paper relies on that robustness implicitly when it
maps the binary AM onto IMC cells.  This benchmark maps a trained MEMHD
model onto 128x128 arrays with the functional simulator, injects increasing
cell bit-flip rates and analog read noise, and reports the resulting test
accuracy -- demonstrating graceful degradation rather than cliff-edge
failure.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import BENCH_EPOCHS, print_section

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.reporting import format_table
from repro.imc.array import IMCArrayConfig
from repro.imc.noise import NoiseModel
from repro.imc.simulator import InMemoryInference

FLIP_RATES = (0.0, 0.01, 0.02, 0.05, 0.10, 0.20)
READ_SIGMAS = (0.0, 1.0, 2.0, 4.0)


@pytest.fixture(scope="module")
def trained_model(request):
    mnist = request.getfixturevalue("mnist")
    model = MEMHDModel(
        mnist.num_features,
        mnist.num_classes,
        MEMHDConfig(dimension=128, columns=128, epochs=BENCH_EPOCHS, seed=0),
        rng=0,
    )
    model.fit(mnist.train_features, mnist.train_labels)
    return mnist, model


def test_noise_robustness_bit_flips(benchmark, trained_model):
    mnist, model = trained_model

    def run():
        accuracies = {}
        for rate in FLIP_RATES:
            trial_values = []
            for seed in range(3):
                engine = InMemoryInference(
                    model,
                    IMCArrayConfig(128, 128),
                    noise=NoiseModel(bit_flip_probability=rate),
                    rng=seed,
                )
                predictions = engine.predict(mnist.test_features)
                trial_values.append(float(np.mean(predictions == mnist.test_labels)))
            accuracies[rate] = float(np.mean(trial_values))
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"bit_flip_rate": rate, "test_accuracy_%": 100.0 * accuracy}
        for rate, accuracy in accuracies.items()
    ]
    print_section(
        "Noise robustness: MEMHD 128x128 accuracy vs. cell bit-flip rate (MNIST profile)",
        format_table(rows, float_format="{:.3g}"),
    )

    clean = accuracies[0.0]
    chance = 1.0 / mnist.num_classes
    assert clean > chance
    # Graceful degradation rather than a cliff: a 1% cell flip rate (which
    # corrupts both the projection matrix and the AM) must retain a clear
    # margin over chance, and accuracy must not *increase* as the flip rate
    # grows to 20%.
    assert accuracies[0.01] > chance + 0.3 * (clean - chance)
    assert accuracies[0.20] <= accuracies[0.01] + 0.05


def test_noise_robustness_read_noise(benchmark, trained_model):
    mnist, model = trained_model

    def run():
        accuracies = {}
        for sigma in READ_SIGMAS:
            engine = InMemoryInference(
                model,
                IMCArrayConfig(128, 128),
                noise=NoiseModel(read_noise_sigma=sigma),
                rng=1,
            )
            predictions = engine.predict(mnist.test_features)
            accuracies[sigma] = float(np.mean(predictions == mnist.test_labels))
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"read_noise_sigma": sigma, "test_accuracy_%": 100.0 * accuracy}
        for sigma, accuracy in accuracies.items()
    ]
    print_section(
        "Noise robustness: MEMHD 128x128 accuracy vs. analog read noise (MNIST profile)",
        format_table(rows, float_format="{:.3g}"),
    )

    clean = accuracies[0.0]
    chance = 1.0 / mnist.num_classes
    assert clean > chance
    # Moderate ADC/thermal noise (one count of sigma on a D=128 column sum)
    # must not collapse accuracy to chance, and heavier noise must not be
    # better than lighter noise.
    assert accuracies[1.0] > chance + 0.4 * (clean - chance)
    assert accuracies[max(READ_SIGMAS)] <= accuracies[min(READ_SIGMAS)] + 0.05
