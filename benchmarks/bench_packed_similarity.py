"""Packed vs float64 associative search: throughput and memory (engine E0).

This benchmark backs the bit-packed similarity engine's two headline
claims on the associative-search hot path (the ``(n, D) x (C, D)`` score
matrix every ``predict`` evaluates):

* **throughput** -- at deployment sizes (D = 8192) the popcount engine is
  at least 4x faster than the float64 matmul path the seed shipped
  (``queries.astype(float64) @ memory.astype(float64).T``), and
* **memory** -- the packed AM stores 64 elements per ``uint64`` word, an
  exact 8x reduction over the ``int8`` binary memory (64x over a float64
  AM).

Both engines are also asserted bit-exact on every configuration.  Under
``--smoke`` the sweep shrinks to one tiny configuration and the speedup
gate is skipped (timing noise at micro sizes is meaningless), but the
memory-ratio and bit-exactness gates always hold.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import print_section

from repro.eval.reporting import format_table
from repro.hdc.packed import PackedAM, kernel_backend, pack_binary
from repro.hdc.similarity import dot_similarity

#: (dimension D, queries n, AM columns C) sweep points.
FULL_SIZES = [(2048, 256, 512), (8192, 256, 512), (16384, 128, 512)]
SMOKE_SIZES = [(256, 32, 64)]

#: The acceptance gate: packed speedup at D = 8192 (native backend).
GATED_DIMENSION = 8192
MIN_SPEEDUP = 4.0
MIN_MEMORY_RATIO = 8.0


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _float64_path(queries: np.ndarray, memory: np.ndarray) -> np.ndarray:
    """The seed's similarity evaluation: promote to float64, then matmul."""
    return queries.astype(np.float64) @ memory.astype(np.float64).T


def measure_configuration(dimension: int, n_queries: int, columns: int, repeats: int):
    """Time both engines on one (D, n, C) point and check bit-exactness."""
    rng = np.random.default_rng(dimension)
    queries = rng.integers(0, 2, size=(n_queries, dimension)).astype(np.int8)
    memory = rng.integers(0, 2, size=(columns, dimension)).astype(np.int8)
    classes = np.arange(columns) % max(2, columns // 4)

    packed_am = PackedAM.from_binary_memory(memory, classes)
    float_scores = _float64_path(queries, memory)
    packed_scores = packed_am.scores(queries)
    if not np.array_equal(packed_scores, float_scores.astype(np.int64)):
        raise AssertionError(f"packed engine diverged from float64 at D={dimension}")
    assert np.array_equal(packed_scores, dot_similarity(queries, memory, packed=True))

    float_seconds = _best_of(lambda: _float64_path(queries, memory), repeats)
    # Packing the queries is part of the serving cost, so it is timed too.
    packed_seconds = _best_of(lambda: packed_am.scores(pack_binary(queries)), repeats)

    pair_count = n_queries * columns
    return {
        "D": dimension,
        "queries": n_queries,
        "columns": columns,
        "float64_ms": 1000.0 * float_seconds,
        "packed_ms": 1000.0 * packed_seconds,
        "speedup_x": float_seconds / packed_seconds,
        "float64_Mpairs/s": pair_count / float_seconds / 1e6,
        "packed_Mpairs/s": pair_count / packed_seconds / 1e6,
        "am_int8_KiB": memory.nbytes / 1024.0,
        "am_packed_KiB": packed_am.memory_bytes() / 1024.0,
        "memory_ratio_x": memory.nbytes / packed_am.memory_bytes(),
    }


def test_packed_similarity_speedup_and_memory(smoke):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    repeats = 3 if smoke else 5
    rows = [measure_configuration(*size, repeats=repeats) for size in sizes]

    print_section(
        f"Packed vs float64 associative search (backend: {kernel_backend()})",
        format_table(rows, float_format="{:.2f}"),
    )

    for row in rows:
        # Dimensions that are multiples of 64 pack with zero padding waste,
        # giving the exact 8x reduction over int8 storage.
        assert row["memory_ratio_x"] >= MIN_MEMORY_RATIO - 1e-9

    if not smoke and kernel_backend() == "native":
        gated = [row for row in rows if row["D"] == GATED_DIMENSION]
        assert gated, "the gated dimension is missing from the sweep"
        for row in gated:
            assert row["speedup_x"] >= MIN_SPEEDUP, (
                f"packed engine speedup {row['speedup_x']:.2f}x at "
                f"D={GATED_DIMENSION} is below the {MIN_SPEEDUP}x gate"
            )


def test_packed_am_memory_report(smoke):
    """The packed AM's storage matches the C * ceil(D / 64) * 8 formula."""
    dimension, columns = (96, 16) if smoke else (8192, 512)
    rng = np.random.default_rng(7)
    memory = rng.integers(0, 2, size=(columns, dimension)).astype(np.int8)
    packed_am = PackedAM.from_binary_memory(memory, np.arange(columns) % 4)
    words = (dimension + 63) // 64
    assert packed_am.memory_bytes() == columns * words * 8
    # float64 storage of the same AM for the 64x headline comparison.
    float_bytes = columns * dimension * 8
    ratio = float_bytes / packed_am.memory_bytes()
    print_section(
        "Packed AM storage",
        f"int8: {memory.nbytes / 1024:.1f} KiB, "
        f"packed: {packed_am.memory_bytes() / 1024:.1f} KiB, "
        f"float64 equivalent: {float_bytes / 1024:.1f} KiB "
        f"({ratio:.1f}x reduction)",
    )
