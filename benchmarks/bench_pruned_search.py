"""Centroid-pruned shortlist search vs packed full scan (engine E1).

The pruned engine's claim is *sublinearity*: by screening queries against
``k`` per-class sketches and exactly re-ranking only a shortlist, the
associative-search hot path touches a fraction of the AM's ``C`` rows --
while staying argmax-identical to the full scan.  This benchmark times
both engines over a sweep of centroid budgets and gates:

* **speedup** -- at the gated configuration (large C, many centroids per
  class) the pruned engine is at least 2x faster than the packed full
  scan (native backend, full run only; micro-size smoke timings are
  noise);
* **exactness** -- zero prediction delta on every configuration, always
  (smoke included);
* **pruning** -- the gated configuration actually prunes (scores fewer
  rows than the full scan would) rather than winning by accident.

For context against PR 1's headline: the packed engine is itself ~17x
faster than the seed's float64 matmul at deployment sizes, so the pruned
speedup measured here stacks multiplicatively on top of that baseline.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import print_section

from repro.eval.reporting import format_table
from repro.hdc.packed import PackedAM, kernel_backend, pack_binary
from repro.hdc.pruned import PrunedAM

#: (dimension D, queries n, classes k, AM columns C) sweep points.  The
#: centroid count per class (C / k) is what pruning feeds on; the gated
#: point uses the multi-centroid regime the paper's large configs live in.
FULL_SIZES = [
    (2048, 256, 16, 512),
    (8192, 256, 64, 2048),
    (8192, 128, 100, 1600),
]
SMOKE_SIZES = [(256, 32, 8, 64)]

#: The acceptance gate: pruned speedup at (D, k, C) = (8192, 64, 2048).
GATED_CONFIG = (8192, 64, 2048)
MIN_SPEEDUP = 2.0


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _clustered_memory(rng, classes_k, columns, dimension):
    """Class-clustered binary AM: rows of one class share most bits.

    Uniform random rows make every sketch equidistant from every query and
    pruning degenerates to a full scan; real multi-centroid AMs are
    clustered by construction (their rows are K-means centroids), which is
    the regime the screen exploits.
    """
    prototypes = rng.integers(0, 2, size=(classes_k, dimension), dtype=np.int8)
    column_classes = np.arange(columns) % classes_k
    memory = prototypes[column_classes].copy()
    flips = rng.random(memory.shape) < 0.08
    memory[flips] ^= 1
    return memory, column_classes, prototypes


def measure_configuration(
    dimension: int, n_queries: int, classes_k: int, columns: int, repeats: int
):
    """Time packed full scan vs pruned search on one configuration."""
    rng = np.random.default_rng(dimension + classes_k)
    memory, column_classes, prototypes = _clustered_memory(
        rng, classes_k, columns, dimension
    )
    # Queries near (but not on) the class manifolds, like encoded inputs.
    query_classes = rng.integers(0, classes_k, n_queries)
    queries = prototypes[query_classes].copy()
    flips = rng.random(queries.shape) < 0.15
    queries[flips] ^= 1

    packed_am = PackedAM.from_binary_memory(memory, column_classes, classes_k)
    pruned_am = PrunedAM(packed_am)
    packed_queries = pack_binary(queries)

    full_rows = np.argmax(packed_am.scores(packed_queries), axis=1)
    pruned_rows = pruned_am.predict_columns(packed_queries)
    if not np.array_equal(full_rows, pruned_rows):
        raise AssertionError(
            f"pruned search diverged from the full scan at D={dimension}, "
            f"k={classes_k}, C={columns}"
        )

    packed_seconds = _best_of(
        lambda: np.argmax(packed_am.scores(packed_queries), axis=1), repeats
    )
    pruned_am.reset_stats()
    pruned_seconds = _best_of(
        lambda: pruned_am.predict_columns(packed_queries), repeats
    )
    stats = pruned_am.stats()

    return {
        "D": dimension,
        "classes": classes_k,
        "columns": columns,
        "topk": pruned_am.effective_topk(),
        "packed_ms": 1000.0 * packed_seconds,
        "pruned_ms": 1000.0 * pruned_seconds,
        "speedup_x": packed_seconds / pruned_seconds,
        "packed_qps": n_queries / packed_seconds,
        "pruned_qps": n_queries / pruned_seconds,
        "prune_ratio": stats["prune_ratio"],
        "fallback_%": 100.0 * stats["fallbacks"] / max(stats["queries"], 1),
    }


def test_pruned_search_speedup_and_exactness(smoke):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    repeats = 3 if smoke else 5
    rows = [measure_configuration(*size, repeats=repeats) for size in sizes]

    print_section(
        f"Pruned shortlist search vs packed full scan "
        f"(backend: {kernel_backend()})",
        format_table(rows, float_format="{:.2f}"),
    )

    if not smoke and kernel_backend() == "native":
        gated = [
            row
            for row in rows
            if (row["D"], row["classes"], row["columns"]) == GATED_CONFIG
        ]
        assert gated, "the gated configuration is missing from the sweep"
        for row in gated:
            assert row["speedup_x"] >= MIN_SPEEDUP, (
                f"pruned speedup {row['speedup_x']:.2f}x at "
                f"(D, k, C)={GATED_CONFIG} is below the {MIN_SPEEDUP}x gate"
            )
            assert row["prune_ratio"] > 0.0, (
                "the gated configuration did not actually prune "
                f"(prune_ratio={row['prune_ratio']:.3f})"
            )


def test_pruned_accuracy_delta_is_zero(smoke):
    """Classification parity on a trained model, not just raw argmax."""
    from repro.core.config import MEMHDConfig
    from repro.core.model import MEMHDModel
    from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset

    spec = SyntheticSpec(
        num_classes=6,
        num_features=24,
        train_per_class=40 if smoke else 120,
        test_per_class=25 if smoke else 80,
        modes_per_class=2,
        latent_dim=8,
        class_separation=2.5,
        noise_scale=0.4,
    )
    dataset = make_synthetic_dataset("bench-pruned", spec, rng=17)
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(
            dimension=128 if smoke else 1024,
            columns=24 if smoke else 96,
            epochs=1,
            seed=17,
        ),
        rng=17,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    packed = model.predict(dataset.test_features, engine="packed")
    pruned = model.predict(dataset.test_features, engine="pruned")
    delta = int(np.count_nonzero(packed != pruned))
    print_section(
        "Pruned engine accuracy delta",
        f"{len(packed)} test queries, {delta} prediction(s) changed "
        f"(must be 0)",
    )
    assert delta == 0
