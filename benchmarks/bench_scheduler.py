"""Extension benchmark (experiment E11): array-pool scheduling study.

Table II counts cycles on a single array and arrays for full residency; a
deployed accelerator owns a finite pool of macros and schedules tiles onto
it.  This benchmark sweeps the pool size for the MNIST-profile BasicHDC
(10240D) and MEMHD (128x128) configurations and reports latency, throughput
and the stage that bottlenecks each -- quantifying how many macros the
conventional mapping needs before it stops being latency-bound, versus
MEMHD which saturates with a handful.
"""

from __future__ import annotations

import pytest
from conftest import print_section

from repro.eval.reporting import format_table
from repro.imc.array import IMCArrayConfig
from repro.imc.mapping import (
    analyze_am_mapping,
    analyze_em_mapping,
    basic_am_structure,
    memhd_am_structure,
)
from repro.imc.scheduler import AcceleratorScheduler

ARRAY = IMCArrayConfig(128, 128)
POOL_SIZES = (1, 2, 4, 8, 16, 32, 64)


def _configurations():
    return {
        "BasicHDC 10240D": (
            analyze_em_mapping(784, 10240, ARRAY),
            analyze_am_mapping(basic_am_structure(10240, 10), ARRAY),
        ),
        "MEMHD 128x128": (
            analyze_em_mapping(784, 128, ARRAY),
            analyze_am_mapping(memhd_am_structure(128, 128), ARRAY),
        ),
    }


def test_scheduler_pool_sweep(benchmark):
    def run():
        rows = []
        for name, (em, am) in _configurations().items():
            for pool in POOL_SIZES:
                report = AcceleratorScheduler(pool, ARRAY).schedule(em, am)
                rows.append(
                    {
                        "model": name,
                        "arrays_in_pool": pool,
                        "latency_cycles": report.latency_cycles,
                        "throughput_per_kcycle": report.throughput_per_kcycle,
                        "bottleneck": report.bottleneck,
                    }
                )
        return rows

    rows = benchmark(run)
    print_section(
        "Array-pool scheduling: latency and throughput vs pool size (128x128 arrays)",
        format_table(rows, float_format="{:.1f}"),
    )

    by_key = {(row["model"], row["arrays_in_pool"]): row for row in rows}

    # Single-array latencies reproduce the Table II totals.
    assert by_key[("BasicHDC 10240D", 1)]["latency_cycles"] == 640
    assert by_key[("MEMHD 128x128", 1)]["latency_cycles"] == 8

    # MEMHD reaches its minimum two-cycle latency with an 8-array pool;
    # BasicHDC is still two orders of magnitude slower with the same pool.
    assert by_key[("MEMHD 128x128", 8)]["latency_cycles"] == 2
    assert by_key[("BasicHDC 10240D", 8)]["latency_cycles"] >= 80

    # Latency is non-increasing in the pool size for both models.
    for name in ("BasicHDC 10240D", "MEMHD 128x128"):
        latencies = [by_key[(name, pool)]["latency_cycles"] for pool in POOL_SIZES]
        assert latencies == sorted(latencies, reverse=True)

    # MEMHD's throughput is never worse than BasicHDC's at equal pool size,
    # and with a single shared array the advantage equals the Table II cycle
    # ratio (80x).  The gap narrows as the pool grows because BasicHDC's 560
    # encoder tiles eventually all fit in one scheduling round.
    for pool in POOL_SIZES:
        memhd_throughput = by_key[("MEMHD 128x128", pool)]["throughput_per_kcycle"]
        basic_throughput = by_key[("BasicHDC 10240D", pool)]["throughput_per_kcycle"]
        assert memhd_throughput >= basic_throughput
    assert by_key[("MEMHD 128x128", 1)]["throughput_per_kcycle"] == pytest.approx(
        80 * by_key[("BasicHDC 10240D", 1)]["throughput_per_kcycle"]
    )
