"""Micro-batched vs unbatched serving under concurrent load (runtime v2).

This benchmark backs the serving-v2 headline claim: coalescing concurrent
HTTP requests into pipeline micro-batches (``BatchScheduler``) multiplies
sustained QPS over the PR 2 one-predict-per-request server, because a
single-row predict pays the model's full fixed cost -- streaming the
encoder projection and packed AM through memory plus dozens of numpy
dispatches -- that a 32-row batch pays once.

Methodology: one warm MEMHD model at deployment dimension (D = 8192, the
same scale the packed-similarity bench gates on) is served twice by the
same :class:`ModelServer` -- once with ``batching=False`` (the PR 2
behaviour) and once with the micro-batch scheduler -- and hammered by the
``repro loadtest`` closed-loop generator at concurrency 32 with
single-query requests (the worst case for an unbatched server and the
realistic shape of interactive traffic).  Best-of-``TRIALS`` is reported
per mode, like every timing benchmark in this repo.

Gates (full runs on the native popcount backend):

* batched QPS >= 3x unbatched QPS at concurrency 32;
* zero transport/server errors in either mode;
* batched responses bit-identical to direct single-query
  ``model.predict`` answers.

Under ``--smoke`` the model and load shrink and the speedup gate is
skipped (timing ratios at micro sizes are noise), but the zero-error and
bit-exactness gates always hold.  A second test reports open-loop tail
latency at a fixed offered rate -- the number a capacity plan actually
quotes.

The prefork sweep (``test_prefork_worker_scaling``) extends the story one
layer up: the same packed checkpoint is served by ``WorkerSupervisor``
at increasing ``--workers`` counts over one shared listening socket and
a memory-mapped (zero-copy) AM, and aggregate QPS must scale -- >= 2.5x
a single worker at ``--workers 4`` on machines with >= 4 CPUs and the
native backend.  On smaller machines the sweep still gates zero errors,
bit-exact responses and complete per-worker ``/stats`` attribution.
"""

from __future__ import annotations

import json
import os
import urllib.request

import pytest
from conftest import print_section

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset
from repro.eval.reporting import format_table
from repro.hdc.packed import kernel_backend
from repro.io.registry import ArtifactRegistry
from repro.runtime.loadtest import fetch_server_stats, run_load
from repro.runtime.server import ModelServer
from repro.runtime.workers import WorkerConfig, WorkerSupervisor, fork_available

#: The acceptance gate: micro-batching speedup at concurrency 32.
MIN_SPEEDUP = 3.0

#: (dimension D, columns C, features f) of the served model.  At this
#: geometry a single-row predict is dominated by per-call fixed cost
#: (streaming the 4.5 MB float64 projection + packed AM, ~30 numpy
#: dispatches), which is exactly what micro-batching amortizes.
FULL_MODEL = (8192, 128, 48)
SMOKE_MODEL = (256, 32, 16)

#: Closed-loop load shape (workers, seconds per trial, trials).
FULL_LOAD = (32, 3.0, 3)
SMOKE_LOAD = (8, 0.8, 1)

#: Micro-batching knobs under test.
MAX_BATCH = 128
MAX_WAIT_MS = 3.0
QUEUE_DEPTH = 512

#: Prefork scale-out gate: aggregate QPS at ``--workers 4`` must beat a
#: single worker by this factor (full runs on machines with >= 4 CPUs).
MIN_PREFORK_SPEEDUP = 2.5

#: Worker counts swept by the prefork benchmark.
FULL_WORKER_SWEEP = (1, 2, 4)
SMOKE_WORKER_SWEEP = (1, 2)


def _trained_model(dimension: int, columns: int, features: int):
    spec = SyntheticSpec(
        num_classes=8,
        num_features=features,
        train_per_class=40,
        test_per_class=16,
        modes_per_class=2,
        latent_dim=min(8, features // 2),
        class_separation=3.0,
        noise_scale=0.3,
    )
    dataset = make_synthetic_dataset("serving-bench", spec, rng=0)
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=dimension, columns=columns, epochs=1, seed=7),
        rng=7,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    return model, dataset


def _server(model, batching: bool) -> ModelServer:
    return ModelServer(
        model,
        engine="packed",
        batching=batching,
        max_batch_size=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS,
        queue_depth=QUEUE_DEPTH,
        port=0,
    )


def _best_report(url, concurrency, duration, trials, **kwargs):
    best = None
    for _ in range(trials):
        report = run_load(
            url,
            concurrency=concurrency,
            duration_seconds=duration,
            batch_size=1,
            **kwargs,
        )
        if best is None or report.qps > best.qps:
            best = report
    return best


def _row(label: str, report) -> dict:
    summary = report.as_dict()
    summary.pop("errors_by_status")
    summary.pop("duration_s")
    return {"server": label, **summary}


def _assert_bit_exact(url: str, model, dataset) -> None:
    """Batched responses must equal direct single-query predictions."""
    for start in range(0, 32, 8):
        batch = dataset.test_features[start : start + 8]
        request = urllib.request.Request(
            url + "/predict",
            data=json.dumps({"features": batch.tolist()}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read().decode("utf-8"))
        expected = [int(label) for label in model.predict(batch, engine="packed")]
        assert payload["labels"] == expected, "batched serving changed predictions"


def test_micro_batching_speedup(smoke):
    dimension, columns, features = SMOKE_MODEL if smoke else FULL_MODEL
    concurrency, duration, trials = SMOKE_LOAD if smoke else FULL_LOAD
    model, dataset = _trained_model(dimension, columns, features)

    reports = {}
    for batching in (False, True):
        with _server(model, batching) as server:
            reports[batching] = _best_report(server.url, concurrency, duration, trials)
            if batching:
                _assert_bit_exact(server.url, model, dataset)

    unbatched, batched = reports[False], reports[True]
    speedup = batched.qps / max(unbatched.qps, 1e-9)
    rows = [_row("unbatched (pr2)", unbatched), _row("micro-batched", batched)]
    print_section(
        f"Serving throughput, D={dimension} C={columns} f={features}, "
        f"concurrency {concurrency} (backend: {kernel_backend()})",
        format_table(rows, float_format="{:.2f}")
        + f"\nmicro-batching speedup: {speedup:.2f}x",
    )

    assert unbatched.errors == 0 and batched.errors == 0, (
        f"load errors: unbatched {unbatched.errors_by_status}, "
        f"batched {batched.errors_by_status}"
    )
    assert unbatched.requests > 0 and batched.requests > 0
    if not smoke and kernel_backend() == "native":
        assert speedup >= MIN_SPEEDUP, (
            f"micro-batching speedup {speedup:.2f}x at concurrency "
            f"{concurrency} is below the {MIN_SPEEDUP}x gate"
        )


def _prefork_speedup_gate_applies(smoke: bool) -> bool:
    """The 2.5x @ 4 workers gate needs real parallel hardware.

    Process scale-out multiplies QPS only when the workers actually run
    on distinct cores, so the gate is enforced exclusively on full runs
    with the native popcount backend and at least 4 CPUs.  Everywhere
    else (``--smoke``, CI's 1-2 vCPU runners, fallback backends) the
    sweep still runs and the zero-error / bit-exactness / aggregation
    assertions still hold -- only the speedup ratio becomes advisory.
    """
    return not smoke and kernel_backend() == "native" and (os.cpu_count() or 1) >= 4


def test_prefork_worker_scaling(smoke, tmp_path):
    """Sweep ``--workers`` over a shared-memory packed checkpoint.

    Serves one registry checkpoint (memory-mapped, so every worker shares
    one physical copy of the packed AM pages) under the closed-loop load
    generator at each worker count.  Always gated: zero errors, bit-exact
    responses at the top worker count, and an aggregated ``/stats`` view
    that attributes traffic to every worker.  Gated on capable machines
    only: >= 2.5x single-worker QPS at 4 workers.
    """
    if not fork_available():
        pytest.skip("prefork serving requires the fork start method")
    dimension, columns, features = SMOKE_MODEL if smoke else FULL_MODEL
    concurrency, duration, trials = SMOKE_LOAD if smoke else FULL_LOAD
    sweep = SMOKE_WORKER_SWEEP if smoke else FULL_WORKER_SWEEP
    model, dataset = _trained_model(dimension, columns, features)
    store = ArtifactRegistry(tmp_path / "store")
    store.save(model, "bench-serve", tag="v1")
    config = WorkerConfig(
        models=("bench-serve:v1",),
        store=str(store.root),
        engine="packed",
        batching=True,
        max_batch_size=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS,
        queue_depth=QUEUE_DEPTH,
        mapped=True,
    )

    reports = {}
    for workers in sweep:
        with WorkerSupervisor(config, workers=workers) as supervisor:
            reports[workers] = _best_report(
                supervisor.url, concurrency, duration, trials
            )
            stats = fetch_server_stats(supervisor.url)
            if workers == sweep[-1]:
                _assert_bit_exact(supervisor.url, model, dataset)
        assert stats["workers_total"] == workers
        assert len(stats["workers"]) == workers, (
            f"aggregated /stats is missing workers: {sorted(stats['workers'])}"
        )
        served = sum(snapshot["requests"] for snapshot in stats["workers"].values())
        assert served >= reports[workers].requests

    base = reports[sweep[0]]
    rows = [
        {
            **_row(f"{workers} worker(s)", report),
            "speedup": report.qps / max(base.qps, 1e-9),
        }
        for workers, report in reports.items()
    ]
    print_section(
        f"Prefork serving scale-out, D={dimension} C={columns} f={features}, "
        f"concurrency {concurrency} (backend: {kernel_backend()}, "
        f"cpus: {os.cpu_count()})",
        format_table(rows, float_format="{:.2f}"),
    )

    for workers, report in reports.items():
        assert report.errors == 0, (
            f"{workers}-worker load errors: {report.errors_by_status}"
        )
        assert report.requests > 0
    if _prefork_speedup_gate_applies(smoke) and 4 in reports:
        speedup = reports[4].qps / max(reports[1].qps, 1e-9)
        assert speedup >= MIN_PREFORK_SPEEDUP, (
            f"prefork speedup {speedup:.2f}x at 4 workers is below the "
            f"{MIN_PREFORK_SPEEDUP}x gate"
        )


def test_open_loop_tail_latency(smoke):
    """Offered-rate latency quantiles: the capacity-planning view.

    An open loop fires on a fixed schedule regardless of completions, so
    queueing delay shows up in p99 instead of silently throttling the
    client (coordinated omission).  Informational -- no latency gate --
    but the run must complete without a single failed request.
    """
    dimension, columns, features = SMOKE_MODEL if smoke else FULL_MODEL
    model, _ = _trained_model(dimension, columns, features)
    concurrency, duration, _ = SMOKE_LOAD if smoke else FULL_LOAD
    rate = 40.0 if smoke else 400.0

    with _server(model, batching=True) as server:
        report = run_load(
            server.url,
            mode="open",
            rate=rate,
            concurrency=concurrency,
            duration_seconds=duration,
            batch_size=1,
        )
        stats = server.pool.get().scheduler.stats.as_dict()

    print_section(
        f"Open-loop serving at {rate:.0f} requests/s",
        format_table([_row("micro-batched", report)], float_format="{:.2f}")
        + f"\nbatch-size histogram: {stats['batch_size_histogram']}",
    )
    assert report.errors == 0, f"open-loop errors: {report.errors_by_status}"
    assert report.requests > 0
