"""Table I -- memory requirements of the baseline HDC models (experiment E1).

Regenerates the Table I storage formulas for the paper's configurations on
all three datasets and prints them in KB, alongside the model sizes the
paper uses in Fig. 3 / Fig. 7.  The pytest-benchmark target measures the
memory-model evaluation itself (it is pure arithmetic, so it doubles as a
regression guard on the reporting path).
"""

from __future__ import annotations

from conftest import print_section

from repro.eval.reporting import format_table
from repro.hdc.memory_model import model_memory_report

#: (dataset, f, k) triples as used by the paper's evaluation.
DATASETS = [
    ("MNIST", 784, 10),
    ("FMNIST", 784, 10),
    ("ISOLET", 617, 26),
]

#: Representative model sizes from the paper (D for baselines, DxC for MEMHD).
MODEL_POINTS = [
    ("BasicHDC", {"dimension": 10240}),
    ("QuantHD", {"dimension": 1600}),
    ("LeHDC", {"dimension": 400}),
    ("SearcHD", {"dimension": 8000}),
    ("MEMHD", {"dimension": 128, "num_columns": 128}),
    ("MEMHD", {"dimension": 512, "num_columns": 512}),
]


def build_table1_rows():
    """Compute one row per (dataset, model point) with the Table I formulas."""
    rows = []
    for dataset, num_features, num_classes in DATASETS:
        for model, point in MODEL_POINTS:
            dimension = point["dimension"]
            report = model_memory_report(
                model,
                num_features=num_features,
                dimension=dimension,
                num_classes=num_classes,
                num_columns=point.get("num_columns"),
            )
            label = (
                f"{dimension}x{point['num_columns']}"
                if model == "MEMHD"
                else f"{dimension}D"
            )
            rows.append(
                {
                    "dataset": dataset,
                    "model": model,
                    "size": label,
                    "encoder_kib": report.encoder_kib,
                    "am_kib": report.am_kib,
                    "total_kib": report.total_kib,
                }
            )
    return rows


def test_table1_memory_requirements(benchmark):
    rows = benchmark(build_table1_rows)
    print_section(
        "Table I: memory requirements (KB) of HDC model families",
        format_table(rows, float_format="{:.1f}"),
    )

    # Shape checks mirroring the paper's qualitative statements.
    by_key = {(row["dataset"], row["model"], row["size"]): row for row in rows}
    memhd = by_key[("MNIST", "MEMHD", "128x128")]
    basic = by_key[("MNIST", "BasicHDC", "10240D")]
    searchd = by_key[("MNIST", "SearcHD", "8000D")]
    # MEMHD's total footprint is far below every baseline's.
    assert memhd["total_kib"] * 10 < basic["total_kib"]
    # SearcHD's N=64 multi-model AM dominates its footprint.
    assert searchd["am_kib"] > searchd["encoder_kib"] / 2
