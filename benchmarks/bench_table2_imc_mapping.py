"""Table II -- computation cycles, arrays and AM utilization (experiment E6).

Regenerates both halves of Table II exactly (the analytical mapping model
reproduces the paper's integers: 80x cycle reduction and 71x array reduction
for MNIST/FMNIST, 20x / 17.5x for ISOLET), then cross-checks the MEMHD
column against the functional tile-level simulator running a real trained
model on real 128x128 arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import BENCH_EPOCHS, print_section

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.reporting import format_table
from repro.imc.analysis import full_mapping_report, improvement_factors, table2_rows
from repro.imc.array import IMCArrayConfig
from repro.imc.simulator import InMemoryInference

ARRAY = IMCArrayConfig(128, 128)

#: (label, f, k, MEMHD D, MEMHD C, partition counts) for the two table halves.
TABLE2_SETUPS = [
    ("(a) MNIST / FMNIST", 784, 10, 128, 128, (5, 10)),
    ("(b) ISOLET", 617, 26, 512, 128, (2, 4)),
]


def build_table2():
    """Both halves of Table II as printable rows plus improvement factors."""
    sections = []
    for label, f, k, memhd_d, memhd_c, partitions in TABLE2_SETUPS:
        reports = full_mapping_report(
            num_features=f,
            num_classes=k,
            baseline_dimension=10240,
            memhd_dimension=memhd_d,
            memhd_columns=memhd_c,
            partition_counts=partitions,
            array=ARRAY,
        )
        sections.append((label, reports, improvement_factors(reports)))
    return sections


def test_table2_mapping_analysis(benchmark):
    sections = benchmark(build_table2)
    for label, reports, factors in sections:
        body = format_table(table2_rows(reports), float_format="{:.2f}")
        body += (
            f"\nImprovement vs Basic: cycles {factors['cycle_reduction']:.1f}x, "
            f"arrays {factors['array_reduction']:.1f}x, "
            f"AM utilization +{factors['utilization_gain'] * 100:.2f} pp"
        )
        print_section(f"Table II {label} on {ARRAY.label} IMC arrays", body)

    mnist_factors = sections[0][2]
    isolet_factors = sections[1][2]
    # The paper's headline Table II numbers.
    assert mnist_factors["cycle_reduction"] == pytest.approx(80.0)
    assert mnist_factors["array_reduction"] == pytest.approx(80.0)
    assert isolet_factors["cycle_reduction"] == pytest.approx(20.0)
    assert isolet_factors["array_reduction"] == pytest.approx(20.0)
    # Paper reports total-arrays improvement of 71x / 17.5x vs the full
    # baseline pipeline (640 -> 8 ... wait: 640/8 = 80; the 71x figure uses
    # the best partitioned baseline 568/8).
    mnist_reports = sections[0][1]
    best_partitioned = min(report.total_arrays for report in mnist_reports[1:-1])
    assert best_partitioned / mnist_reports[-1].total_arrays == pytest.approx(71.0)
    isolet_reports = sections[1][1]
    best_partitioned_isolet = min(r.total_arrays for r in isolet_reports[1:-1])
    assert best_partitioned_isolet / isolet_reports[-1].total_arrays == pytest.approx(17.5)


def test_table2_functional_simulator_cross_check(benchmark, mnist):
    """A trained MEMHD 128x128 model mapped on real arrays hits the Table II row."""

    def run():
        model = MEMHDModel(
            mnist.num_features,
            mnist.num_classes,
            MEMHDConfig(dimension=128, columns=128, epochs=min(BENCH_EPOCHS, 5), seed=0),
            rng=0,
        )
        model.fit(mnist.train_features, mnist.train_labels)
        engine = InMemoryInference(model, ARRAY)
        agreement = float(
            np.mean(
                engine.predict(mnist.test_features[:100])
                == model.predict(mnist.test_features[:100])
            )
        )
        return engine.stats(), agreement

    stats, agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    print_section(
        "Table II cross-check: functional simulator (MEMHD 128x128, MNIST profile)",
        format_table([stats.as_dict()], float_format="{:.2f}")
        + f"\nsoftware/hardware prediction agreement: {agreement * 100:.1f}%",
    )
    assert stats.em_cycles_per_inference == 7
    assert stats.am_cycles_per_inference == 1
    assert stats.total_arrays == 8
    assert stats.am_column_utilization == pytest.approx(1.0)
    assert agreement == pytest.approx(1.0)
