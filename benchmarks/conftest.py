"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index) and prints the
corresponding rows/series, so the captured output of

    pytest benchmarks/ --benchmark-only

is a text rendition of the paper's evaluation.  The underlying experiments
run on the synthetic dataset surrogates at a reduced scale controlled by the
environment variables below, so the whole suite completes in minutes on a
laptop.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    Fraction of the paper-scale per-class sample budget (default 0.02 for
    MNIST/FMNIST profiles, 0.25 for ISOLET whose budget is already small).
``REPRO_BENCH_EPOCHS``
    Training epochs for iterative models (default 15; the paper uses 100).
``REPRO_BENCH_TRIALS``
    Number of repeated trials averaged per configuration (default 1; the
    paper uses 5).

Smoke mode
----------
Passing ``--smoke`` (registered by the repository-root ``conftest.py``)
overrides the knobs above with tiny sizes so every benchmark finishes in
seconds.  CI runs each ``bench_*.py`` this way to keep the perf code from
rotting; locally the same flag gives a fast sanity pass.  Benchmarks that
gate on real measurements (e.g. the packed-similarity speedup assertions)
use the :func:`smoke` fixture to relax themselves accordingly.
"""

from __future__ import annotations

import os

import pytest

from repro.data.datasets import load_dataset


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return float(value) if value else default


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


#: Reduced-scale settings used by every benchmark module.
BENCH_SCALE_IMAGE = _env_float("REPRO_BENCH_SCALE", 0.02)
BENCH_SCALE_ISOLET = _env_float("REPRO_BENCH_SCALE_ISOLET", 0.25)
BENCH_EPOCHS = _env_int("REPRO_BENCH_EPOCHS", 15)
BENCH_TRIALS = _env_int("REPRO_BENCH_TRIALS", 1)

#: True when the suite runs under ``--smoke`` (set by pytest_configure).
SMOKE = False


def pytest_configure(config):
    """Shrink every knob to smoke-test sizes when ``--smoke`` is passed.

    This runs before collection, so benchmark modules that do
    ``from conftest import BENCH_EPOCHS`` at import time observe the
    shrunken values.
    """
    global SMOKE, BENCH_SCALE_IMAGE, BENCH_SCALE_ISOLET, BENCH_EPOCHS, BENCH_TRIALS
    if config.getoption("--smoke", default=False):
        SMOKE = True
        # Epochs and trials dominate the runtime; the dataset scales stay at
        # their defaults because several benchmarks assert above-chance
        # accuracy, which needs a statistically meaningful sample count.
        BENCH_SCALE_IMAGE = min(BENCH_SCALE_IMAGE, 0.02)
        BENCH_SCALE_ISOLET = min(BENCH_SCALE_ISOLET, 0.25)
        # Not fewer: the ablation sweep's convergence gates need a few epochs.
        BENCH_EPOCHS = min(BENCH_EPOCHS, 4)
        BENCH_TRIALS = 1


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """Whether the run is a ``--smoke`` run (tiny sizes, relaxed gates)."""
    return bool(request.config.getoption("--smoke", default=False))


def bench_dataset(name: str, seed: int = 0):
    """Load a dataset at benchmark scale (synthetic surrogate offline)."""
    scale = BENCH_SCALE_ISOLET if name == "isolet" else BENCH_SCALE_IMAGE
    return load_dataset(name, scale=scale, rng=seed)


@pytest.fixture(scope="session")
def mnist():
    return bench_dataset("mnist")


@pytest.fixture(scope="session")
def fmnist():
    return bench_dataset("fmnist")


@pytest.fixture(scope="session")
def isolet():
    return bench_dataset("isolet")


def print_section(title: str, body: str) -> None:
    """Uniform, easy-to-grep section formatting for benchmark output."""
    bar = "=" * max(len(title), 30)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
