"""Repository-level pytest configuration.

Two jobs:

* make the ``src``-layout package importable when the repo has not been
  ``pip install -e .``-ed (so both ``pytest`` and the historical
  ``PYTHONPATH=src pytest`` invocation work from a clean checkout), and
* register the shared ``--smoke`` option used by the benchmark suite
  (``benchmarks/conftest.py`` shrinks every workload when it is set) so CI
  and local runs share one knob.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks at tiny smoke-test sizes (CI uses this)",
    )
