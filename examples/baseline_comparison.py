#!/usr/bin/env python
"""Baseline comparison: the Fig. 3 accuracy-vs-memory study as a script.

Trains MEMHD at several DxC sizes plus the four baseline families
(BasicHDC, QuantHD, SearcHD, LeHDC) on a chosen dataset profile and prints
the accuracy / memory frontier -- the scriptable version of the Fig. 3
benchmark, with knobs for dataset scale, epochs and trials.

Run:  python examples/baseline_comparison.py --dataset fmnist --trials 2
"""

from __future__ import annotations

import argparse

from repro import MEMHDConfig, MEMHDModel, load_dataset
from repro.baselines import (
    BasicHDC,
    BasicHDCConfig,
    LeHDC,
    LeHDCConfig,
    QuantHD,
    QuantHDConfig,
    SearcHD,
    SearcHDConfig,
)
from repro.eval.experiments import accuracy_memory_curve
from repro.eval.reporting import format_accuracy_memory


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="fmnist", choices=("mnist", "fmnist", "isolet"))
    parser.add_argument("--scale", type=float, default=0.02, help="dataset scale (1.0 = paper scale)")
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--id-levels", type=int, default=32, help="L for ID-Level baselines")
    return parser.parse_args()


def build_factories(args):
    """Model factories for the sweep; each gets (f, k, seed) and returns a model."""
    epochs = args.epochs
    levels = args.id_levels

    def memhd(dimension, columns):
        def factory(f, k, seed):
            return MEMHDModel(
                f, k, MEMHDConfig(dimension=dimension, columns=columns, epochs=epochs, seed=seed), rng=seed
            )
        return f"MEMHD {dimension}x{columns}", factory

    def basic(dimension):
        def factory(f, k, seed):
            return BasicHDC(f, k, BasicHDCConfig(dimension=dimension, refine_epochs=epochs, seed=seed))
        return f"BasicHDC {dimension}D", factory

    def quanthd(dimension):
        def factory(f, k, seed):
            return QuantHD(f, k, QuantHDConfig(dimension=dimension, num_levels=levels, epochs=epochs, seed=seed))
        return f"QuantHD {dimension}D", factory

    def searchd(dimension):
        def factory(f, k, seed):
            return SearcHD(
                f, k, SearcHDConfig(dimension=dimension, num_models=8, num_levels=levels, epochs=1, seed=seed)
            )
        return f"SearcHD {dimension}D", factory

    def lehdc(dimension):
        def factory(f, k, seed):
            return LeHDC(
                f, k,
                LeHDCConfig(dimension=dimension, num_levels=levels, epochs=epochs, learning_rate=0.1, seed=seed),
            )
        return f"LeHDC {dimension}D", factory

    if args.dataset == "isolet":
        memhd_points = [memhd(128, 128), memhd(256, 128), memhd(512, 128)]
    else:
        memhd_points = [memhd(64, 64), memhd(128, 128), memhd(256, 256)]
    return memhd_points + [
        basic(512),
        basic(2048),
        quanthd(512),
        searchd(512),
        lehdc(256),
        lehdc(512),
    ]


def main() -> None:
    args = parse_args()
    dataset = load_dataset(args.dataset, scale=args.scale, rng=0)
    print("dataset:", dataset.summary())

    records = accuracy_memory_curve(
        dataset, build_factories(args), trials=args.trials, rng=7
    )
    print(
        "\n"
        + format_accuracy_memory(
            records, title=f"Accuracy vs memory on {args.dataset} (scale={args.scale})"
        )
    )

    best_baseline = max(
        (record for record in records if record.model != "MEMHD"),
        key=lambda record: record.test_accuracy,
    )
    competitive = [
        record
        for record in records
        if record.model == "MEMHD"
        and record.test_accuracy >= best_baseline.test_accuracy - 0.02
    ]
    if competitive:
        smallest = min(competitive, key=lambda record: record.memory_kib)
        ratio = best_baseline.memory_kib / smallest.memory_kib
        print(
            f"\n{smallest.label} matches the best baseline ({best_baseline.label}, "
            f"{best_baseline.test_accuracy * 100:.1f}%) within 2 points using "
            f"{ratio:.1f}x less memory."
        )
    else:
        print("\nNo MEMHD point matched the best baseline at this scale; "
              "increase --epochs or the MEMHD sizes to push the frontier.")


if __name__ == "__main__":
    main()
