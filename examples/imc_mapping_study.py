#!/usr/bin/env python
"""IMC mapping study: how MEMHD, basic and partitioned mappings use arrays.

Reproduces the Table II / Fig. 7 analysis for a configurable dataset and
array geometry, then cross-checks the MEMHD column against the functional
tile-level simulator with a real trained model.  Use this script to explore
"what if" questions the paper's fixed 128x128 setting cannot answer, e.g.

* How do the cycle/array counts change on a 256x256 or 64x64 macro?
* At which partition count does the partitioned baseline stop saving arrays?
* What does the energy picture look like with your own cost constants?

Run:  python examples/imc_mapping_study.py [--rows 128] [--cols 128]
"""

from __future__ import annotations

import argparse

from repro import IMCArrayConfig, InMemoryInference, MEMHDConfig, MEMHDModel, load_dataset
from repro.eval.reporting import format_table
from repro.imc.analysis import (
    energy_comparison,
    full_mapping_report,
    improvement_factors,
    table2_rows,
)
from repro.imc.cost_model import CostModel, IMCCostParameters


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=128, help="IMC array rows")
    parser.add_argument("--cols", type=int, default=128, help="IMC array columns")
    parser.add_argument(
        "--dataset", default="mnist", choices=("mnist", "fmnist", "isolet")
    )
    parser.add_argument(
        "--baseline-dimension", type=int, default=10240,
        help="dimensionality of the Basic/Partitioning baselines",
    )
    parser.add_argument(
        "--mvm-energy-pj", type=float, default=None,
        help="override the per-activation MVM energy of the cost model",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    array = IMCArrayConfig(args.rows, args.cols)
    dataset = load_dataset(args.dataset, scale=0.03, rng=1)
    num_features = dataset.num_features
    num_classes = dataset.num_classes

    # MEMHD sized to the array: D = rows (or a small multiple for many-class
    # datasets), C = cols.
    memhd_dimension = array.rows if num_classes <= array.cols else array.rows * 4
    memhd_columns = array.cols
    partitions = (5, 10) if args.baseline_dimension % 5 == 0 else (2, 4)

    # ------------------------------------------------------- Table II view
    reports = full_mapping_report(
        num_features=num_features,
        num_classes=num_classes,
        baseline_dimension=args.baseline_dimension,
        memhd_dimension=memhd_dimension,
        memhd_columns=memhd_columns,
        partition_counts=partitions,
        array=array,
    )
    print(
        format_table(
            table2_rows(reports),
            title=f"Mapping analysis on {array.label} arrays ({args.dataset})",
        )
    )
    factors = improvement_factors(reports)
    print(
        f"\nMEMHD vs Basic: {factors['cycle_reduction']:.1f}x fewer cycles, "
        f"{factors['array_reduction']:.1f}x fewer arrays, "
        f"+{factors['utilization_gain'] * 100:.1f} pp AM utilization"
    )

    # ---------------------------------------------------------- Fig 7 view
    cost_model = None
    if args.mvm_energy_pj is not None:
        cost_model = CostModel(
            IMCCostParameters(mvm_energy_pj=args.mvm_energy_pj), array=array
        )
    entries = energy_comparison(
        [
            {"name": "Basic", "dimension": args.baseline_dimension, "num_vectors": num_classes},
            {
                "name": f"Partitioned (P={partitions[-1]})",
                "dimension": args.baseline_dimension // partitions[-1],
                "num_vectors": num_classes * partitions[-1],
                "partitions": partitions[-1],
            },
            {"name": "MEMHD", "dimension": memhd_dimension, "num_vectors": memhd_columns},
        ],
        array=array,
        cost_model=cost_model,
    )
    print(
        "\n"
        + format_table(
            [entry.as_dict() for entry in entries],
            columns=["model", "am_structure", "arrays", "cycles", "energy_pj", "normalized_energy"],
            float_format="{:.1f}",
            title="Associative-memory energy comparison",
        )
    )

    # --------------------------------------------- functional cross-check
    model = MEMHDModel(
        num_features,
        num_classes,
        MEMHDConfig(dimension=memhd_dimension, columns=memhd_columns, epochs=10, seed=2),
        rng=2,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    engine = InMemoryInference(model, array)
    stats = engine.stats()
    agreement = engine.matches_software_model(dataset.test_features[:100])
    print(
        f"\nFunctional simulation of the trained MEMHD {model.shape_label} model: "
        f"{stats.total_arrays} arrays, {stats.total_cycles_per_inference} cycles/inference, "
        f"bit-exact vs software: {agreement}"
    )


if __name__ == "__main__":
    main()
