#!/usr/bin/env python
"""Initialization study: clustering vs. random sampling and the ratio R.

Scriptable version of the paper's Fig. 5 and Fig. 6: trains MEMHD twice with
identical hyperparameters but different initializations and prints the
accuracy-per-epoch curves, then sweeps the initial cluster ratio R and
reports its effect for a column-rich and a column-poor AM.

Run:  python examples/initialization_and_ratio.py --dataset isolet
"""

from __future__ import annotations

import argparse

from repro import MEMHDConfig, load_dataset
from repro.eval.experiments import cluster_ratio_sweep, initialization_comparison
from repro.eval.reporting import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="mnist", choices=("mnist", "fmnist", "isolet"))
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--dimension", type=int, default=256)
    parser.add_argument("--columns", type=int, default=128)
    parser.add_argument("--epochs", type=int, default=20)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    dataset = load_dataset(args.dataset, scale=args.scale, rng=0)
    print("dataset:", dataset.summary())

    columns = max(args.columns, dataset.num_classes)
    config = MEMHDConfig(
        dimension=args.dimension, columns=columns, epochs=args.epochs, seed=0
    )

    # ------------------------------------------------------------- Fig. 5
    histories = initialization_comparison(dataset, config, rng=5)
    clustering = histories["clustering"]
    random_sampling = histories["random"]
    rows = [
        {
            "epoch": epoch + 1,
            "clustering_%": 100.0 * clustering.train_accuracy[min(epoch, clustering.epochs - 1)],
            "random_%": 100.0 * random_sampling.train_accuracy[min(epoch, random_sampling.epochs - 1)],
        }
        for epoch in range(max(clustering.epochs, random_sampling.epochs))
    ]
    print(
        "\n"
        + format_table(
            rows,
            float_format="{:.1f}",
            title=f"Clustering vs random-sampling initialization ({args.dimension}x{columns})",
        )
    )
    gap = clustering.initial_accuracy - random_sampling.initial_accuracy
    print(
        f"initial accuracy gap: {gap * 100:+.2f} pp in favour of clustering "
        f"({clustering.initial_accuracy * 100:.1f}% vs {random_sampling.initial_accuracy * 100:.1f}%)"
    )

    # ------------------------------------------------------------- Fig. 6
    ratios = (0.2, 0.4, 0.6, 0.8, 1.0)
    for column_budget in (columns, max(dataset.num_classes, columns // 4)):
        sweep_config = config.with_updates(columns=column_budget, epochs=max(5, args.epochs // 2))
        results = cluster_ratio_sweep(dataset, sweep_config, ratios, rng=13)
        rows = [
            {"R": ratio, "accuracy_%": 100.0 * accuracy}
            for ratio, accuracy in sorted(results.items())
        ]
        print(
            "\n"
            + format_table(
                rows,
                float_format="{:.2f}",
                title=f"Cluster-ratio sweep at {args.dimension}x{column_budget}",
            )
        )


if __name__ == "__main__":
    main()
