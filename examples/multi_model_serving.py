#!/usr/bin/env python
"""Serving-v2 walkthrough: multi-model daemon, micro-batching, hot-swap.

This script mirrors the README's "Multi-model serving" section:

1. train two MEMHD checkpoints (two tags of one artifact) plus a second
   artifact, into a throwaway registry,
2. start one `ModelServer` hosting both artifacts with micro-batching,
3. route requests by URL path and by JSON `model` field and verify both
   models answer bit-identically to their in-process originals,
4. hot-swap `demo` from v1 to v2 with `POST /reload` while requests keep
   flowing (zero downtime, responses always wholly from one version),
5. drive the daemon with the `repro loadtest` closed-loop generator and
   print QPS + latency quantiles and the scheduler's batch histogram.

Everything below also works across processes: the CLI equivalent is

    repro train --dataset mnist --save demo:v1 --store STORE
    repro serve --models demo:latest,alt:v1 --store STORE --port 8000
    repro loadtest --url http://127.0.0.1:8000 --concurrency 32
    curl -X POST http://127.0.0.1:8000/reload -d '{"model": "demo"}'

Run:  python examples/multi_model_serving.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request

from repro import MEMHDConfig, MEMHDModel, load_dataset
from repro.io import ArtifactRegistry
from repro.runtime import ModelServer, run_load


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


# ---------------------------------------------------------------------- 1.
# Train three small models: two versions of "demo" and one "alt".
dataset = load_dataset("mnist", scale=0.01, rng=0)


def train(seed: int) -> MEMHDModel:
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=128, columns=32, epochs=3, seed=seed),
        rng=seed,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    return model


versions = {"demo:v1": train(1), "demo:v2": train(2), "alt:v1": train(3)}

with tempfile.TemporaryDirectory() as store_dir:
    registry = ArtifactRegistry(store_dir)
    for spec, model in versions.items():
        name, _, tag = spec.partition(":")
        registry.save(model, name, tag=tag, dataset=dataset)
    print(f"saved {', '.join(versions)} into {store_dir}")

    # ------------------------------------------------------------------ 2.
    # One daemon, two routed models, micro-batching on.  "demo" resolves
    # to its newest tag (v2 -- saved last), so we pin v1 explicitly to
    # demonstrate the hot swap below.
    server = ModelServer(
        models=["demo:v1", "alt:v1"],
        registry=registry,
        engine="packed",
        max_batch_size=64,
        max_wait_ms=2.0,
        queue_depth=256,
        port=0,
    )
    with server:
        print(f"serving {server.pool.keys()} on {server.url}")

        # -------------------------------------------------------------- 3.
        # Route by path and by body; verify bit-exactness per model.
        probe = dataset.test_features[:16]
        by_path = post(server.url + "/models/alt/predict", {"features": probe.tolist()})
        by_body = post(
            server.url + "/predict", {"features": probe.tolist(), "model": "alt"}
        )
        assert by_path["labels"] == by_body["labels"]
        expected = versions["alt:v1"].predict(probe, engine="packed")
        assert by_path["labels"] == [int(label) for label in expected]
        print(f"routing ok: alt answers bit-identically ({by_path['artifact']})")

        # -------------------------------------------------------------- 4.
        # Hot-swap demo v1 -> v2.  The reply names the exact artifact and
        # version each response came from, so a client can observe the
        # cutover; no request ever sees a half-swapped model.
        before = post(server.url + "/predict", {"features": probe.tolist()})
        swap = post(server.url + "/reload", {"model": "demo", "spec": "demo:v2"})
        after = post(server.url + "/predict", {"features": probe.tolist()})
        assert (before["artifact"], after["artifact"]) == ("demo:v1", "demo:v2")
        assert after["version"] == before["version"] + 1
        assert after["labels"] == [
            int(label)
            for label in versions["demo:v2"].predict(probe, engine="packed")
        ]
        print(
            f"hot-swapped {before['artifact']} -> {swap['artifact']} "
            f"(version {swap['version']}) with zero downtime"
        )

        # -------------------------------------------------------------- 5.
        # Load-test the batched daemon (the CLI equivalent is
        # `repro loadtest --url ... --concurrency 16`).
        report = run_load(
            server.url, mode="closed", concurrency=16, duration_seconds=1.5
        )
        assert report.errors == 0
        stats = post(server.url + "/predict", {"features": probe.tolist()})  # warm
        histogram = server.pool.get("demo").scheduler.stats.as_dict()[
            "batch_size_histogram"
        ]
        print(
            f"loadtest: {report.qps:.0f} queries/s, "
            f"p50 {1000 * report.latency_percentile(0.5):.1f} ms, "
            f"p99 {1000 * report.latency_percentile(0.99):.1f} ms"
        )
        print(f"micro-batch histogram (rows -> dispatches): {histogram}")
        assert stats["count"] == len(probe)

print("multi-model serving walkthrough complete")
