#!/usr/bin/env python
"""Device non-ideality study: MEMHD accuracy under IMC cell and readout faults.

Maps a trained MEMHD model onto IMC arrays with the functional simulator and
sweeps three non-ideality mechanisms -- retention/write bit flips, stuck-at
cells and analog read noise -- reporting the accuracy of the mapped model at
each fault level.  This is the repository's extension experiment (E9 in
DESIGN.md): it quantifies the robustness the paper's IMC deployment relies
on implicitly.

Run:  python examples/noise_robustness.py --dataset mnist --dimension 256
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import IMCArrayConfig, InMemoryInference, MEMHDConfig, MEMHDModel, load_dataset
from repro.eval.reporting import format_table
from repro.imc.noise import NoiseModel


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="mnist", choices=("mnist", "fmnist", "isolet"))
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--dimension", type=int, default=128)
    parser.add_argument("--columns", type=int, default=128)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--trials", type=int, default=3, help="random fault patterns per level")
    return parser.parse_args()


def accuracy_under(model, dataset, noise: NoiseModel, trials: int) -> float:
    """Average mapped-model accuracy over several random fault patterns."""
    values = []
    for seed in range(trials):
        engine = InMemoryInference(model, IMCArrayConfig(128, 128), noise=noise, rng=seed)
        predictions = engine.predict(dataset.test_features)
        values.append(float(np.mean(predictions == dataset.test_labels)))
    return float(np.mean(values))


def main() -> None:
    args = parse_args()
    dataset = load_dataset(args.dataset, scale=args.scale, rng=0)
    columns = max(args.columns, dataset.num_classes)
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=args.dimension, columns=columns, epochs=args.epochs, seed=0),
        rng=0,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    clean = model.score(dataset.test_features, dataset.test_labels)
    print("dataset:", dataset.summary())
    print(f"clean (software) accuracy: {clean * 100:.1f}%\n")

    rows = []
    for rate in (0.0, 0.005, 0.01, 0.02, 0.05, 0.10):
        accuracy = accuracy_under(
            model, dataset, NoiseModel(bit_flip_probability=rate), args.trials
        )
        rows.append({"fault": "bit flip", "level": rate, "accuracy_%": 100.0 * accuracy})
    for rate in (0.01, 0.05):
        accuracy = accuracy_under(
            model,
            dataset,
            NoiseModel(stuck_at_zero_probability=rate, stuck_at_one_probability=rate),
            args.trials,
        )
        rows.append({"fault": "stuck-at (0 and 1)", "level": rate, "accuracy_%": 100.0 * accuracy})
    for sigma in (0.5, 1.0, 2.0, 4.0):
        accuracy = accuracy_under(
            model, dataset, NoiseModel(read_noise_sigma=sigma), args.trials
        )
        rows.append({"fault": "read noise sigma", "level": sigma, "accuracy_%": 100.0 * accuracy})

    print(
        format_table(
            rows,
            float_format="{:.3g}",
            title=f"MEMHD {model.shape_label} accuracy under injected IMC faults ({args.dataset})",
        )
    )


if __name__ == "__main__":
    main()
