#!/usr/bin/env python
"""Online adaptation: streaming updates and new-class addition in the field.

MEMHD targets resource-constrained edge deployments, where two maintenance
operations matter after the model has been flashed into the IMC array:

1. **streaming refinement** -- folding newly labelled samples into the
   deployed binary AM without re-running clustering (``OnlineMEMHD.partial_fit``),
2. **class addition** -- teaching the model a class that did not exist at
   training time while keeping the AM exactly one array in size
   (``OnlineMEMHD.add_class``).

This script trains MEMHD on a subset of classes, then streams the remaining
data and finally adds a brand-new class, reporting accuracy after each step.

Run:  python examples/online_learning.py
"""

from __future__ import annotations

import numpy as np

from repro import MEMHDConfig, MEMHDModel
from repro.core.online import OnlineMEMHD
from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset
from repro.eval.reporting import format_table


def main() -> None:
    # A 6-class workload; the model is initially trained on classes 0-4 and
    # class 5 arrives only after deployment.
    spec = SyntheticSpec(
        num_classes=6,
        num_features=64,
        train_per_class=150,
        test_per_class=40,
        modes_per_class=4,
        latent_dim=12,
        class_separation=3.0,
        noise_scale=0.35,
    )
    dataset = make_synthetic_dataset("edge-stream", spec, rng=3)
    known = dataset.train_labels < 5
    novel = ~known

    model = MEMHDModel(
        dataset.num_features,
        5,  # only the initially-known classes
        MEMHDConfig(dimension=128, columns=60, epochs=15, seed=0),
        rng=0,
    )
    model.fit(dataset.train_features[known], dataset.train_labels[known])

    online = OnlineMEMHD(model, learning_rate=0.03, rng=np.random.default_rng(1))
    test_known = dataset.test_labels < 5

    rows = []

    def record(stage: str) -> None:
        known_accuracy = online.evaluate(
            dataset.test_features[test_known], dataset.test_labels[test_known]
        )
        overall = online.evaluate(dataset.test_features, dataset.test_labels)
        rows.append(
            {
                "stage": stage,
                "classes": online.num_classes,
                "known-class accuracy_%": 100.0 * known_accuracy,
                "all-class accuracy_%": 100.0 * overall,
            }
        )

    record("after initial training (classes 0-4)")

    # ----------------------------------------------------- streaming phase
    stream_x = dataset.train_features[known]
    stream_y = dataset.train_labels[known]
    order = np.random.default_rng(2).permutation(stream_x.shape[0])
    for start in range(0, order.size, 64):
        batch = order[start : start + 64]
        online.partial_fit(stream_x[batch], stream_y[batch])
    record("after streaming refinement")

    # -------------------------------------------------- class-addition phase
    new_class_samples = dataset.train_features[novel]
    online.add_class(new_class_samples, new_label=5, columns=8)
    for _ in range(5):
        online.partial_fit(dataset.train_features, dataset.train_labels)
    record("after adding class 5 (8 columns, AM size unchanged)")

    print(format_table(rows, float_format="{:.1f}", title="Online adaptation"))
    columns_per_class = model.associative_memory.columns_per_class()
    print("\ncolumns per class after adaptation:", columns_per_class)
    print("total AM columns:", model.associative_memory.num_columns,
          "(unchanged - still fits the same IMC array)")


if __name__ == "__main__":
    main()
