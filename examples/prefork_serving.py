#!/usr/bin/env python
"""Prefork scale-out walkthrough: worker processes over one shared port.

This script mirrors the README's "Prefork scale-out" section:

1. train a MEMHD checkpoint into a throwaway registry,
2. start a `WorkerSupervisor` with two workers sharing the port and a
   memory-mapped (zero-copy) copy of the packed AM,
3. verify responses are bit-identical to the in-process model and that
   the cluster `/stats` attributes traffic to every worker,
4. SIGKILL one worker and watch the supervisor respawn it while the
   other worker keeps serving,
5. fan a `POST /reload` out to every worker and verify the new version
   answers everywhere,
6. drive the pool with the `repro loadtest` closed-loop generator.

The CLI equivalent is

    repro train --dataset mnist --save demo --store STORE
    repro serve --models demo --store STORE --port 8000 --workers 2
    repro loadtest --url http://127.0.0.1:8000 --concurrency 16
    curl -X POST http://127.0.0.1:8000/reload -d '{"model": "demo"}'

Run:  python examples/prefork_serving.py
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import time
import urllib.request

from repro import MEMHDConfig, MEMHDModel, load_dataset
from repro.io import ArtifactRegistry
from repro.runtime import WorkerConfig, WorkerSupervisor, fork_available, run_load


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


if not fork_available():
    print("prefork serving requires the 'fork' start method; skipping")
    sys.exit(0)

# ---------------------------------------------------------------------- 1.
# Train two versions of one artifact into a throwaway registry.
dataset = load_dataset("mnist", scale=0.01, rng=0)


def train(seed: int) -> MEMHDModel:
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=128, columns=32, epochs=3, seed=seed),
        rng=seed,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    return model


v1, v2 = train(1), train(2)
probe = dataset.test_features[:16]
expected_v1 = [int(x) for x in v1.predict(probe, engine="packed")]
expected_v2 = [int(x) for x in v2.predict(probe, engine="packed")]

with tempfile.TemporaryDirectory() as store_dir:
    registry = ArtifactRegistry(store_dir)
    registry.save(v1, "demo", tag="v1", dataset=dataset)
    registry.save(v2, "demo", tag="v2", dataset=dataset)
    print(f"saved demo:v1, demo:v2 into {store_dir}")

    # ------------------------------------------------------------------ 2.
    # Two worker processes, one shared port, one mmap'd AM copy.  The
    # `inherit` socket mode keeps the accept queue in the parent, so the
    # respawn below never drops a connection.
    config = WorkerConfig(
        models=("demo:v1",),
        store=store_dir,
        engine="packed",
        mapped=True,
        drain_timeout=10.0,
    )
    with WorkerSupervisor(config, workers=2, socket_mode="inherit") as supervisor:
        print(
            f"serving demo:v1 on {supervisor.url} with "
            f"{supervisor.alive_count()} workers ({supervisor.socket_mode})"
        )

        # -------------------------------------------------------------- 3.
        # Bit-exact responses + per-worker attribution in cluster stats.
        for _ in range(10):
            reply = post(supervisor.url + "/predict", {"features": probe.tolist()})
            assert reply["labels"] == expected_v1
        stats = get(supervisor.url + "/stats")
        shares = {
            worker: snapshot["requests"]
            for worker, snapshot in sorted(stats["workers"].items())
        }
        assert stats["workers_total"] == 2
        print(f"cluster /stats: request share by worker = {shares}")

        # -------------------------------------------------------------- 4.
        # Kill a worker; the supervisor respawns it (exponential backoff)
        # while the sibling keeps answering.
        victim_id, victim_pid = sorted(supervisor.worker_pids().items())[0]
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            replacement = supervisor.worker_pids().get(victim_id)
            if replacement not in (None, victim_pid):
                break
            reply = post(supervisor.url + "/predict", {"features": probe.tolist()})
            assert reply["labels"] == expected_v1  # service never degrades
            time.sleep(0.1)
        else:
            raise RuntimeError("worker was not respawned in time")
        print(
            f"SIGKILLed worker {victim_id} (pid {victim_pid}); respawned as "
            f"pid {replacement} -- {supervisor.respawns} respawn(s), "
            "zero dropped requests"
        )

        # -------------------------------------------------------------- 5.
        # Coordinated reload: every worker swaps to v2; each response is
        # wholly one version, and afterwards v2 answers everywhere.
        swap = post(supervisor.url + "/reload", {"model": "demo", "spec": "demo:v2"})
        assert swap["status"] == "reloaded", swap
        for _ in range(10):
            reply = post(supervisor.url + "/predict", {"features": probe.tolist()})
            assert reply["labels"] == expected_v2
        print(
            f"reload fanned out to workers {sorted(swap['workers'])}; "
            "all responses now come from demo:v2"
        )

        # -------------------------------------------------------------- 6.
        # Saturate the pool (CLI: `repro loadtest --url ...`).
        report = run_load(
            supervisor.url, mode="closed", concurrency=8, duration_seconds=1.0
        )
        assert report.errors == 0
        print(
            f"loadtest: {report.qps:.0f} queries/s across "
            f"{supervisor.alive_count()} workers, "
            f"p99 {1000 * report.latency_percentile(0.99):.1f} ms"
        )

print("prefork serving walkthrough complete")
