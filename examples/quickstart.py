#!/usr/bin/env python
"""Quickstart: train MEMHD on an MNIST-profile workload and map it to IMC arrays.

This script walks through the full MEMHD pipeline on a laptop-scale
synthetic surrogate of MNIST (see DESIGN.md for the substitution rationale):

1. load a dataset,
2. configure and train a MEMHD model (clustering-based initialization +
   quantization-aware iterative learning),
3. evaluate it against a BasicHDC baseline of much higher dimensionality,
4. map the trained model onto 128x128 IMC arrays with the functional
   simulator and verify the mapping is bit-exact,
5. print the memory / cycle / array accounting that motivates the paper.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import IMCArrayConfig, InMemoryInference, MEMHDConfig, MEMHDModel, load_dataset
from repro.baselines import BasicHDC, BasicHDCConfig
from repro.eval.reporting import format_table


def main() -> None:
    # ------------------------------------------------------------------ 1.
    # A reduced-scale MNIST profile: 784 features, 10 classes.  Increase
    # `scale` toward 1.0 to approach the paper's 6000 samples per class.
    dataset = load_dataset("mnist", scale=0.03, rng=0)
    print("dataset:", dataset.summary())

    # ------------------------------------------------------------------ 2.
    # MEMHD sized for a 128x128 IMC array: D = 128 rows, C = 128 columns.
    config = MEMHDConfig(
        dimension=128,
        columns=128,
        cluster_ratio=0.8,
        epochs=20,
        learning_rate=0.05,
        seed=7,
    )
    model = MEMHDModel(dataset.num_features, dataset.num_classes, config, rng=7)
    history = model.fit(
        dataset.train_features,
        dataset.train_labels,
        validation=(dataset.test_features, dataset.test_labels),
    )
    print(
        f"\nMEMHD {model.shape_label}: initial accuracy "
        f"{history.initial_accuracy * 100:.1f}% -> final train accuracy "
        f"{history.final_train_accuracy * 100:.1f}% after {history.epochs} epochs"
    )
    memhd_accuracy = model.score(dataset.test_features, dataset.test_labels)
    print(f"MEMHD test accuracy: {memhd_accuracy * 100:.1f}%")

    # ------------------------------------------------------------------ 3.
    # A BasicHDC baseline with 16x the dimensionality, the conventional
    # "one class vector per class" design the paper improves on.
    baseline = BasicHDC(
        dataset.num_features,
        dataset.num_classes,
        BasicHDCConfig(dimension=2048, refine_epochs=20, seed=7),
    )
    baseline.fit(dataset.train_features, dataset.train_labels)
    baseline_accuracy = baseline.score(dataset.test_features, dataset.test_labels)

    rows = []
    for name, classifier, accuracy in (
        (f"MEMHD {model.shape_label}", model, memhd_accuracy),
        ("BasicHDC 2048D", baseline, baseline_accuracy),
    ):
        report = classifier.memory_report()
        rows.append(
            {
                "model": name,
                "test_accuracy_%": 100.0 * accuracy,
                "encoder_KB": report.encoder_kib,
                "am_KB": report.am_kib,
                "total_KB": report.total_kib,
            }
        )
    print("\n" + format_table(rows, float_format="{:.1f}", title="Accuracy vs memory"))

    # ------------------------------------------------------------------ 4.
    # Map the trained model onto 128x128 IMC arrays and run inference there.
    engine = InMemoryInference(model, IMCArrayConfig(128, 128))
    assert engine.matches_software_model(dataset.test_features[:200])
    stats = engine.stats()
    print(
        "\nIn-memory mapping on "
        f"{stats.array_label} arrays: {stats.total_arrays} arrays, "
        f"{stats.total_cycles_per_inference} cycles per inference "
        f"({stats.em_cycles_per_inference} encoding + "
        f"{stats.am_cycles_per_inference} associative search), "
        f"AM column utilization {stats.am_column_utilization * 100:.0f}%"
    )
    print("functional simulation matches the software model bit-exactly.")


if __name__ == "__main__":
    main()
