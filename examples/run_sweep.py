"""Walkthrough: declarative experiment sweeps with resume, diff and save-best.

The paper's figures are parameter grids.  This example declares one as a
``SweepSpec``, runs it through the experiment-matrix engine (the library
face of ``repro sweep run``), interrupts it halfway to show the resume
behaviour, renders the results, and diffs two stores the way the
golden-metrics regression test does.

Run me:  python examples/run_sweep.py
"""

import tempfile
from pathlib import Path

from repro import ResultStore, SweepSpec, run_sweep
from repro.eval.reporting import format_heatmap, format_store_diff, format_sweep_records, sweep_grid
from repro.eval.sweep import best_record, spec_records, train_record_model

workdir = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
store = ResultStore(workdir / "results.jsonl")

# ---------------------------------------------------------------- 1. declare
# A Fig. 4 style grid plus an engine axis: every cell trains one model with
# a deterministic seed derived from the spec seed and the cell's config
# hash, so reruns (anywhere, in any order) reproduce identical metrics.
spec = SweepSpec(
    models=("memhd", "basichdc"),
    datasets=("mnist",),
    dimensions=(32, 64, 128),
    columns=(16, 32),
    engines=("float", "packed"),
    scale=0.02,
    epochs=3,
    seed=42,
)
print(f"grid expands to {len(spec.expand())} unique cells")

# ------------------------------------------------- 2. run (interrupted) ...
# Simulate a killed sweep: run only 4 cells, then "come back later".
partial = run_sweep(spec, store, workers=2, max_jobs=4, progress=print)
print("after the interruption:", partial.summary())

# ----------------------------------------------------------- 3. ... resume
# The same spec against the same store completes only the missing cells.
resumed = run_sweep(spec, store, workers=2, progress=print)
print("after the resume:", resumed.summary())
assert resumed.skipped == 4  # nothing already done is re-trained

# ------------------------------------------------------------- 4. report
records = spec_records(spec, store)
print()
print(format_sweep_records(records, title="Sweep results"))
print()
print(format_heatmap(
    sweep_grid([r for r in records if r.config.get("engine") == "float"]),
    title="MEMHD accuracy (%) over D (rows) x C (columns)",
))

# ------------------------------------------------------------ 5. save-best
best = best_record(records)
model, dataset = train_record_model(best)  # deterministic reconstruction
print(
    f"\nbest cell: {best.config['model']} D={best.config['dimension']} "
    f"-> accuracy {100 * best.metrics['test_accuracy']:.2f}% "
    f"(rebuilt model scores "
    f"{100 * model.score(dataset.test_features, dataset.test_labels):.2f}%)"
)

# ---------------------------------------------------------------- 6. diff
# Regression checking: re-run the sweep into a second store and compare.
# (`repro sweep diff a.jsonl b.jsonl` is the CLI face of the same check.)
second = ResultStore(workdir / "rerun.jsonl")
run_sweep(spec, second, workers=2)
diff = store.diff(second)
print()
print(format_store_diff(diff, title="original vs re-run"))
assert diff.is_clean, "deterministic seeds make re-runs bit-identical"
