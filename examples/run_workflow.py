"""Walkthrough: declarative run orchestration with provenance and resume.

``repro run workflow.yml`` executes a whole experiment pipeline -- dataset
prep, training, a sweep, a benchmark, a serving smoke test -- from one
declarative spec, recording every step (config hash, git rev, artifacts,
metrics, wall time) in a SQLite run database next to the artifact store.
This example drives the same library API the CLI uses: it runs a tiny
workflow, shows that a second run skips everything (the resume check is
config-hash + artifact-fingerprint equality), perturbs one step to show
the stale-detection and "what changed" report, and renders the QA report.

Run me:  python examples/run_workflow.py
"""

import tempfile
from pathlib import Path

from repro.orchestrate import (
    WorkflowSpec,
    build_report,
    run_workflow,
    workflow_status,
)

workdir = Path(tempfile.mkdtemp(prefix="repro-workflow-"))

# ---------------------------------------------------------------- 1. declare
# The dict form of examples/workflow.yml, shrunk for speed.  Steps name
# their dependencies with `needs:`; the runner topologically sorts them
# and can fan independent steps out over worker processes.
payload = {
    "name": "example",
    "seed": 11,
    "steps": [
        {
            "name": "prep",
            "kind": "dataset",
            "config": {"dataset": "mnist", "scale": 0.01},
        },
        {
            "name": "train",
            "kind": "train",
            "needs": ["prep"],
            "config": {
                "model": "memhd",
                "dataset": "mnist",
                "scale": 0.01,
                "dimension": 64,
                "columns": 16,
                "epochs": 1,
                "save": "example-model:wf",
            },
        },
        {
            "name": "grid",
            "kind": "sweep",
            "needs": ["prep"],
            "config": {
                "spec": {
                    "models": ["memhd"],
                    "datasets": ["mnist"],
                    "dimensions": [32, 64],
                    "columns": [16],
                    "epochs": 1,
                    "scale": 0.01,
                    "seed": 11,
                }
            },
        },
        {
            "name": "bench",
            "kind": "bench",
            "needs": ["train"],
            "config": {
                "model": "example-model:wf",
                "dataset": "mnist",
                "scale": 0.01,
                "engines": ["float", "packed"],
            },
        },
    ],
}
spec = WorkflowSpec.from_dict(payload)
print(f"workflow {spec.name!r} ({spec.workflow_hash}): "
      f"{' -> '.join(step.name for step in spec.execution_order())}")

# -------------------------------------------------------------------- 2. run
result = run_workflow(spec, workdir, progress=print)
print(result.summary())
assert result.ok

# ------------------------------------------------------------- 3. run again
# Nothing changed, so every step is skipped: the RunDB already holds a
# completed execution with the same config hash whose recorded artifacts
# still fingerprint identically.
result = run_workflow(spec, workdir, progress=print)
assert all(step.action == "skipped" for step in result.steps)
print("second run:", result.summary())

# ----------------------------------------------------------------- 4. status
print()
print(workflow_status(spec, workdir))

# ---------------------------------------------------------------- 5. perturb
# Change one training knob: train is stale (config changed), and so is
# everything consuming its checkpoint -- but prep and grid stay skipped.
payload["steps"][1]["config"]["epochs"] = 2
perturbed = WorkflowSpec.from_dict(payload)
print()
print(workflow_status(perturbed, workdir))
result = run_workflow(perturbed, workdir, progress=print)
assert result.ok
actions = {step.name: step.action for step in result.steps}
assert actions["prep"] == "skipped" and actions["grid"] == "skipped"
assert actions["train"] == "executed" and actions["bench"] == "executed"

# ----------------------------------------------------------------- 6. report
# The QA report: per-step metrics + artifact provenance + sweep tables +
# a "what changed" diff against each step's previous execution.
# (`repro report workflow.yml --format html -o report.html` is the CLI face.)
print()
print(build_report(perturbed, workdir, fmt="markdown"))
