#!/usr/bin/env python
"""Persistence walkthrough: train once, checkpoint, reload, serve over HTTP.

This script mirrors the README's "Persistence & serving" section:

1. train a MEMHD model on an MNIST-profile workload,
2. checkpoint it into an artifact registry (named + tagged, with the
   dataset fingerprint and metrics in the manifest),
3. reload the checkpoint and verify predictions are bit-identical to the
   in-process model on both the float and the packed engine,
4. start the `repro serve` daemon on an ephemeral port and answer JSON
   /predict, /healthz and /stats requests against the warm model,
5. list and prune the registry.

Everything below also works across processes: the CLI equivalent is

    repro train   --dataset mnist --save mnist-memhd
    repro predict --dataset mnist --load mnist-memhd --engine packed
    repro serve   --load mnist-memhd --port 8000
    repro models  list

Run:  python examples/save_load_serve.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request

import numpy as np

from repro import MEMHDConfig, MEMHDModel, ModelServer, load_dataset
from repro.io import ArtifactRegistry

# ---------------------------------------------------------------------- 1.
# Train once.  This is the only expensive step in the whole file.
dataset = load_dataset("mnist", scale=0.02, rng=0)
model = MEMHDModel(
    dataset.num_features,
    dataset.num_classes,
    MEMHDConfig(dimension=128, columns=64, epochs=10, seed=7),
    rng=7,
)
model.fit(dataset.train_features, dataset.train_labels)
accuracy = model.score(dataset.test_features, dataset.test_labels)
print(f"trained MEMHD {model.shape_label}: test accuracy {accuracy * 100:.1f}%")

with tempfile.TemporaryDirectory() as store_dir:
    # ------------------------------------------------------------------ 2.
    # Checkpoint into a registry.  `--store` on the CLI maps to `root` here;
    # omitting it uses ~/.cache/repro (or $REPRO_STORE).
    registry = ArtifactRegistry(store_dir)
    entry = registry.save(
        model,
        "mnist-memhd",
        dataset=dataset,
        metrics={"test_accuracy": accuracy},
    )
    print(f"saved checkpoint {entry.spec} ({entry.size_bytes / 1024:.1f} KiB)")

    # ------------------------------------------------------------------ 3.
    # Reload ("mnist-memhd" resolves to the latest tag) and verify the
    # round-trip is bit-exact on both similarity engines.
    restored = registry.load("mnist-memhd")
    for engine in ("float", "packed"):
        assert np.array_equal(
            model.predict(dataset.test_features, engine=engine),
            restored.predict(dataset.test_features, engine=engine),
        ), engine
    print("restored model predicts bit-identically (float and packed engines)")

    # ------------------------------------------------------------------ 4.
    # Serve the restored model.  port=0 picks an ephemeral port; the CLI
    # equivalent (`repro serve --load mnist-memhd`) binds 8000 by default.
    server = ModelServer(
        restored,
        engine="packed",
        manifest=registry.inspect("mnist-memhd"),
        port=0,
    )
    with server:
        health = json.load(urllib.request.urlopen(server.url + "/healthz"))
        print(f"daemon is {health['status']} at {server.url} ({health['model']})")

        batch = dataset.test_features[:32]
        request = urllib.request.Request(
            server.url + "/predict",
            data=json.dumps({"features": batch.tolist()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = json.load(urllib.request.urlopen(request))
        assert response["labels"] == [int(x) for x in restored.predict(batch)]
        print(
            f"served {response['count']} queries over HTTP in "
            f"{response['elapsed_ms']:.2f} ms"
        )

        stats = json.load(urllib.request.urlopen(server.url + "/stats"))
        print(
            f"server stats: {stats['requests']} requests, "
            f"{stats['queries']} queries, "
            f"{stats['queries_per_second']:.0f} queries/s inside predict"
        )

    # ------------------------------------------------------------------ 5.
    # Registry bookkeeping: more tags, listing, pruning.
    registry.save(model, "mnist-memhd", dataset=dataset)
    print("stored tags:", registry.tags("mnist-memhd"))
    removed = registry.prune(name="mnist-memhd", keep=1)
    print(f"pruned {len(removed)} old checkpoint(s);", "kept", registry.tags("mnist-memhd"))

print("done: train once, serve forever.")
