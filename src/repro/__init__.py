"""MEMHD reproduction library.

A production-quality, pure-Python reproduction of *MEMHD: Memory-Efficient
Multi-Centroid Hyperdimensional Computing for Fully-Utilized In-Memory
Computing Architectures* (DATE 2025), together with every substrate the
paper depends on:

* :mod:`repro.hdc` -- hyperdimensional-computing building blocks
  (hypervectors, encoders, similarity, clustering, memory model),
* :mod:`repro.data` -- dataset loaders and synthetic workload generators,
* :mod:`repro.baselines` -- BasicHDC, QuantHD, SearcHD and LeHDC baselines,
* :mod:`repro.core` -- the MEMHD model (multi-centroid associative memory,
  clustering-based initialization, quantization-aware iterative learning),
* :mod:`repro.imc` -- in-memory-computing array model, mapping analysis,
  cost model and a bit-exact functional inference simulator,
* :mod:`repro.io` -- versioned model checkpoints and the on-disk artifact
  registry (train once, serve forever),
* :mod:`repro.runtime` -- batched inference pipeline (chunking, engine
  selection, thread-pool sharding, throughput stats) and the ``repro
  serve`` HTTP daemon,
* :mod:`repro.eval` -- metrics, experiment runners and report formatting,
* :mod:`repro.orchestrate` -- declarative workflow runs (``repro run``)
  with a SQLite provenance database, crash-safe resume and QA reports.

Quickstart::

    from repro import MEMHDModel, MEMHDConfig, load_dataset

    dataset = load_dataset("mnist", scale=0.05)
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=128, columns=128, epochs=10, seed=7),
    )
    model.fit(dataset.train_features, dataset.train_labels)
    print("test accuracy:", model.score(dataset.test_features, dataset.test_labels))
"""

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.core.associative_memory import MultiCentroidAM
from repro.baselines import BasicHDC, OnlineHD, QuantHD, SearcHD, LeHDC
from repro.data import load_dataset, Dataset
from repro.eval.store import ResultStore
from repro.eval.sweep import SweepSpec, run_sweep
from repro.orchestrate import RunDB, WorkflowSpec, run_workflow
from repro.hdc import PackedAM, pack_binary, pack_bipolar
from repro.imc import IMCArrayConfig, InMemoryInference
from repro.runtime import InferencePipeline, ModelServer, PipelineStats

__version__ = "1.3.0"

from repro.io import (  # noqa: E402 - needs __version__ for manifests
    ArtifactRegistry,
    CheckpointError,
    CheckpointManifest,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "MEMHDConfig",
    "MEMHDModel",
    "MultiCentroidAM",
    "BasicHDC",
    "OnlineHD",
    "QuantHD",
    "SearcHD",
    "LeHDC",
    "load_dataset",
    "Dataset",
    "ResultStore",
    "SweepSpec",
    "run_sweep",
    "RunDB",
    "WorkflowSpec",
    "run_workflow",
    "PackedAM",
    "pack_binary",
    "pack_bipolar",
    "IMCArrayConfig",
    "InMemoryInference",
    "InferencePipeline",
    "ModelServer",
    "PipelineStats",
    "ArtifactRegistry",
    "CheckpointError",
    "CheckpointManifest",
    "load_checkpoint",
    "save_checkpoint",
    "__version__",
]
