"""Baseline binary HDC classifiers the paper compares against (Table I).

All baselines implement the :class:`repro.baselines.base.HDCClassifier`
interface shared with :class:`repro.core.model.MEMHDModel`, so the
evaluation harness and the benchmarks can iterate over them uniformly.

* :class:`BasicHDC` -- random-projection encoding, single-pass (plus
  optional plain iterative refinement); the only baseline whose encoding
  and search are both MVM-compatible, hence the IMC mapping baseline of
  Table II.
* :class:`QuantHD` -- ID-Level encoding with quantization-aware iterative
  learning (Imani et al., 2019).
* :class:`SearcHD` -- ID-Level encoding with a multi-model (N binary
  vectors per class) stochastically-trained associative memory
  (Imani et al., 2019).
* :class:`LeHDC` -- ID-Level encoding with BNN-style gradient training of
  the binary class vectors (Duan et al., DAC 2022).
* :class:`OnlineHD` -- similarity-weighted floating-point HDC
  (Hernandez-Cano et al., DATE 2021); not part of the paper's Table I but
  included as the standard stronger non-binary baseline.
"""

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.baselines.basic_hdc import BasicHDC, BasicHDCConfig
from repro.baselines.quanthd import QuantHD, QuantHDConfig
from repro.baselines.searchd import SearcHD, SearcHDConfig
from repro.baselines.lehdc import LeHDC, LeHDCConfig
from repro.baselines.onlinehd import OnlineHD, OnlineHDConfig

__all__ = [
    "HDCClassifier",
    "TrainingHistory",
    "BasicHDC",
    "BasicHDCConfig",
    "QuantHD",
    "QuantHDConfig",
    "SearcHD",
    "SearcHDConfig",
    "LeHDC",
    "LeHDCConfig",
    "OnlineHD",
    "OnlineHDConfig",
]
