"""Shared classifier interface and training-history record.

Every model in the repository (the four baselines and MEMHD itself) exposes
the same minimal scikit-learn-like surface:

``fit(features, labels) -> TrainingHistory``
    Train on raw feature vectors (the model owns its encoder).
``predict(features) -> labels``
    Classify raw feature vectors.
``score(features, labels) -> float``
    Convenience accuracy.
``memory_report() -> MemoryReport``
    Table I storage breakdown of the trained (or configured) model.

Keeping the interface identical across models is what lets the Fig. 3 /
Fig. 7 benchmarks sweep over heterogeneous model families with one loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.eval.metrics import accuracy
from repro.hdc.memory_model import MemoryReport


@dataclass
class TrainingHistory:
    """Per-epoch training telemetry returned by ``fit``.

    Attributes
    ----------
    train_accuracy:
        Accuracy measured on the training split at the end of each epoch
        (after the binary-memory refresh for quantization-aware models).
    validation_accuracy:
        Accuracy on a held-out split, when the caller provided one.
    updates:
        Number of class-vector updates (mispredictions acted upon) per
        epoch; useful to observe convergence.
    initial_accuracy:
        Accuracy of the model immediately after initialization, before any
        iterative learning (the quantity Fig. 5 compares between clustering
        and random-sampling initialization).
    """

    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)
    updates: List[int] = field(default_factory=list)
    initial_accuracy: Optional[float] = None

    @property
    def epochs(self) -> int:
        return len(self.train_accuracy)

    @property
    def best_train_accuracy(self) -> float:
        if not self.train_accuracy:
            raise ValueError("history is empty")
        return max(self.train_accuracy)

    @property
    def final_train_accuracy(self) -> float:
        if not self.train_accuracy:
            raise ValueError("history is empty")
        return self.train_accuracy[-1]

    def epochs_to_reach(self, threshold: float) -> Optional[int]:
        """First epoch (1-based) whose train accuracy reaches ``threshold``.

        Returns ``None`` when the threshold is never reached; used by the
        Fig. 5 convergence-speed comparison.
        """
        for epoch, value in enumerate(self.train_accuracy, start=1):
            if value >= threshold:
                return epoch
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "train_accuracy": list(self.train_accuracy),
            "validation_accuracy": list(self.validation_accuracy),
            "updates": list(self.updates),
            "initial_accuracy": self.initial_accuracy,
            "epochs": self.epochs,
        }


class HDCClassifier(abc.ABC):
    """Abstract base class for every HDC classifier in the repository."""

    #: Human-readable family name matching Table I (set by subclasses).
    name: str = "HDCClassifier"

    @abc.abstractmethod
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[tuple] = None,
    ) -> TrainingHistory:
        """Train the classifier on raw features and integer labels."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict integer class labels for raw features."""

    @abc.abstractmethod
    def memory_report(self) -> MemoryReport:
        """Table I storage breakdown of this model instance."""

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of :meth:`predict` against ``labels``."""
        return accuracy(self.predict(features), np.asarray(labels))

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing.

        Together with ``(num_features, num_classes, config)`` these arrays
        must be sufficient for :meth:`from_checkpoint` to rebuild a model
        whose ``predict`` is bit-identical to the original.  Models ship
        concrete implementations; :mod:`repro.io.checkpoint` is the only
        intended caller.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "HDCClassifier":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output.

        Parameters
        ----------
        num_features / num_classes:
            Input dimensionality and label count of the original model.
        config:
            The model's configuration dataclass instance.
        arrays:
            The mapping produced by :meth:`checkpoint_arrays`.
        encoder_meta:
            Encoder hyperparameters recorded in the checkpoint manifest
            (``quantize_output``, ``binary_projection``, ID-Level value
            range); ``None`` falls back to the model's construction
            defaults.
        """
        raise NotImplementedError(f"{cls.__name__} does not support checkpointing")

    def _check_fit_inputs(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple:
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got ndim={x.ndim}")
        if y.ndim != 1:
            raise ValueError(f"labels must be 1-D, got ndim={y.ndim}")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same length")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if np.any(y < 0):
            raise ValueError("labels must be non-negative integers")
        return x, y
