"""BasicHDC: random-projection encoding with single-pass training.

This is the paper's ``BasicHDC`` row of Table I: both the encoding (an MVM
against a binary projection matrix) and the associative search (a dot
product against one binary class vector per class) map directly onto IMC
arrays, which makes BasicHDC the IMC-mapping baseline of Table II and
Fig. 7.

Training is single-pass: each class vector is the bundled (summed) set of
that class's encoded hypervectors, binarized at the end.  An optional
refinement stage runs the classical (non-quantization-aware) iterative
update of Eq. (2) for a configurable number of epochs, which is how the
higher-dimensional BasicHDC points in Fig. 3 are normally obtained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.hdc.encoders import RandomProjectionEncoder, check_encoder_shape
from repro.hdc.hypervector import _as_generator, bipolarize
from repro.hdc.memory_model import MemoryReport, model_memory_report
from repro.hdc.packed import PackedAM, PackedVectors, pack_bipolar, packed_dot_similarity
from repro.hdc.pruned import PrunedAM
from repro.hdc.similarity import dot_similarity
from repro.eval.metrics import accuracy


@dataclass(frozen=True)
class BasicHDCConfig:
    """Configuration of a :class:`BasicHDC` classifier.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality ``D``.
    refine_epochs:
        Number of classical iterative-learning epochs run after the
        single-pass construction (0 keeps the model strictly single-pass).
    learning_rate:
        Step size ``alpha`` of the Eq. (2) refinement updates.
    binary_am:
        When True (default) the stored associative memory is binarized
        (bipolar sign) after training, matching the binary-HDC comparison
        of the paper; when False the floating-point class vectors are kept.
    seed:
        Seed for the projection matrix.
    """

    dimension: int = 2048
    refine_epochs: int = 0
    learning_rate: float = 0.05
    binary_am: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.refine_epochs < 0:
            raise ValueError("refine_epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class BasicHDC(HDCClassifier):
    """Projection-encoded, single-pass binary HDC classifier."""

    name = "BasicHDC"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: Optional[BasicHDCConfig] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
        encoder: Optional[RandomProjectionEncoder] = None,
    ) -> None:
        if num_features <= 0 or num_classes <= 0:
            raise ValueError("num_features and num_classes must be positive")
        self.config = config or BasicHDCConfig()
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        seed = self.config.seed if rng is None else rng
        self._rng = _as_generator(seed)
        if encoder is not None:
            # Adopt a pre-built encoder (checkpoint restoration) instead of
            # drawing a fresh random projection.
            self.encoder = check_encoder_shape(
                encoder, self.num_features, self.config.dimension
            )
        else:
            self.encoder = RandomProjectionEncoder(
                num_features,
                self.config.dimension,
                binary_projection=True,
                rng=self._rng,
            )
        self._fp_am: Optional[np.ndarray] = None
        self._am: Optional[np.ndarray] = None
        self._packed_am: Optional[PackedVectors] = None
        self._pruned_am: Optional[PrunedAM] = None
        #: Shortlist width of the pruned engine (None = heuristic default).
        self.prune_topk: Optional[int] = None

    # ------------------------------------------------------------------ API
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[tuple] = None,
    ) -> TrainingHistory:
        x, y = self._check_fit_inputs(features, labels)
        encoded = self.encoder.encode(x).astype(np.float64)  # bipolar (n, D)
        history = TrainingHistory()

        # Single-pass: class vector = bundled class hypervectors.
        fp_am = np.zeros((self.num_classes, self.config.dimension), dtype=np.float64)
        np.add.at(fp_am, y, encoded)
        self._fp_am = fp_am
        self._refresh_am()
        history.initial_accuracy = accuracy(self._predict_encoded(encoded), y)

        for _ in range(self.config.refine_epochs):
            updates = self._refine_epoch(encoded, y)
            self._refresh_am()
            history.updates.append(updates)
            history.train_accuracy.append(
                accuracy(self._predict_encoded(encoded), y)
            )
            if validation is not None:
                val_x, val_y = validation
                history.validation_accuracy.append(self.score(val_x, val_y))

        if not history.train_accuracy:
            history.train_accuracy.append(history.initial_accuracy)
        return history

    def predict(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Classify raw features (``engine="packed"`` uses popcount search)."""
        if self._am is None:
            raise RuntimeError("BasicHDC.predict called before fit")
        encoded = self.encoder.encode(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return self._predict_encoded(encoded.astype(np.float64), engine=engine)

    def memory_report(self) -> MemoryReport:
        return model_memory_report(
            "BasicHDC",
            num_features=self.num_features,
            dimension=self.config.dimension,
            num_classes=self.num_classes,
        )

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing."""
        if self._fp_am is None or self._am is None:
            raise RuntimeError("model has not been fitted")
        return {
            "encoder_projection": self.encoder.projection,
            "fp_am": self._fp_am,
            "am": self._am,
        }

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config: BasicHDCConfig,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "BasicHDC":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output."""
        meta = encoder_meta or {}
        encoder = RandomProjectionEncoder.from_projection(
            arrays["encoder_projection"],
            binary_projection=meta.get("binary_projection", True),
            quantize_output=meta.get("quantize_output", True),
        )
        model = cls(num_features, num_classes, config, rng=config.seed, encoder=encoder)
        model._fp_am = np.asarray(arrays["fp_am"], dtype=np.float64)
        model._am = np.asarray(arrays["am"], dtype=np.float64)
        model._packed_am = None
        model._pruned_am = None
        return model

    # ------------------------------------------------------------ internals
    @property
    def associative_memory(self) -> np.ndarray:
        """The class-vector matrix used for prediction (``(k, D)``)."""
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        return self._am

    def _refresh_am(self) -> None:
        assert self._fp_am is not None
        if self.config.binary_am:
            self._am = bipolarize(self._fp_am).astype(np.float64)
        else:
            self._am = self._fp_am.copy()
        self._packed_am = None
        self._pruned_am = None

    def prepare_engine(self, engine: str = "float") -> None:
        """Pipeline warm-up hook: pre-pack the AM for the packed engine."""
        if engine == "packed":
            self._packed()
        elif engine == "pruned":
            self._pruned()

    def configure_pruning(self, prune_topk: Optional[int]) -> None:
        """Set the pruned engine's shortlist width (None = heuristic)."""
        self.prune_topk = prune_topk
        if self._pruned_am is not None:
            self._pruned_am.prune_topk = prune_topk

    def prune_stats(self) -> Optional[Dict[str, float]]:
        """Prune counters of the pruned engine (None before it is built)."""
        if self._pruned_am is None:
            return None
        return self._pruned_am.stats()

    def _pruned(self) -> PrunedAM:
        """Centroid-pruned search index (one row per class), cached."""
        if self._pruned_am is None:
            packed_am = PackedAM(
                self._packed(), np.arange(self.num_classes), self.num_classes
            )
            self._pruned_am = PrunedAM(packed_am, prune_topk=self.prune_topk)
        return self._pruned_am

    def _packed(self) -> PackedVectors:
        """Bit-packed (bipolar) AM, built lazily and cached per refresh."""
        if not self.config.binary_am:
            raise ValueError(
                "the packed engine requires binary_am=True (1-bit class "
                "vectors); this model keeps floating-point class vectors"
            )
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        if self._packed_am is None:
            self._packed_am = pack_bipolar(self._am)
        return self._packed_am

    def _predict_encoded(
        self, encoded: np.ndarray, engine: str = "float"
    ) -> np.ndarray:
        if engine == "pruned":
            # One row per class: the winning row index IS the class label.
            return self._pruned().predict_columns(pack_bipolar(encoded))
        if engine == "packed":
            scores = packed_dot_similarity(pack_bipolar(encoded), self._packed())
        elif engine == "float":
            scores = dot_similarity(encoded, self._am)
        else:
            raise ValueError(
                f"engine must be 'float', 'packed' or 'pruned', got {engine!r}"
            )
        return np.argmax(np.atleast_2d(scores), axis=1)

    def _refine_epoch(self, encoded: np.ndarray, labels: np.ndarray) -> int:
        """One classical iterative-learning epoch (Eq. 2) on the FP memory."""
        assert self._fp_am is not None
        predictions = self._predict_encoded(encoded)
        wrong = np.flatnonzero(predictions != labels)
        alpha = self.config.learning_rate
        for index in wrong:
            hv = encoded[index]
            self._fp_am[labels[index]] += alpha * hv
            self._fp_am[predictions[index]] -= alpha * hv
        return int(wrong.size)
