"""LeHDC: learning-based HDC classifier trained like a binarized neural net.

LeHDC (Duan et al., DAC 2022) is the accuracy state-of-the-art among the
binary HDC baselines in the paper.  It reinterprets the associative memory
as the weight matrix of a single binarized linear layer over the encoded
hypervector and trains it with gradient descent:

* the *forward* pass uses the binarized (sign) weights, exactly what will be
  deployed;
* the *backward* pass updates full-precision latent weights through the
  straight-through estimator (STE);
* the loss is the softmax cross-entropy over class logits, with the logits
  scaled by ``1 / sqrt(D)`` for numerical conditioning.

The implementation below is a small, dependency-free numpy BNN trainer with
mini-batches, momentum SGD and latent-weight clipping -- enough to reproduce
LeHDC's qualitative behaviour (best accuracy per dimension among the
single-vector-per-class baselines) without an external DL framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.hdc.encoders import IDLevelEncoder, check_encoder_shape
from repro.hdc.hypervector import _as_generator, bipolarize
from repro.hdc.memory_model import MemoryReport, model_memory_report
from repro.hdc.packed import PackedAM, PackedVectors, pack_bipolar, packed_dot_similarity
from repro.hdc.pruned import PrunedAM
from repro.eval.metrics import accuracy


@dataclass(frozen=True)
class LeHDCConfig:
    """Configuration of a :class:`LeHDC` classifier.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality ``D``.
    num_levels:
        ID-Level quantization levels ``L``.
    epochs:
        Gradient-descent epochs.
    batch_size:
        Mini-batch size.
    learning_rate:
        SGD step size on the latent full-precision weights.
    momentum:
        Classical momentum coefficient.
    weight_clip:
        Latent weights are clipped into ``[-weight_clip, +weight_clip]``
        after every step (standard BNN practice to keep the STE well-posed).
    seed:
        Seed for encoder and weight initialization.
    """

    dimension: int = 2048
    num_levels: int = 256
    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_clip: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_clip <= 0:
            raise ValueError("weight_clip must be positive")


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction stabilization."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LeHDC(HDCClassifier):
    """BNN-style trained binary HDC classifier."""

    name = "LeHDC"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: Optional[LeHDCConfig] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
        encoder: Optional[IDLevelEncoder] = None,
    ) -> None:
        if num_features <= 0 or num_classes <= 0:
            raise ValueError("num_features and num_classes must be positive")
        self.config = config or LeHDCConfig()
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        seed = self.config.seed if rng is None else rng
        self._rng = _as_generator(seed)
        if encoder is not None:
            # Adopt a pre-built encoder (checkpoint restoration) instead of
            # drawing fresh random codebooks.
            self.encoder = check_encoder_shape(
                encoder, self.num_features, self.config.dimension
            )
        else:
            self.encoder = IDLevelEncoder(
                num_features,
                self.config.dimension,
                num_levels=self.config.num_levels,
                rng=self._rng,
            )
        self._latent: Optional[np.ndarray] = None
        self._binary_am: Optional[np.ndarray] = None
        self._packed_am: Optional[PackedVectors] = None
        self._pruned_am: Optional[PrunedAM] = None
        #: Shortlist width of the pruned engine (None = heuristic default).
        self.prune_topk: Optional[int] = None

    # ------------------------------------------------------------------ API
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[tuple] = None,
    ) -> TrainingHistory:
        x, y = self._check_fit_inputs(features, labels)
        if np.any(y >= self.num_classes):
            raise ValueError("label outside the configured number of classes")
        encoded = self.encoder.encode(x).astype(np.float64)
        history = TrainingHistory()

        dim = self.config.dimension
        scale = 1.0 / np.sqrt(dim)
        self._latent = self._rng.normal(0.0, 0.1, size=(self.num_classes, dim))
        self._binary_am = bipolarize(self._latent).astype(np.float64)
        self._packed_am = None
        self._pruned_am = None
        history.initial_accuracy = accuracy(self._predict_encoded(encoded), y)

        velocity = np.zeros_like(self._latent)
        one_hot = np.zeros((y.size, self.num_classes), dtype=np.float64)
        one_hot[np.arange(y.size), y] = 1.0

        for _ in range(self.config.epochs):
            order = self._rng.permutation(x.shape[0])
            updates = 0
            for start in range(0, order.size, self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                h = encoded[batch]
                binary_weights = bipolarize(self._latent).astype(np.float64)
                logits = scale * (h @ binary_weights.T)
                probs = _softmax(logits)
                error = probs - one_hot[batch]  # (b, k)
                # STE: gradient w.r.t. binary weights applied to the latent
                # weights directly.
                grad = scale * (error.T @ h) / batch.size
                velocity = (
                    self.config.momentum * velocity - self.config.learning_rate * grad
                )
                self._latent = np.clip(
                    self._latent + velocity,
                    -self.config.weight_clip,
                    self.config.weight_clip,
                )
                updates += batch.size
            self._binary_am = bipolarize(self._latent).astype(np.float64)
            self._packed_am = None
            self._pruned_am = None
            history.updates.append(updates)
            history.train_accuracy.append(
                accuracy(self._predict_encoded(encoded), y)
            )
            if validation is not None:
                val_x, val_y = validation
                history.validation_accuracy.append(self.score(val_x, val_y))

        if not history.train_accuracy:
            history.train_accuracy.append(history.initial_accuracy)
        return history

    def predict(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Classify raw features (``engine="packed"`` uses popcount search)."""
        if self._binary_am is None:
            raise RuntimeError("LeHDC.predict called before fit")
        encoded = self.encoder.encode(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return self._predict_encoded(encoded.astype(np.float64), engine=engine)

    def memory_report(self) -> MemoryReport:
        return model_memory_report(
            "LeHDC",
            num_features=self.num_features,
            dimension=self.config.dimension,
            num_classes=self.num_classes,
            num_levels=self.config.num_levels,
        )

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing."""
        if self._latent is None or self._binary_am is None:
            raise RuntimeError("model has not been fitted")
        return {
            "encoder_id_vectors": self.encoder.id_vectors,
            "encoder_level_vectors": self.encoder.level_vectors,
            "latent": self._latent,
            "binary_am": self._binary_am,
        }

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config: LeHDCConfig,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "LeHDC":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output."""
        meta = encoder_meta or {}
        encoder = IDLevelEncoder.from_vectors(
            arrays["encoder_id_vectors"],
            arrays["encoder_level_vectors"],
            value_range=(meta.get("value_low", 0.0), meta.get("value_high", 1.0)),
            quantize_output=meta.get("quantize_output", True),
        )
        model = cls(num_features, num_classes, config, rng=config.seed, encoder=encoder)
        model._latent = np.asarray(arrays["latent"], dtype=np.float64)
        model._binary_am = np.asarray(arrays["binary_am"], dtype=np.float64)
        model._packed_am = None
        model._pruned_am = None
        return model

    # ------------------------------------------------------------ internals
    @property
    def associative_memory(self) -> np.ndarray:
        """Binary (bipolar) class-vector matrix used at inference time."""
        if self._binary_am is None:
            raise RuntimeError("model has not been fitted")
        return self._binary_am

    def prepare_engine(self, engine: str = "float") -> None:
        """Pipeline warm-up hook: pre-pack the AM for the packed engine."""
        if engine == "packed":
            self._packed()
        elif engine == "pruned":
            self._pruned()

    def configure_pruning(self, prune_topk: Optional[int]) -> None:
        """Set the pruned engine's shortlist width (None = heuristic)."""
        self.prune_topk = prune_topk
        if self._pruned_am is not None:
            self._pruned_am.prune_topk = prune_topk

    def prune_stats(self) -> Optional[Dict[str, float]]:
        """Prune counters of the pruned engine (None before it is built)."""
        if self._pruned_am is None:
            return None
        return self._pruned_am.stats()

    def _pruned(self) -> PrunedAM:
        """Centroid-pruned search index (one row per class), cached."""
        if self._pruned_am is None:
            packed_am = PackedAM(
                self._packed(), np.arange(self.num_classes), self.num_classes
            )
            self._pruned_am = PrunedAM(packed_am, prune_topk=self.prune_topk)
        return self._pruned_am

    def _packed(self) -> PackedVectors:
        """Bit-packed (bipolar) AM, rebuilt whenever the binary AM moves."""
        if self._binary_am is None:
            raise RuntimeError("model has not been fitted")
        if self._packed_am is None:
            self._packed_am = pack_bipolar(self._binary_am)
        return self._packed_am

    def _predict_encoded(
        self, encoded: np.ndarray, engine: str = "float"
    ) -> np.ndarray:
        if engine == "pruned":
            # One row per class: the winning row index IS the class label.
            return self._pruned().predict_columns(pack_bipolar(encoded))
        if engine == "packed":
            logits = packed_dot_similarity(pack_bipolar(encoded), self._packed())
        elif engine == "float":
            logits = encoded @ self._binary_am.T
        else:
            raise ValueError(
                f"engine must be 'float', 'packed' or 'pruned', got {engine!r}"
            )
        return np.argmax(np.atleast_2d(logits), axis=1)
