"""OnlineHD: similarity-weighted single-pass/iterative HDC baseline.

OnlineHD (Hernandez-Cano et al., DATE 2021) is a widely-used non-binary HDC
baseline that improves on BasicHDC's naive bundling by weighting every
update with how *novel* the sample is to its class vector:

* during the initial pass a sample that is already well represented by its
  class vector contributes little (weight ``1 - similarity``), while a
  poorly-represented sample contributes strongly;
* during iterative refinement, mispredicted samples pull their true class
  vector up and the wrongly-winning class vector down, both scaled by how
  confident the wrong decision was.

It is not part of the paper's Table I (which only compares binary models),
but it is the natural "stronger floating-point baseline" reviewers ask
about, so the reproduction ships it alongside the paper's four baselines.
The model keeps a floating-point associative memory (one vector per class)
and uses projection encoding, so its memory footprint is reported with
32-bit AM entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.eval.metrics import accuracy
from repro.hdc.encoders import RandomProjectionEncoder, check_encoder_shape
from repro.hdc.hypervector import _as_generator
from repro.hdc.memory_model import MemoryReport, projection_encoder_bits


@dataclass(frozen=True)
class OnlineHDConfig:
    """Configuration of an :class:`OnlineHD` classifier.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality ``D``.
    epochs:
        Iterative refinement epochs after the similarity-weighted initial
        pass.
    learning_rate:
        Scale of the refinement updates.
    bipolar_encoding:
        When True (default) the encoder output is sign-quantized; when False
        the raw real-valued projections are used (closer to the original
        OnlineHD, slightly stronger, more memory for queries).
    seed:
        Seed for the projection matrix.
    """

    dimension: int = 2048
    epochs: int = 20
    learning_rate: float = 0.035
    bipolar_encoding: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class OnlineHD(HDCClassifier):
    """Similarity-weighted floating-point HDC classifier (OnlineHD)."""

    name = "OnlineHD"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: Optional[OnlineHDConfig] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
        encoder: Optional[RandomProjectionEncoder] = None,
    ) -> None:
        if num_features <= 0 or num_classes <= 0:
            raise ValueError("num_features and num_classes must be positive")
        self.config = config or OnlineHDConfig()
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        seed = self.config.seed if rng is None else rng
        self._rng = _as_generator(seed)
        if encoder is not None:
            # Adopt a pre-built encoder (checkpoint restoration) instead of
            # drawing a fresh random projection.
            self.encoder = check_encoder_shape(
                encoder, self.num_features, self.config.dimension
            )
        else:
            self.encoder = RandomProjectionEncoder(
                num_features,
                self.config.dimension,
                binary_projection=True,
                quantize_output=self.config.bipolar_encoding,
                rng=self._rng,
            )
        self._am: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[tuple] = None,
    ) -> TrainingHistory:
        x, y = self._check_fit_inputs(features, labels)
        if np.any(y >= self.num_classes):
            raise ValueError("label outside the configured number of classes")
        encoded = np.asarray(self.encoder.encode(x), dtype=np.float64)
        history = TrainingHistory()

        self._am = np.zeros((self.num_classes, self.config.dimension), dtype=np.float64)
        # Similarity-weighted single pass.
        order = self._rng.permutation(x.shape[0])
        for index in order:
            hv = encoded[index]
            label = y[index]
            similarity = self._cosine_to_class(hv, label)
            self._am[label] += (1.0 - similarity) * hv
        history.initial_accuracy = accuracy(self._predict_encoded(encoded), y)

        rate = self.config.learning_rate
        for _ in range(self.config.epochs):
            updates = 0
            order = self._rng.permutation(x.shape[0])
            for index in order:
                hv = encoded[index]
                label = y[index]
                scores = self._cosine_scores(hv)
                predicted = int(np.argmax(scores))
                if predicted == label:
                    continue
                updates += 1
                self._am[label] += rate * (1.0 - scores[label]) * hv
                self._am[predicted] -= rate * (1.0 - scores[predicted]) * hv
            history.updates.append(updates)
            history.train_accuracy.append(accuracy(self._predict_encoded(encoded), y))
            if validation is not None:
                val_x, val_y = validation
                history.validation_accuracy.append(self.score(val_x, val_y))
            if updates == 0:
                break

        if not history.train_accuracy:
            history.train_accuracy.append(history.initial_accuracy)
        return history

    def predict(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Classify raw features.

        OnlineHD keeps a floating-point associative memory, so only the
        ``"float"`` engine exists; requesting ``"packed"`` raises
        :class:`ValueError` (the 1-bit popcount engine cannot represent FP
        class vectors).  The parameter is accepted so every classifier in
        the repository shares one engine-selecting signature.
        """
        self._check_engine(engine)
        if self._am is None:
            raise RuntimeError("OnlineHD.predict called before fit")
        encoded = np.asarray(
            self.encoder.encode(np.asarray(features, dtype=np.float64)),
            dtype=np.float64,
        )
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return self._predict_encoded(encoded)

    def prepare_engine(self, engine: str = "float") -> None:
        """Pipeline warm-up hook: fails fast on the unsupported engine."""
        self._check_engine(engine)

    @staticmethod
    def _check_engine(engine: str) -> None:
        if engine in ("packed", "pruned"):
            raise ValueError(
                "OnlineHD keeps a floating-point associative memory; the "
                f"{engine} engine (1-bit popcount search) is unavailable "
                "for this model"
            )
        if engine != "float":
            raise ValueError(
                f"engine must be 'float', 'packed' or 'pruned', got {engine!r}"
            )

    def memory_report(self) -> MemoryReport:
        """Projection encoder (1-bit cells) plus a 32-bit FP class-vector AM."""
        encoder_bits = projection_encoder_bits(self.num_features, self.config.dimension)
        am_bits = self.num_classes * self.config.dimension * 32
        return MemoryReport(model=self.name, encoder_bits=encoder_bits, am_bits=am_bits)

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing."""
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        return {
            "encoder_projection": self.encoder.projection,
            "am": self._am,
        }

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config: OnlineHDConfig,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "OnlineHD":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output."""
        meta = encoder_meta or {}
        encoder = RandomProjectionEncoder.from_projection(
            arrays["encoder_projection"],
            binary_projection=meta.get("binary_projection", True),
            quantize_output=meta.get("quantize_output", config.bipolar_encoding),
        )
        model = cls(num_features, num_classes, config, rng=config.seed, encoder=encoder)
        model._am = np.asarray(arrays["am"], dtype=np.float64)
        return model

    # ------------------------------------------------------------ internals
    @property
    def associative_memory(self) -> np.ndarray:
        """The floating-point class-vector matrix (``(k, D)``)."""
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        return self._am

    def _cosine_scores(self, hv: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(self._am, axis=1)
        norms = np.where(norms > 0.0, norms, 1.0)
        hv_norm = np.linalg.norm(hv)
        hv_norm = hv_norm if hv_norm > 0 else 1.0
        return (self._am @ hv) / (norms * hv_norm)

    def _cosine_to_class(self, hv: np.ndarray, label: int) -> float:
        return float(self._cosine_scores(hv)[label])

    def _predict_encoded(self, encoded: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(self._am, axis=1)
        norms = np.where(norms > 0.0, norms, 1.0)
        scores = encoded @ self._am.T / norms[None, :]
        return np.argmax(scores, axis=1)
