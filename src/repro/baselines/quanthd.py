"""QuantHD: quantization-aware iterative learning for binary HDC.

QuantHD (Imani et al., TCAD 2019) keeps two copies of the associative
memory: a floating-point "shadow" memory that accumulates the iterative
updates and a binary (sign-quantized) memory used for every similarity
evaluation.  Predictions during training are made against the *binary*
memory, so the updates compensate for the quantization error -- the idea
MEMHD extends to its multi-centroid memory (paper Sec. III-C references
QuantHD as prior work [13]).

The paper's evaluation runs QuantHD with ID-Level encoding (L = 256).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.hdc.encoders import IDLevelEncoder, check_encoder_shape
from repro.hdc.hypervector import _as_generator, bipolarize
from repro.hdc.memory_model import MemoryReport, model_memory_report
from repro.hdc.packed import PackedAM, PackedVectors, pack_bipolar, packed_dot_similarity
from repro.hdc.pruned import PrunedAM
from repro.hdc.similarity import dot_similarity
from repro.eval.metrics import accuracy


@dataclass(frozen=True)
class QuantHDConfig:
    """Configuration of a :class:`QuantHD` classifier.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality ``D``.
    num_levels:
        Number of ID-Level quantization levels ``L`` (paper uses 256).
    epochs:
        Quantization-aware iterative-learning epochs.
    learning_rate:
        Update step size ``alpha``.
    seed:
        Seed for encoder construction.
    """

    dimension: int = 2048
    num_levels: int = 256
    epochs: int = 20
    learning_rate: float = 0.05
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class QuantHD(HDCClassifier):
    """ID-Level encoded HDC with quantization-aware iterative learning."""

    name = "QuantHD"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: Optional[QuantHDConfig] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
        encoder: Optional[IDLevelEncoder] = None,
    ) -> None:
        if num_features <= 0 or num_classes <= 0:
            raise ValueError("num_features and num_classes must be positive")
        self.config = config or QuantHDConfig()
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        seed = self.config.seed if rng is None else rng
        self._rng = _as_generator(seed)
        if encoder is not None:
            # Adopt a pre-built encoder (checkpoint restoration) instead of
            # drawing fresh random codebooks.
            self.encoder = check_encoder_shape(
                encoder, self.num_features, self.config.dimension
            )
        else:
            self.encoder = IDLevelEncoder(
                num_features,
                self.config.dimension,
                num_levels=self.config.num_levels,
                rng=self._rng,
            )
        self._fp_am: Optional[np.ndarray] = None
        self._binary_am: Optional[np.ndarray] = None
        self._packed_am: Optional[PackedVectors] = None
        self._pruned_am: Optional[PrunedAM] = None
        #: Shortlist width of the pruned engine (None = heuristic default).
        self.prune_topk: Optional[int] = None

    # ------------------------------------------------------------------ API
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[tuple] = None,
    ) -> TrainingHistory:
        x, y = self._check_fit_inputs(features, labels)
        encoded = self.encoder.encode(x).astype(np.float64)
        history = TrainingHistory()

        # Single-pass construction of the FP memory, then sign quantization.
        fp_am = np.zeros((self.num_classes, self.config.dimension), dtype=np.float64)
        np.add.at(fp_am, y, encoded)
        self._fp_am = fp_am
        self._binary_am = bipolarize(fp_am).astype(np.float64)
        self._packed_am = None
        self._pruned_am = None
        history.initial_accuracy = accuracy(self._predict_encoded(encoded), y)

        alpha = self.config.learning_rate
        for _ in range(self.config.epochs):
            predictions = self._predict_encoded(encoded)
            wrong = np.flatnonzero(predictions != y)
            # All predictions in this epoch were made against the same
            # binary memory, so the updates can be accumulated in bulk.
            if wrong.size:
                np.add.at(self._fp_am, y[wrong], alpha * encoded[wrong])
                np.add.at(self._fp_am, predictions[wrong], -alpha * encoded[wrong])
            self._binary_am = bipolarize(self._fp_am).astype(np.float64)
            self._packed_am = None
            self._pruned_am = None
            history.updates.append(int(wrong.size))
            history.train_accuracy.append(
                accuracy(self._predict_encoded(encoded), y)
            )
            if validation is not None:
                val_x, val_y = validation
                history.validation_accuracy.append(self.score(val_x, val_y))

        if not history.train_accuracy:
            history.train_accuracy.append(history.initial_accuracy)
        return history

    def predict(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Classify raw features (``engine="packed"`` uses popcount search)."""
        if self._binary_am is None:
            raise RuntimeError("QuantHD.predict called before fit")
        encoded = self.encoder.encode(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return self._predict_encoded(encoded.astype(np.float64), engine=engine)

    def memory_report(self) -> MemoryReport:
        return model_memory_report(
            "QuantHD",
            num_features=self.num_features,
            dimension=self.config.dimension,
            num_classes=self.num_classes,
            num_levels=self.config.num_levels,
        )

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing."""
        if self._fp_am is None or self._binary_am is None:
            raise RuntimeError("model has not been fitted")
        return {
            "encoder_id_vectors": self.encoder.id_vectors,
            "encoder_level_vectors": self.encoder.level_vectors,
            "fp_am": self._fp_am,
            "binary_am": self._binary_am,
        }

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config: QuantHDConfig,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "QuantHD":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output."""
        meta = encoder_meta or {}
        encoder = IDLevelEncoder.from_vectors(
            arrays["encoder_id_vectors"],
            arrays["encoder_level_vectors"],
            value_range=(meta.get("value_low", 0.0), meta.get("value_high", 1.0)),
            quantize_output=meta.get("quantize_output", True),
        )
        model = cls(num_features, num_classes, config, rng=config.seed, encoder=encoder)
        model._fp_am = np.asarray(arrays["fp_am"], dtype=np.float64)
        model._binary_am = np.asarray(arrays["binary_am"], dtype=np.float64)
        model._packed_am = None
        model._pruned_am = None
        return model

    # ------------------------------------------------------------ internals
    @property
    def associative_memory(self) -> np.ndarray:
        """The binary (bipolar) class-vector matrix used for prediction."""
        if self._binary_am is None:
            raise RuntimeError("model has not been fitted")
        return self._binary_am

    def prepare_engine(self, engine: str = "float") -> None:
        """Pipeline warm-up hook: pre-pack the AM for the packed engine."""
        if engine == "packed":
            self._packed()
        elif engine == "pruned":
            self._pruned()

    def configure_pruning(self, prune_topk: Optional[int]) -> None:
        """Set the pruned engine's shortlist width (None = heuristic)."""
        self.prune_topk = prune_topk
        if self._pruned_am is not None:
            self._pruned_am.prune_topk = prune_topk

    def prune_stats(self) -> Optional[Dict[str, float]]:
        """Prune counters of the pruned engine (None before it is built)."""
        if self._pruned_am is None:
            return None
        return self._pruned_am.stats()

    def _pruned(self) -> PrunedAM:
        """Centroid-pruned search index (one row per class), cached."""
        if self._pruned_am is None:
            packed_am = PackedAM(
                self._packed(), np.arange(self.num_classes), self.num_classes
            )
            self._pruned_am = PrunedAM(packed_am, prune_topk=self.prune_topk)
        return self._pruned_am

    def _packed(self) -> PackedVectors:
        """Bit-packed (bipolar) AM, rebuilt whenever the binary AM moves."""
        if self._binary_am is None:
            raise RuntimeError("model has not been fitted")
        if self._packed_am is None:
            self._packed_am = pack_bipolar(self._binary_am)
        return self._packed_am

    def _predict_encoded(
        self, encoded: np.ndarray, engine: str = "float"
    ) -> np.ndarray:
        if engine == "pruned":
            # One row per class: the winning row index IS the class label.
            return self._pruned().predict_columns(pack_bipolar(encoded))
        if engine == "packed":
            scores = packed_dot_similarity(pack_bipolar(encoded), self._packed())
        elif engine == "float":
            scores = dot_similarity(encoded, self._binary_am)
        else:
            raise ValueError(
                f"engine must be 'float', 'packed' or 'pruned', got {engine!r}"
            )
        return np.argmax(np.atleast_2d(scores), axis=1)
