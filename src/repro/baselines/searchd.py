"""SearcHD: multi-model binary HDC with stochastic training.

SearcHD (Imani et al., TCAD 2019) is the baseline the paper singles out as
"the multi-model structure most similar to our approach": instead of one
class vector per class it keeps ``N`` binary vectors per class (the paper
fixes N = 64 when reporting memory).  Training is single-pass and fully
binary: for every training sample the most similar of the true class's N
vectors is selected and pulled toward the sample by *stochastic bit
flipping* -- each disagreeing bit position flips with a probability that
plays the role of a learning rate.

The crucial difference from MEMHD is that SearcHD's N vectors are not
placed or sized to match an IMC array, and its ID-Level encoding is not
MVM-compatible, so it inherits the utilization problems of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.hdc.encoders import IDLevelEncoder, check_encoder_shape
from repro.hdc.hypervector import _as_generator, random_bipolar_hypervectors
from repro.hdc.memory_model import MemoryReport, model_memory_report
from repro.hdc.packed import PackedAM, PackedVectors, pack_bipolar, packed_dot_similarity
from repro.hdc.pruned import PrunedAM
from repro.hdc.similarity import dot_similarity
from repro.eval.metrics import accuracy


@dataclass(frozen=True)
class SearcHDConfig:
    """Configuration of a :class:`SearcHD` classifier.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality ``D``.
    num_models:
        Number of binary class vectors per class ``N`` (64 in the paper's
        memory accounting; smaller values keep laptop-scale experiments
        fast while preserving the algorithm).
    num_levels:
        ID-Level quantization levels ``L``.
    flip_probability:
        Probability that a disagreeing bit is flipped toward the training
        sample during an update (the stochastic learning rate).
    epochs:
        Number of passes over the training data.  SearcHD is nominally
        single-pass (epochs=1), additional passes simply repeat the
        stochastic update.
    seed:
        Seed for encoder and class-vector initialization.
    """

    dimension: int = 2048
    num_models: int = 64
    num_levels: int = 256
    flip_probability: float = 0.25
    epochs: int = 1
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.num_models < 1:
            raise ValueError("num_models must be >= 1")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        if not 0.0 < self.flip_probability <= 1.0:
            raise ValueError("flip_probability must be in (0, 1]")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


class SearcHD(HDCClassifier):
    """Multi-model binary HDC with stochastic bit-flip training."""

    name = "SearcHD"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: Optional[SearcHDConfig] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
        encoder: Optional[IDLevelEncoder] = None,
    ) -> None:
        if num_features <= 0 or num_classes <= 0:
            raise ValueError("num_features and num_classes must be positive")
        self.config = config or SearcHDConfig()
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        seed = self.config.seed if rng is None else rng
        self._rng = _as_generator(seed)
        if encoder is not None:
            # Adopt a pre-built encoder (checkpoint restoration) instead of
            # drawing fresh random codebooks.
            self.encoder = check_encoder_shape(
                encoder, self.num_features, self.config.dimension
            )
        else:
            self.encoder = IDLevelEncoder(
                num_features,
                self.config.dimension,
                num_levels=self.config.num_levels,
                rng=self._rng,
            )
        # (k, N, D) bipolar class-vector tensor.
        self._am: Optional[np.ndarray] = None
        self._packed_am: Optional[PackedVectors] = None
        self._pruned_am: Optional[PrunedAM] = None
        #: Shortlist width of the pruned engine (None = heuristic default).
        self.prune_topk: Optional[int] = None

    # ------------------------------------------------------------------ API
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[tuple] = None,
    ) -> TrainingHistory:
        x, y = self._check_fit_inputs(features, labels)
        encoded = self.encoder.encode(x).astype(np.int8)  # bipolar
        history = TrainingHistory()

        k, n_models, dim = self.num_classes, self.config.num_models, self.config.dimension
        # SearcHD seeds each class's N binary vectors from encoded training
        # samples of that class (falling back to random hypervectors for
        # classes with no data), then refines them by stochastic bit flips.
        self._am = random_bipolar_hypervectors(k * n_models, dim, self._rng).reshape(
            k, n_models, dim
        )
        self._packed_am = None
        self._pruned_am = None
        for class_label in range(k):
            members = np.flatnonzero(y == class_label)
            if members.size == 0:
                continue
            chosen = self._rng.choice(
                members, size=n_models, replace=members.size < n_models
            )
            self._am[class_label] = encoded[chosen]
        history.initial_accuracy = accuracy(self._predict_encoded(encoded), y)

        for _ in range(self.config.epochs):
            updates = self._stochastic_pass(encoded, y)
            history.updates.append(updates)
            history.train_accuracy.append(
                accuracy(self._predict_encoded(encoded), y)
            )
            if validation is not None:
                val_x, val_y = validation
                history.validation_accuracy.append(self.score(val_x, val_y))
        return history

    def predict(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Classify raw features (``engine="packed"`` uses popcount search)."""
        if self._am is None:
            raise RuntimeError("SearcHD.predict called before fit")
        encoded = self.encoder.encode(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return self._predict_encoded(encoded.astype(np.int8), engine=engine)

    def memory_report(self) -> MemoryReport:
        return model_memory_report(
            "SearcHD",
            num_features=self.num_features,
            dimension=self.config.dimension,
            num_classes=self.num_classes,
            num_levels=self.config.num_levels,
            quantization_factor=self.config.num_models,
        )

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing."""
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        return {
            "encoder_id_vectors": self.encoder.id_vectors,
            "encoder_level_vectors": self.encoder.level_vectors,
            "am": self._am,
        }

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config: SearcHDConfig,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "SearcHD":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output."""
        meta = encoder_meta or {}
        encoder = IDLevelEncoder.from_vectors(
            arrays["encoder_id_vectors"],
            arrays["encoder_level_vectors"],
            value_range=(meta.get("value_low", 0.0), meta.get("value_high", 1.0)),
            quantize_output=meta.get("quantize_output", True),
        )
        model = cls(num_features, num_classes, config, rng=config.seed, encoder=encoder)
        am = np.asarray(arrays["am"], dtype=np.int8)
        if am.ndim != 3:
            raise ValueError("SearcHD checkpoint AM must be a (k, N, D) tensor")
        model._am = am
        model._packed_am = None
        model._pruned_am = None
        return model

    # ------------------------------------------------------------ internals
    @property
    def associative_memory(self) -> np.ndarray:
        """``(k, N, D)`` bipolar class-vector tensor."""
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        return self._am

    def prepare_engine(self, engine: str = "float") -> None:
        """Pipeline warm-up hook: pre-pack the AM for the packed engine."""
        if engine == "packed":
            self._packed()
        elif engine == "pruned":
            self._pruned()

    def configure_pruning(self, prune_topk: Optional[int]) -> None:
        """Set the pruned engine's shortlist width (None = heuristic)."""
        self.prune_topk = prune_topk
        if self._pruned_am is not None:
            self._pruned_am.prune_topk = prune_topk

    def prune_stats(self) -> Optional[Dict[str, float]]:
        """Prune counters of the pruned engine (None before it is built)."""
        if self._pruned_am is None:
            return None
        return self._pruned_am.stats()

    def _pruned(self) -> PrunedAM:
        """Centroid-pruned index over the flat ``(k * N, D)`` AM, cached.

        Each class owns ``N`` consecutive rows of the flat AM, so the
        column-to-class map is ``repeat(arange(k), N)`` -- the packed-AM
        equivalent of the full scan's ``best // N`` class recovery.
        """
        if self._pruned_am is None:
            k, n_models, _ = self._am.shape
            packed_am = PackedAM(
                self._packed(), np.repeat(np.arange(k), n_models), k
            )
            self._pruned_am = PrunedAM(packed_am, prune_topk=self.prune_topk)
        return self._pruned_am

    def _packed(self) -> PackedVectors:
        """Bit-packed flat ``(k * N, D)`` AM, rebuilt whenever the AM moves."""
        if self._am is None:
            raise RuntimeError("model has not been fitted")
        if self._packed_am is None:
            k, n_models, dim = self._am.shape
            self._packed_am = pack_bipolar(self._am.reshape(k * n_models, dim))
        return self._packed_am

    def _predict_encoded(
        self, encoded: np.ndarray, engine: str = "float"
    ) -> np.ndarray:
        """Classify by the most similar of all ``k * N`` class vectors."""
        k, n_models, dim = self._am.shape
        if engine == "pruned":
            return self._pruned().predict(pack_bipolar(encoded))
        if engine == "packed":
            scores = packed_dot_similarity(pack_bipolar(encoded), self._packed())
        elif engine == "float":
            flat = self._am.reshape(k * n_models, dim).astype(np.float64)
            scores = dot_similarity(encoded.astype(np.float64), flat)
        else:
            raise ValueError(
                f"engine must be 'float', 'packed' or 'pruned', got {engine!r}"
            )
        best = np.argmax(np.atleast_2d(scores), axis=1)
        return best // n_models

    def _stochastic_pass(self, encoded: np.ndarray, labels: np.ndarray) -> int:
        """One stochastic-training pass; returns the number of updates applied."""
        assert self._am is not None
        updates = 0
        for index in range(encoded.shape[0]):
            hv = encoded[index].astype(np.float64)
            true_class = int(labels[index])
            class_vectors = self._am[true_class].astype(np.float64)
            sims = class_vectors @ hv
            target = int(np.argmax(sims))
            disagree = self._am[true_class, target] != encoded[index]
            if not np.any(disagree):
                continue
            flips = disagree & (
                self._rng.random(self.config.dimension) < self.config.flip_probability
            )
            if np.any(flips):
                self._am[true_class, target, flips] = encoded[index, flips]
                updates += 1
        if updates:
            self._packed_am = None  # the packed mirror is stale now
            self._pruned_am = None
        return updates
