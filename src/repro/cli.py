"""Command-line interface for the MEMHD reproduction.

Installed as ``repro`` (with a ``memhd-repro`` alias; see
``pyproject.toml``); also runnable as ``python -m repro.cli``.  The
subcommands cover the everyday workflows:

``repro info --dataset mnist``
    Print the dataset profile (features, classes, per-class budgets).

``repro train --dataset fmnist --model memhd --save fmnist-memhd``
    Train one model, report train/test accuracy and the Table I memory
    breakdown, optionally checkpointing the trained model to a file
    (``--save model.npz``) or into the artifact registry
    (``--save name[:tag]``).

``repro predict --dataset mnist --load mnist-memhd --engine packed``
    Serve the test split through the batched
    :class:`repro.runtime.InferencePipeline` with the selected similarity
    engine (``float`` / ``packed`` / ``pruned`` / ``both``) and report accuracy and
    throughput.  With ``--load`` the model comes from a checkpoint (no
    retraining); without it the model is trained from scratch first.

``repro serve --models mnist-memhd:latest,fmnist-quanthd:v3 --port 8000``
    Long-lived daemon: host one or many registry checkpoints behind warm
    pipelines with micro-batching (``--max-batch`` / ``--max-wait-ms``),
    bounded-queue backpressure (``--queue-depth`` -> HTTP 429) and
    zero-downtime hot-swap (``POST /reload``); answers JSON ``/predict``,
    ``/models/<name>/predict``, ``/healthz``, ``/stats`` and ``/manifest``
    requests over HTTP.  ``--load`` serves a single checkpoint (path or
    registry spec) exactly as before.  ``--workers N`` scales out to N
    prefork worker processes over one shared listening socket and
    memory-mapped (zero-copy) checkpoints, with crash respawn, graceful
    SIGTERM drain, cluster-aggregated ``/stats`` and fanned-out
    ``/reload``; see ``docs/operations.md`` for the operator guide.

``repro loadtest --url http://127.0.0.1:8000 --concurrency 32``
    Open/closed-loop load generator against a live daemon; reports
    achieved QPS and p50/p95/p99 latency, plus per-status error counts
    and (against a ``--workers N`` daemon) per-worker traffic attribution
    from the aggregated ``/stats`` endpoint.

``repro models list|show|prune``
    Inspect and garbage-collect the on-disk artifact registry
    (``~/.cache/repro``, ``$REPRO_STORE`` or ``--store DIR``).

``repro map --dataset mnist --rows 128 --cols 128``
    Print the Table II mapping analysis (basic / partitioned / MEMHD) for an
    array geometry.

``repro sweep run --models memhd,basichdc --dimensions 64,128 --results r.jsonl``
    Expand a declarative experiment grid (models x datasets x dimensions x
    centroid budgets x engines x IMC noise/ADC settings), run it on a
    process pool with deterministic per-cell seeds, and stream results
    into an append-only JSONL store keyed by config hash -- re-running
    the same spec resumes, completing only the missing cells.

``repro sweep status | report | diff``
    Inspect a result store (``status``), render its tables and heatmaps
    (``report``), or compare two stores metric-by-metric for regression
    checks (``diff``; non-zero exit on drift).

Every dataset-touching command accepts ``--scale`` to control how much of
the paper-scale per-class sample budget the (synthetic or real) dataset
provides, and ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import List, Optional, Sequence

from repro.data.datasets import available_datasets, load_dataset
from repro.eval.metrics import accuracy
from repro.eval.reporting import (
    format_heatmap,
    format_serving_records,
    format_store_diff,
    format_sweep_records,
    format_table,
    sweep_grid,
)
from repro.eval.store import ResultStore, StoreError
from repro.eval.sweep import (
    MODEL_CHOICES,
    SweepError,
    SweepSpec,
    best_record,
    build_model,
    run_sweep,
    spec_records,
    train_record_model,
)
from repro.hdc.packed import kernel_backend
from repro.imc.analysis import full_mapping_report, improvement_factors, table2_rows
from repro.imc.array import IMCArrayConfig
from repro.io.checkpoint import (
    CheckpointError,
    checkpoint_path,
    dataset_fingerprint,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
)
from repro.io.registry import ArtifactRegistry, RegistryError
from repro.runtime.loadtest import fetch_server_stats, run_load
from repro.runtime.online import OnlineConfig
from repro.runtime.pipeline import throughput_comparison
from repro.runtime.server import ModelServer
from repro.runtime.workers import WorkerConfig, WorkerSupervisor


def _int_list(text: str) -> List[int]:
    """Parse a comma-separated list of integers (argparse type)."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}") from error
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _float_list(text: str) -> List[float]:
    """Parse a comma-separated list of floats (argparse type)."""
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"not a comma-separated float list: {text!r}"
        ) from error
    if not values:
        raise argparse.ArgumentTypeError("expected at least one float")
    return values


def _str_list(text: str) -> List[str]:
    """Parse a comma-separated list of names (argparse type)."""
    values = [part.strip() for part in text.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected at least one name")
    return values


def _adc_list(text: str) -> List[Optional[int]]:
    """Parse ADC bit settings: ints plus ``ideal``/``none`` for no ADC."""
    values: List[Optional[int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part.lower() in ("ideal", "none"):
            values.append(None)
            continue
        try:
            values.append(int(part))
        except ValueError as error:
            raise argparse.ArgumentTypeError(
                f"ADC bits must be integers or 'ideal', got {part!r}"
            ) from error
    if not values:
        raise argparse.ArgumentTypeError("expected at least one ADC setting")
    return values


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MEMHD (DATE 2025) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_dataset_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset", default="mnist", choices=available_datasets(),
            help="dataset profile to load",
        )
        sub.add_argument(
            "--scale", type=float, default=0.02,
            help="fraction of the paper-scale per-class sample budget (default 0.02)",
        )
        sub.add_argument("--seed", type=int, default=0, help="random seed")

    def add_model_options(sub: argparse.ArgumentParser, epochs: int) -> None:
        sub.add_argument("--model", default="memhd", choices=MODEL_CHOICES)
        sub.add_argument(
            "--dimension", type=int, default=128, help="hypervector dimension D"
        )
        sub.add_argument(
            "--columns", type=int, default=128,
            help="MEMHD AM columns C (ignored by the baselines)",
        )
        sub.add_argument("--epochs", type=int, default=epochs)
        sub.add_argument("--learning-rate", type=float, default=0.05)
        sub.add_argument(
            "--cluster-ratio", type=float, default=0.8,
            help="MEMHD initial cluster ratio R",
        )
        sub.add_argument(
            "--init", default="clustering", choices=("clustering", "random"),
            help="MEMHD initialization method",
        )
        sub.add_argument(
            "--id-levels", type=int, default=32,
            help="number of levels L for the ID-Level baselines",
        )

    def add_store_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store", default=None, metavar="DIR",
            help="artifact registry directory (default: $REPRO_STORE or "
            "~/.cache/repro)",
        )

    info = subparsers.add_parser("info", help="print a dataset profile summary")
    add_dataset_options(info)

    train = subparsers.add_parser("train", help="train and evaluate one model")
    add_dataset_options(train)
    add_model_options(train, epochs=20)
    train.add_argument(
        "--save", default=None, metavar="CKPT",
        help="checkpoint the trained model: a spec ending in .npz or "
        "containing a path separator saves to that file (.npz appended "
        "when missing), anything else is a registry 'name[:tag]'",
    )
    add_store_option(train)

    predict = subparsers.add_parser(
        "predict",
        help="serve the test split through the batched inference pipeline",
    )
    add_dataset_options(predict)
    add_model_options(predict, epochs=5)
    predict.add_argument(
        "--load", default=None, metavar="CKPT",
        help="serve a checkpointed model (path or registry 'name[:tag]') "
        "instead of retraining; model hyperparameter flags are ignored",
    )
    add_store_option(predict)
    predict.add_argument(
        "--engine", default="packed",
        choices=("float", "packed", "pruned", "both"),
        help="similarity engine ('pruned' = centroid-pruned shortlist "
        "search, bit-identical to the full scan; 'both' compares float "
        "vs packed)",
    )
    predict.add_argument(
        "--prune-topk", type=int, default=None, metavar="K",
        help="shortlist width of the pruned engine (classes exactly "
        "re-ranked per query; default: ceil(sqrt(classes)) heuristic)",
    )
    predict.add_argument(
        "--batch-size", type=int, default=1024,
        help="pipeline chunk size (query rows per chunk)",
    )
    predict.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool width for sharding chunks",
    )
    predict.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per engine (best run is reported)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="long-lived multi-model daemon with micro-batching over HTTP",
    )
    serve.add_argument(
        "--load", default=None, metavar="CKPT",
        help="single checkpoint to serve (path or registry 'name[:tag]'); "
        "combinable with --models",
    )
    serve.add_argument(
        "--models", type=_str_list, default=None, metavar="SPEC[,SPEC...]",
        help="registry specs to serve concurrently (comma-separated "
        "'name[:tag]'), each routed at /models/<name>/predict and "
        "hot-swappable via POST /reload",
    )
    add_store_option(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="bind port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--engine", default="packed", choices=("float", "packed", "pruned"),
        help="similarity engine used for every request (packed = bit-packed "
        "kernels, the fast path; pruned = centroid-pruned shortlist search "
        "on top of them, bit-identical; float = dense reference)",
    )
    serve.add_argument(
        "--prune-topk", type=int, default=None, metavar="K",
        help="shortlist width of the pruned engine (default: "
        "ceil(sqrt(classes)) heuristic; only with --engine pruned)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1024,
        help="pipeline chunk size (query rows per chunk; default 1024)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker PROCESS count (prefork scale-out): N>1 forks N "
        "independent serving processes over one shared listening socket "
        "and memory-mapped checkpoints, with crash respawn, aggregated "
        "/stats and fanned-out /reload; 1 (default) serves in-process",
    )
    serve.add_argument(
        "--pipeline-threads", type=int, default=1, metavar="T",
        help="thread-pool width for sharding pipeline chunks within one "
        "micro-batch (per process; default 1)",
    )
    serve.add_argument(
        "--socket-mode", default="auto", choices=("auto", "reuseport", "inherit"),
        help="how prefork workers share the port: 'reuseport' binds one "
        "SO_REUSEPORT listener per worker (kernel load-balances), "
        "'inherit' has workers adopt a single listener forked from the "
        "parent; 'auto' (default) picks reuseport where available "
        "(only meaningful with --workers > 1)",
    )
    mapped_group = serve.add_mutually_exclusive_group()
    mapped_group.add_argument(
        "--mapped", dest="mapped", action="store_true", default=None,
        help="memory-map registry checkpoints (zero-copy: workers share "
        "one physical copy of the AM arrays via the OS page cache); "
        "the default when --workers > 1",
    )
    mapped_group.add_argument(
        "--no-mapped", dest="mapped", action="store_false",
        help="load registry checkpoints eagerly into private memory "
        "(the default for a single-process server)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="on SIGTERM / worker drain, wait up to this long for "
        "in-flight requests to finish before closing (default 30)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, metavar="ROWS",
        help="micro-batch row bound: concurrent requests are coalesced "
        "until this many rows are queued (default 64)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, metavar="MS",
        help="longest a request is held open for coalescing (default 2)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=128, metavar="N",
        help="per-model bound on queued requests; beyond it the server "
        "sheds load with HTTP 429 + Retry-After (default 128)",
    )
    serve.add_argument(
        "--no-batching", action="store_true",
        help="disable micro-batching: one direct pipeline call per "
        "request (the pre-v2 behaviour; the loadtest baseline)",
    )
    serve.add_argument(
        "--online", action="store_true",
        help="enable the continual-learning loop: POST /feedback streams "
        "labelled samples into a bounded buffer, a background trainer "
        "folds them into a shadow copy of the served model, and shadows "
        "that clear the promotion gate are checkpointed (with lineage) "
        "and hot-swapped into traffic; requires --models (registry-backed)",
    )
    serve.add_argument(
        "--promote-threshold", type=float, default=0.0, metavar="ACC",
        help="minimum holdout accuracy a shadow must reach to be "
        "promoted (default 0: gate only on beating the live model)",
    )
    serve.add_argument(
        "--promote-margin", type=float, default=0.0, metavar="ACC",
        help="how much the shadow must beat the live model by on the "
        "holdout slice (default 0: promote on ties)",
    )
    serve.add_argument(
        "--min-feedback", type=int, default=32, metavar="N",
        help="buffered samples that trigger a shadow training fold "
        "(default 32; a graceful drain folds any remainder)",
    )
    serve.add_argument(
        "--feedback-buffer", type=int, default=4096, metavar="N",
        help="bound of the feedback buffer; beyond it POST /feedback "
        "sheds load with HTTP 429 (default 4096)",
    )
    serve.add_argument(
        "--shadow-interval", type=float, default=1.0, metavar="S",
        help="cadence of the background trainer's buffer checks "
        "(default 1.0)",
    )
    serve.add_argument(
        "--eval-fraction", type=float, default=0.25, metavar="F",
        help="share of feedback withheld into the holdout reservoir the "
        "promotion gate scores on (default 0.25; 0 disables promotion)",
    )
    serve.add_argument(
        "--eval-window", type=int, default=256, metavar="N",
        help="rolling bound of the holdout reservoir (default 256)",
    )
    serve.add_argument(
        "--online-lr", type=float, default=None, metavar="LR",
        help="learning rate of the streaming updates (default: the "
        "checkpoint's training rate; drift recovery usually wants more)",
    )
    serve.add_argument(
        "--online-results", default=None, metavar="PATH",
        help="drift-record JSONL path (default: online-drift.jsonl next "
        "to the served artifact's checkpoints)",
    )

    loadtest = subparsers.add_parser(
        "loadtest",
        help="open/closed-loop load generator against a live serve daemon",
    )
    loadtest.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="base URL of the server (default http://127.0.0.1:8000)",
    )
    loadtest.add_argument(
        "--model", default=None, metavar="NAME",
        help="route requests at /models/NAME/predict instead of /predict",
    )
    loadtest.add_argument(
        "--mode", default="closed", choices=("closed", "open"),
        help="closed: each worker keeps one request in flight; open: "
        "requests start on a fixed --rate schedule",
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=32, metavar="N",
        help="concurrent client threads issuing requests (default 32)",
    )
    loadtest.add_argument(
        "--duration", type=float, default=5.0, metavar="S",
        help="measurement window in seconds (default 5)",
    )
    loadtest.add_argument(
        "--batch", type=int, default=1, metavar="ROWS",
        help="feature rows per request (default 1)",
    )
    loadtest.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="offered requests/second (open-loop mode only)",
    )
    loadtest.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline forwarded to the server",
    )
    loadtest.add_argument(
        "--num-features", type=int, default=None, metavar="F",
        help="payload feature width (discovered from the server when omitted)",
    )
    loadtest.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for the synthetic request payloads (default 0)",
    )
    loadtest.add_argument(
        "--fail-on-error", action="store_true",
        help="exit non-zero when any request failed (CI smoke gates)",
    )
    loadtest.add_argument(
        "--smoke", action="store_true",
        help="tiny fixed preset (8 workers, 1.5 s) for CI smoke runs",
    )

    models = subparsers.add_parser(
        "models", help="inspect and prune the on-disk artifact registry"
    )
    models_sub = models.add_subparsers(dest="models_command", required=True)
    models_list = models_sub.add_parser("list", help="list stored checkpoints")
    add_store_option(models_list)
    models_list.add_argument(
        "--name", default=None, help="only list tags of this artifact name"
    )
    models_show = models_sub.add_parser(
        "show", help="print the manifest of one checkpoint"
    )
    add_store_option(models_show)
    models_show.add_argument(
        "spec", help="checkpoint path or registry 'name[:tag]'"
    )
    models_prune = models_sub.add_parser(
        "prune", help="delete all but the newest tags of each artifact"
    )
    add_store_option(models_prune)
    models_prune.add_argument(
        "--name", default=None, help="only prune this artifact name"
    )
    models_prune.add_argument(
        "--keep", type=int, default=3,
        help="newest tags to retain per name (default 3)",
    )

    map_cmd = subparsers.add_parser(
        "map", help="Table II mapping analysis for an IMC array geometry"
    )
    add_dataset_options(map_cmd)
    map_cmd.add_argument("--rows", type=int, default=128, help="IMC array rows")
    map_cmd.add_argument("--cols", type=int, default=128, help="IMC array columns")
    map_cmd.add_argument(
        "--baseline-dimension", type=int, default=10240,
        help="dimensionality of the Basic/Partitioning baselines",
    )
    map_cmd.add_argument(
        "--memhd-dimension", type=int, default=None,
        help="MEMHD dimension D (defaults to the array rows)",
    )
    map_cmd.add_argument(
        "--partitions", type=_int_list, default=[5, 10],
        help="comma-separated partition counts for the partitioned baseline",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="declarative, parallel, resumable experiment-matrix runner",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_results_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--results", default="sweep-results.jsonl", metavar="FILE",
            help="append-only JSONL result store (default sweep-results.jsonl)",
        )

    def add_spec_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--spec", default=None, metavar="FILE",
            help="JSON sweep spec file; overrides the axis flags below",
        )
        sub.add_argument(
            "--models", type=_str_list, default=["memhd"],
            help=f"comma-separated model families ({', '.join(MODEL_CHOICES)})",
        )
        sub.add_argument(
            "--datasets", type=_str_list, default=["mnist"],
            help="comma-separated dataset names",
        )
        sub.add_argument("--dimensions", type=_int_list, default=[64, 128])
        sub.add_argument(
            "--columns", type=_int_list, default=[128],
            help="MEMHD centroid budgets C (ignored by the baselines)",
        )
        sub.add_argument(
            "--engines", type=_str_list, default=["float"],
            help="similarity engines to time (float,packed,pruned)",
        )
        sub.add_argument(
            "--cluster-ratios", type=_float_list, default=[0.8],
            help="MEMHD initial cluster ratios R",
        )
        sub.add_argument(
            "--noise", type=_float_list, default=[0.0], metavar="P",
            help="IMC bit-flip probabilities (MEMHD cells only; 0 = ideal)",
        )
        sub.add_argument(
            "--adc-bits", type=_adc_list, default=[None], metavar="BITS",
            help="column ADC resolutions (MEMHD cells only; 'ideal' = none)",
        )
        sub.add_argument("--scale", type=float, default=0.02)
        sub.add_argument("--epochs", type=int, default=5)
        sub.add_argument("--learning-rate", type=float, default=0.05)
        sub.add_argument("--id-levels", type=int, default=32)
        sub.add_argument(
            "--init", default="clustering", choices=("clustering", "random")
        )
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--kind", default="accuracy", choices=("accuracy", "serving-load"),
            help="cell kind: accuracy/memory evaluation (default) or "
            "serving-load cells that boot a server per cell and load-test it",
        )
        sub.add_argument(
            "--serving-concurrency", type=_int_list, default=[8],
            help="serving-load axis: load-generator concurrency levels",
        )
        sub.add_argument(
            "--serving-workers", type=_int_list, default=[1],
            help="serving-load axis: server worker-process counts",
        )
        sub.add_argument(
            "--serving-batch", type=_int_list, default=[1],
            help="serving-load axis: rows per request",
        )
        sub.add_argument(
            "--serving-modes", type=_str_list, default=["closed"],
            help="serving-load axis: loop modes (closed,open)",
        )
        sub.add_argument(
            "--serving-requests", type=int, default=64,
            help="fixed request count per serving-load cell (deterministic)",
        )
        sub.add_argument(
            "--serving-rate", type=float, default=None,
            help="offered requests/second for open-loop serving cells",
        )
        sub.add_argument(
            "--smoke", action="store_true",
            help="replace the grid with a tiny fixed smoke preset (CI); "
            "combined with --kind serving-load it selects the serving smoke grid",
        )

    sweep_run = sweep_sub.add_parser(
        "run", help="expand a grid spec and execute its missing cells"
    )
    add_spec_options(sweep_run)
    add_results_option(sweep_run)
    sweep_run.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width (1 runs cells inline)",
    )
    sweep_run.add_argument(
        "--no-resume", action="store_true",
        help="re-run every cell even when the store already has it",
    )
    sweep_run.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="run at most N pending cells (smoke / staged runs)",
    )
    sweep_run.add_argument(
        "--save-best", default=None, metavar="NAME[:TAG]",
        help="retrain the best cell (by test accuracy) and checkpoint it "
        "into the artifact registry",
    )
    sweep_run.add_argument(
        "--distributed", action="store_true",
        help="join an elastic worker pool over --store-dir: claim missing "
        "cells via lease files, run them inline, stream results into the "
        "shared store (workers may join late, die, and rejoin)",
    )
    sweep_run.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="shared store directory for --distributed "
        "(results.jsonl + leases/ + events.jsonl)",
    )
    sweep_run.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="this worker's identity in the pool (default <hostname>-<pid>)",
    )
    sweep_run.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease expiry: a worker silent this long is presumed dead "
        "and its cell reclaimed (default 30)",
    )
    sweep_run.add_argument(
        "--poll-interval", type=float, default=None, metavar="SECONDS",
        help="idle rescan interval while other workers hold the "
        "remaining cells (default min(1, ttl/4))",
    )
    add_store_option(sweep_run)

    sweep_status = sweep_sub.add_parser(
        "status", help="summarize a result store (and pending cells of a spec)"
    )
    add_spec_options(sweep_status)
    add_results_option(sweep_status)
    sweep_status.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="shared distributed-store directory: reads DIR/results.jsonl "
        "and prints per-worker attribution from the pool's events log",
    )
    sweep_status.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="TTL used to classify currently-held leases as live/expired",
    )

    sweep_report = sweep_sub.add_parser(
        "report", help="render a result store as tables / heatmaps"
    )
    add_results_option(sweep_report)
    sweep_report.add_argument(
        "--heatmap", action="store_true",
        help="also print the dimension x columns accuracy heatmap",
    )
    sweep_report.add_argument(
        "--value", default="test_accuracy",
        help="metric pivoted into the heatmap cells",
    )

    sweep_diff = sweep_sub.add_parser(
        "diff",
        help="compare two result stores; exit 1 when metrics drifted",
    )
    sweep_diff.add_argument("left", help="baseline store (JSONL)")
    sweep_diff.add_argument("right", help="candidate store (JSONL)")
    sweep_diff.add_argument("--rtol", type=float, default=1e-9)
    sweep_diff.add_argument("--atol", type=float, default=1e-12)
    sweep_diff.add_argument(
        "--metrics", type=_str_list, default=None,
        help="only compare these metrics (default: all but timings)",
    )

    def add_workflow_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("workflow", help="workflow file (repro.yml / .json)")
        sub.add_argument(
            "--workdir", default=None, metavar="DIR",
            help="working directory holding the artifact store, sweep "
            "stores and run database (default: the workflow's 'workdir' "
            "key, else ./<name>-workdir)",
        )

    run = subparsers.add_parser(
        "run", help="execute a declarative workflow, recording provenance"
    )
    add_workflow_options(run)
    mode = run.add_mutually_exclusive_group()
    mode.add_argument(
        "--resume", action="store_true", default=True,
        help="skip completed steps whose config hash and artifact "
        "fingerprints are unchanged (the default)",
    )
    mode.add_argument(
        "--force", action="store_true",
        help="rerun every step even when it is up to date",
    )
    run.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for independent steps (default 1: inline)",
    )

    status = subparsers.add_parser(
        "status",
        help="what ran, with what config, and what changed since",
    )
    add_workflow_options(status)

    report = subparsers.add_parser(
        "report", help="render the workflow QA report from the run database"
    )
    add_workflow_options(report)
    report.add_argument(
        "--format", dest="fmt", default="markdown",
        choices=("markdown", "html"), help="report output format",
    )
    report.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )

    return parser


# --------------------------------------------------------------------------
# Command implementations
# --------------------------------------------------------------------------
def _build_model(args: argparse.Namespace, num_features: int, num_classes: int):
    """Instantiate the requested model family from CLI arguments.

    Delegates to :func:`repro.eval.sweep.build_model`, the factory shared
    with the sweep workers, so ``repro train`` and a sweep cell with the
    same hyperparameters construct identical models.
    """
    return build_model(
        args.model,
        num_features,
        num_classes,
        dimension=args.dimension,
        columns=max(args.columns, num_classes),
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        cluster_ratio=args.cluster_ratio,
        init_method=args.init,
        id_levels=args.id_levels,
        seed=args.seed,
    )


def _is_checkpoint_path(spec: str) -> bool:
    """Whether a ``--save`` / ``--load`` spec is a file path (vs a registry name).

    Deliberately deterministic: only the spelling of the spec decides
    (``.npz`` suffix or a path separator), never what happens to exist in
    the current directory, so the same spec always addresses the same
    artifact.
    """
    return spec.endswith(".npz") or os.path.sep in spec


def _save_trained_model(model, spec, store, dataset, metrics) -> str:
    """Checkpoint a trained model to a path or into the registry.

    Returns a human-readable description of where it went.
    """
    if _is_checkpoint_path(spec):
        save_checkpoint(model, spec, dataset=dataset, metrics=metrics)
        return checkpoint_path(spec)
    registry = ArtifactRegistry(store)
    name, _, tag = spec.partition(":")
    entry = registry.save(
        model, name, tag=tag or None, dataset=dataset, metrics=metrics
    )
    return f"{entry.spec} ({entry.path})"


def _resolve_checkpoint_spec(spec, store):
    """Resolve a ``--load`` spec (path or registry ``name[:tag]``) to a file."""
    if _is_checkpoint_path(spec):
        # Accept both the path as given and the .npz-suffixed form that
        # save_checkpoint actually wrote.
        return spec if os.path.isfile(spec) else checkpoint_path(spec)
    return ArtifactRegistry(store).resolve(spec)


def _load_saved_model(spec, store):
    """Load a checkpoint (path or registry spec); returns (model, manifest)."""
    return load_checkpoint_with_manifest(_resolve_checkpoint_spec(spec, store))


def cmd_info(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, rng=args.seed)
    rows = [dataset.summary()]
    print(format_table(rows, title=f"Dataset profile: {args.dataset}"))
    counts = dataset.class_counts("train")
    print(
        f"train samples per class: min {counts.min()}, max {counts.max()}, "
        f"mean {counts.mean():.1f}"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, rng=args.seed)
    model = _build_model(args, dataset.num_features, dataset.num_classes)
    history = model.fit(dataset.train_features, dataset.train_labels)
    test_accuracy = model.score(dataset.test_features, dataset.test_labels)
    report = model.memory_report()
    rows = [
        {
            "model": model.name,
            "dataset": dataset.name,
            "train_accuracy_%": 100.0 * history.final_train_accuracy,
            "test_accuracy_%": 100.0 * test_accuracy,
            "encoder_KB": report.encoder_kib,
            "am_KB": report.am_kib,
            "total_KB": report.total_kib,
        }
    ]
    print(format_table(rows, float_format="{:.2f}", title="Training result"))
    if args.save:
        metrics = {
            "train_accuracy": history.final_train_accuracy,
            "test_accuracy": test_accuracy,
        }
        try:
            destination = _save_trained_model(
                model, args.save, args.store, dataset, metrics
            )
        except (CheckpointError, RegistryError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"saved checkpoint to {destination}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, rng=args.seed)
    if args.load:
        try:
            model, manifest = _load_saved_model(args.load, args.store)
        except (CheckpointError, RegistryError, FileNotFoundError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if getattr(model, "num_features", dataset.num_features) != dataset.num_features:
            print(
                f"error: checkpoint expects {model.num_features} features but "
                f"dataset {dataset.name!r} has {dataset.num_features}",
                file=sys.stderr,
            )
            return 2
        saved = manifest.dataset
        if saved and saved.get("sha256") != dataset_fingerprint(dataset)["sha256"]:
            print(
                f"warning: checkpoint was trained on "
                f"{saved.get('name', 'unknown')!r} data with a different "
                "fingerprint than the dataset being served",
                file=sys.stderr,
            )
    else:
        print(
            "note: no --load given, so the model is retrained from scratch "
            "on every invocation; run `repro train --save NAME` once and "
            "reuse it with `repro predict --load NAME`",
            file=sys.stderr,
        )
        model = _build_model(args, dataset.num_features, dataset.num_classes)
        model.fit(dataset.train_features, dataset.train_labels)

    engines = ("float", "packed") if args.engine == "both" else (args.engine,)
    if args.prune_topk is not None and callable(
        getattr(model, "configure_pruning", None)
    ):
        model.configure_pruning(args.prune_topk)
    try:
        labels, stats = throughput_comparison(
            model,
            dataset.test_features,
            engines=engines,
            chunk_size=args.batch_size,
            workers=args.workers,
            repeats=args.repeats,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    test_accuracy = accuracy(labels, dataset.test_labels)

    rows = []
    for engine_stats in stats:
        row = engine_stats.as_dict()
        row["backend"] = (
            kernel_backend()
            if engine_stats.engine in ("packed", "pruned")
            else "blas"
        )
        row["elapsed_ms"] = 1000.0 * row.pop("elapsed_s")
        row["accuracy_%"] = 100.0 * test_accuracy
        rows.append(row)
    print(
        format_table(
            rows,
            float_format="{:.2f}",
            title=f"Batched inference on {dataset.name} ({model.name})",
        )
    )
    if len(stats) == 2 and stats[1].elapsed_seconds > 0:
        speedup = stats[0].elapsed_seconds / stats[1].elapsed_seconds
        print(f"packed engine speedup over float64 matmul: {speedup:.2f}x")
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=min(args.scale, 0.02), rng=args.seed)
    array = IMCArrayConfig(args.rows, args.cols)
    memhd_dimension = args.memhd_dimension or array.rows
    reports = full_mapping_report(
        num_features=dataset.num_features,
        num_classes=dataset.num_classes,
        baseline_dimension=args.baseline_dimension,
        memhd_dimension=memhd_dimension,
        memhd_columns=array.cols,
        partition_counts=tuple(args.partitions),
        array=array,
    )
    print(
        format_table(
            table2_rows(reports),
            title=f"Mapping analysis on {array.label} arrays ({args.dataset})",
        )
    )
    factors = improvement_factors(reports)
    print(
        f"MEMHD vs Basic: {factors['cycle_reduction']:.1f}x fewer cycles, "
        f"{factors['array_reduction']:.1f}x fewer arrays, "
        f"+{factors['utilization_gain'] * 100:.1f} pp utilization"
    )
    return 0


#: Fixed tiny grid used by ``repro sweep run --smoke`` (CI's rot check).
SMOKE_SPEC = SweepSpec(
    models=("memhd", "basichdc"),
    datasets=("mnist",),
    dimensions=(32, 64),
    columns=(16,),
    engines=("float", "packed"),
    scale=0.01,
    epochs=1,
    seed=7,
)

#: Fixed serving-load smoke grid (``--smoke --kind serving-load``):
#: 2 concurrency x 2 worker-count points over one tiny trained model,
#: the minimal capacity-planning matrix CI gates.
SERVING_SMOKE_SPEC = SweepSpec(
    kind="serving-load",
    models=("memhd",),
    datasets=("mnist",),
    dimensions=(32,),
    columns=(16,),
    engines=("packed",),
    scale=0.01,
    epochs=1,
    seed=7,
    serving_concurrency=(2, 4),
    serving_workers=(1, 2),
    serving_batch=(4,),
    serving_requests=32,
)


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    """Build the sweep spec from ``--spec FILE``, ``--smoke`` or axis flags."""
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            return SweepSpec.from_dict(json.load(handle))
    if args.smoke:
        # A fixed preset, independent of the other axis flags, so every CI
        # run exercises the identical tiny grid.
        return SERVING_SMOKE_SPEC if args.kind == "serving-load" else SMOKE_SPEC
    return SweepSpec(
        models=tuple(args.models),
        datasets=tuple(args.datasets),
        dimensions=tuple(args.dimensions),
        columns=tuple(args.columns),
        cluster_ratios=tuple(args.cluster_ratios),
        engines=tuple(args.engines),
        bit_flip_probabilities=tuple(args.noise),
        adc_bits=tuple(args.adc_bits),
        scale=args.scale,
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        id_levels=args.id_levels,
        init_method=args.init,
        seed=args.seed,
        kind=args.kind,
        serving_concurrency=tuple(args.serving_concurrency),
        serving_workers=tuple(args.serving_workers),
        serving_batch=tuple(args.serving_batch),
        serving_modes=tuple(args.serving_modes),
        serving_requests=args.serving_requests,
        serving_rate=args.serving_rate,
    )


def cmd_sweep_run(args: argparse.Namespace) -> int:
    if args.distributed:
        return _cmd_sweep_run_distributed(args)
    if args.store_dir:
        print("error: --store-dir requires --distributed", file=sys.stderr)
        return 2
    try:
        spec = _spec_from_args(args)
        store = ResultStore(args.results)
        result = run_sweep(
            spec,
            store,
            workers=args.workers,
            resume=not args.no_resume,
            max_jobs=args.max_jobs,
            progress=lambda line: print(line, file=sys.stderr),
        )
        records = spec_records(spec, store)
    except (SweepError, StoreError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    if records:
        print(_sweep_tables(records, title=f"Sweep results ({store.path})"))
    if args.save_best:
        try:
            best = best_record(records)
            model, dataset = train_record_model(best)
            registry = ArtifactRegistry(args.store)
            name, _, tag = args.save_best.partition(":")
            entry = registry.save(
                model, name, tag=tag or None, dataset=dataset, metrics=best.metrics
            )
        except (SweepError, CheckpointError, RegistryError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"saved best cell ({best.config['model']} on "
            f"{best.config['dataset']}, accuracy "
            f"{100.0 * best.metrics['test_accuracy']:.2f}%) to {entry.spec}"
        )
    if result.failed:
        for failure in result.failed:
            print(f"failed cell {failure['key']}: {failure['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_run_distributed(args: argparse.Namespace) -> int:
    """The ``sweep run --distributed`` path: one elastic pool worker."""
    from repro.eval.distributed import DEFAULT_TTL_S, run_distributed

    if not args.store_dir:
        print("error: --distributed requires --store-dir", file=sys.stderr)
        return 2
    if args.workers != 1:
        print(
            "error: --distributed runs cells inline; scale out by starting "
            "more workers over the same --store-dir, not with --workers",
            file=sys.stderr,
        )
        return 2
    if args.no_resume:
        print(
            "error: --no-resume is meaningless with --distributed (the "
            "shared store is the pool's work ledger)",
            file=sys.stderr,
        )
        return 2
    try:
        spec = _spec_from_args(args)
        result = run_distributed(
            spec,
            args.store_dir,
            worker_id=args.worker_id,
            ttl_s=args.lease_ttl if args.lease_ttl is not None else DEFAULT_TTL_S,
            poll_s=args.poll_interval,
            max_cells=args.max_jobs,
            progress=lambda line: print(line, file=sys.stderr),
        )
        records = spec_records(spec, ResultStore(result_store_path(args.store_dir)))
    except (SweepError, StoreError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    if records:
        print(_sweep_tables(records, title=f"Sweep results ({args.store_dir})"))
    if result.failed:
        for failure in result.failed:
            print(f"failed cell {failure['key']}: {failure['error']}", file=sys.stderr)
        return 1
    return 0 if result.grid_complete else 1


def result_store_path(store_dir: str) -> str:
    """``results.jsonl`` inside a distributed store dir (for sweep diff)."""
    from repro.eval.distributed import store_paths

    return str(store_paths(store_dir)["results"])


def _sweep_tables(records, title: str) -> str:
    """Accuracy + serving-load tables for whatever mix the store holds."""
    serving = [r for r in records if r.config.get("kind") == "serving-load"]
    regular = [r for r in records if r.config.get("kind") != "serving-load"]
    parts = []
    if regular:
        parts.append(format_sweep_records(regular, title=title))
    if serving:
        parts.append(
            format_serving_records(serving, title=f"Serving-load results ({title})")
        )
    return "\n\n".join(parts)


def cmd_sweep_status(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
        results = (
            result_store_path(args.store_dir) if args.store_dir else args.results
        )
        store = ResultStore(results)
        jobs = spec.expand()
        completed = store.completed_keys()
    except (SweepError, StoreError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    done = [job for job in jobs if job.key in completed]
    pending = [job for job in jobs if job.key not in completed]
    print(
        f"store {store.path}: {len(store)} stored cell(s); spec: "
        f"{len(jobs)} cell(s), {len(done)} completed, {len(pending)} pending"
    )
    for job in pending[:10]:
        print(f"  pending {job.key}: {job.config['model']} on "
              f"{job.config['dataset']} (D={job.config['dimension']})")
    if len(pending) > 10:
        print(f"  ... and {len(pending) - 10} more")
    if args.store_dir:
        from repro.eval.distributed import DEFAULT_TTL_S, pool_status

        status = pool_status(
            args.store_dir,
            ttl_s=args.lease_ttl if args.lease_ttl is not None else DEFAULT_TTL_S,
        )
        if status["workers"]:
            rows = [
                {"worker": worker, **counts}
                for worker, counts in status["workers"].items()
            ]
            print()
            print(format_table(rows, title="per-worker attribution"))
        for label, leases in (
            ("active", status["active_leases"]),
            ("expired", status["expired_leases"]),
        ):
            for lease in leases:
                print(
                    f"  {label} lease {lease['key']}: held by {lease['worker']} "
                    f"(age {lease['age_s']:.1f}s)"
                )
    return 0


def cmd_sweep_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.results)
    try:
        records = list(store.latest().values())
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not records:
        print(f"no results in {store.path}")
        return 0
    print(_sweep_tables(records, title=f"Sweep results ({store.path})"))
    if args.heatmap:
        grid = sweep_grid(records, value=args.value)
        if grid:
            # Accuracy metrics are fractions and render as percentages;
            # anything else (memory, throughput) displays unscaled.
            is_fraction = args.value.endswith("accuracy")
            unit = " (%)" if is_fraction else ""
            print()
            print(
                format_heatmap(
                    grid,
                    title=f"{args.value}{unit} over D (rows) x C (columns)",
                    cell_format="{:6.1f}" if is_fraction else "{:8.4g}",
                    cell_scale=100.0 if is_fraction else 1.0,
                )
            )
        else:
            print("(no ideal cells carry both dimension and columns axes)")
    return 0


def cmd_sweep_diff(args: argparse.Namespace) -> int:
    # Missing or empty stores diff as "no records" rather than erroring:
    # a fresh checkout comparing against a not-yet-run baseline is clean,
    # not broken (the note keeps the situation visible).
    for path in (args.left, args.right):
        if not os.path.isfile(path):
            print(f"note: {path} has no records (missing or empty store)")
    try:
        diff = ResultStore(args.left).diff(
            ResultStore(args.right),
            rtol=args.rtol,
            atol=args.atol,
            metrics=args.metrics,
        )
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_store_diff(diff, title=f"{args.left} vs {args.right}"))
    return 0 if diff.is_clean else 1


SWEEP_COMMANDS = {
    "run": cmd_sweep_run,
    "status": cmd_sweep_status,
    "report": cmd_sweep_report,
    "diff": cmd_sweep_diff,
}


def cmd_sweep(args: argparse.Namespace) -> int:
    return SWEEP_COMMANDS[args.sweep_command](args)


def _batching_summary(args: argparse.Namespace) -> str:
    """One-line micro-batching description for the serve banner."""
    if args.no_batching:
        return "batching disabled"
    return (
        f"batching max_batch={args.max_batch} max_wait={args.max_wait_ms}ms "
        f"queue_depth={args.queue_depth}"
    )


def _on_sigterm(callback) -> None:
    """Install ``callback`` as the SIGTERM handler (main thread only).

    Signal handlers are process-global and may only be installed from the
    main thread; tests drive ``cmd_serve`` from helper threads, where this
    quietly becomes a no-op.
    """
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: callback())


def _online_config(args: argparse.Namespace) -> "OnlineConfig | None":
    """The ``--online`` knobs as an OnlineConfig (``None`` when off)."""
    if not args.online:
        return None
    return OnlineConfig(
        promote_threshold=args.promote_threshold,
        promote_margin=args.promote_margin,
        min_feedback=args.min_feedback,
        interval_s=args.shadow_interval,
        buffer_size=args.feedback_buffer,
        eval_fraction=args.eval_fraction,
        eval_window=args.eval_window,
        learning_rate=args.online_lr,
        results_path=args.online_results,
    )


def _serve_prefork(
    args: argparse.Namespace, model, manifest, mapped: bool, online
) -> int:
    """``repro serve --workers N`` (N > 1): run the prefork supervisor."""
    store = str(ArtifactRegistry(args.store).root) if args.models else None
    config = WorkerConfig(
        models=tuple(args.models or ()),
        store=store,
        model=model,
        manifest=manifest,
        engine=args.engine,
        prune_topk=args.prune_topk,
        chunk_size=args.batch_size,
        pipeline_threads=args.pipeline_threads,
        batching=not args.no_batching,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        mapped=mapped,
        drain_timeout=args.drain_timeout,
        online=online,
    )
    try:
        supervisor = WorkerSupervisor(
            config,
            host=args.host,
            port=args.port,
            workers=args.workers,
            socket_mode=args.socket_mode,
            drain_timeout=args.drain_timeout,
        )
        supervisor.start()
    except (ValueError, RuntimeError, CheckpointError, RegistryError, OSError) as error:
        # OSError covers bind failures: port in use, privileged port, ...
        print(f"error: {error}", file=sys.stderr)
        return 2
    served = ", ".join(args.models or ()) or args.load
    print(
        f"serving {served} on {supervisor.url} [engine={args.engine}, backend="
        f"{kernel_backend() if args.engine in ('packed', 'pruned') else 'blas'}, "
        f"workers={args.workers} ({supervisor.socket_mode}), "
        f"mapped={'on' if mapped else 'off'}, {_batching_summary(args)}"
        f"{', online' if online is not None else ''}]"
    )
    print(
        "endpoints: POST /predict, POST /models/<name>/predict, "
        "POST /reload, "
        + ("POST /feedback, " if online is not None else "")
        + "GET /healthz, GET /stats, GET /stats/local, "
        "GET /manifest, GET /models"
    )
    _on_sigterm(supervisor.request_shutdown)
    try:
        supervisor.wait()
        print("shutting down (draining workers)")
    except KeyboardInterrupt:
        print("shutting down (draining workers)")
    finally:
        supervisor.shutdown(drain=True)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if not args.load and not args.models:
        print("error: provide --load CKPT and/or --models SPEC[,SPEC...]",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.online and not args.models:
        print("error: --online requires registry-backed --models "
              "(promotions are versioned checkpoints)", file=sys.stderr)
        return 2
    try:
        online = _online_config(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Memory-mapped checkpoint loading defaults on exactly when several
    # processes could share the pages; a lone server keeps the eager loader.
    mapped = args.mapped if args.mapped is not None else args.workers > 1
    model = manifest = None
    if args.load:
        try:
            model, manifest = _load_saved_model(args.load, args.store)
        except (CheckpointError, RegistryError, FileNotFoundError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.workers > 1:
        return _serve_prefork(args, model, manifest, mapped, online)
    try:
        server = ModelServer(
            model,
            engine=args.engine,
            prune_topk=args.prune_topk,
            chunk_size=args.batch_size,
            workers=args.pipeline_threads,
            manifest=manifest,
            host=args.host,
            port=args.port,
            models=args.models,
            registry=ArtifactRegistry(args.store),
            batching=not args.no_batching,
            max_batch_size=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_depth=args.queue_depth,
            mapped=mapped,
            online=online,
        )
    except (ValueError, CheckpointError, RegistryError, OSError) as error:
        # OSError covers bind failures: port in use, privileged port, ...
        print(f"error: {error}", file=sys.stderr)
        return 2
    served = ", ".join(
        f"{row['key']} ({row['artifact']})" for row in server.pool.describe()
    )
    print(
        f"serving {served} on {server.url} [engine={args.engine}, backend="
        f"{kernel_backend() if args.engine in ('packed', 'pruned') else 'blas'}, "
        f"{_batching_summary(args)}"
        f"{', online' if online is not None else ''}]"
    )
    print(
        "endpoints: POST /predict, POST /models/<name>/predict, "
        "POST /reload, "
        + ("POST /feedback, " if online is not None else "")
        + "GET /healthz, GET /stats, GET /manifest, GET /models"
    )
    # SIGTERM drains like Ctrl-C: stop accepting, answer what's in flight.
    _on_sigterm(
        lambda: threading.Thread(target=server.shutdown, daemon=True).start()
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


def _print_worker_attribution(url: str) -> None:
    """After a load test, show how a prefork cluster split the traffic.

    ``GET /stats`` on a ``--workers N`` daemon returns the aggregated
    cluster view with a per-worker ``workers`` map; a single-process
    server has no such key and prints nothing.  Stats are advisory, so
    any failure to fetch them is silently ignored.
    """
    try:
        stats = fetch_server_stats(url)
    except Exception:
        return
    workers = stats.get("workers")
    if not isinstance(workers, dict) or not workers:
        return
    rows = []
    for worker_id in sorted(workers, key=lambda key: int(key)):
        snapshot = workers[worker_id]
        rows.append(
            {
                "worker": int(worker_id),
                "requests": snapshot.get("requests", 0),
                "queries": snapshot.get("queries", 0),
                "errors": snapshot.get("errors", 0),
                "qps": snapshot.get("queries_per_second", 0.0),
            }
        )
    title = (
        f"Per-worker attribution ({stats.get('workers_alive', len(rows))}/"
        f"{stats.get('workers_total', len(rows))} workers alive, "
        f"{stats.get('respawns', 0)} respawns)"
    )
    print(format_table(rows, float_format="{:.2f}", title=title))


def cmd_loadtest(args: argparse.Namespace) -> int:
    concurrency = args.concurrency
    duration = args.duration
    if args.smoke:
        concurrency = min(concurrency, 8)
        duration = min(duration, 1.5)
    try:
        report = run_load(
            args.url,
            num_features=args.num_features,
            model=args.model,
            mode=args.mode,
            concurrency=concurrency,
            duration_seconds=duration,
            batch_size=args.batch,
            rate=args.rate,
            deadline_ms=args.deadline_ms,
            seed=args.seed,
        )
    except (ValueError, RuntimeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    row = report.as_dict()
    errors_by_status = row.pop("errors_by_status")
    print(
        format_table(
            [row], float_format="{:.2f}", title=f"Load test against {args.url}"
        )
    )
    if errors_by_status:
        shed = ", ".join(
            f"{count}x HTTP {status}" for status, count in errors_by_status.items()
        )
        print(f"non-200 responses: {shed}")
    _print_worker_attribution(args.url)
    if args.fail_on_error and report.errors:
        print(
            f"error: {report.errors}/{report.requests} requests failed",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    registry = ArtifactRegistry(args.store)
    try:
        if args.models_command == "list":
            entries = registry.list_entries(args.name)
            if not entries:
                print(f"no checkpoints in store {registry.root}")
                return 0
            rows = [entry.summary() for entry in entries]
            print(
                format_table(
                    rows,
                    float_format="{:.1f}",
                    title=f"Artifact store: {registry.root}",
                )
            )
            return 0
        if args.models_command == "show":
            manifest = read_manifest(_resolve_checkpoint_spec(args.spec, args.store))
            print(json.dumps(json.loads(manifest.to_json()), indent=2, sort_keys=True))
            return 0
        if args.models_command == "prune":
            removed = registry.prune(name=args.name, keep=args.keep)
            for path in removed:
                print(f"removed {path}")
            kept = len(registry.list_entries(args.name))
            print(f"pruned {len(removed)} checkpoint(s); {kept} kept")
            return 0
    except (CheckpointError, RegistryError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise ValueError(f"unknown models subcommand {args.models_command!r}")


def _load_workflow(args: argparse.Namespace):
    """``(spec, workdir)`` from workflow-command arguments.

    Raises
    ------
    repro.orchestrate.OrchestrationError
        On unreadable or invalid workflow files.
    """
    from repro.orchestrate import parse_workflow

    spec = parse_workflow(args.workflow)
    workdir = args.workdir or spec.workdir or f"{spec.name}-workdir"
    return spec, workdir


def cmd_run(args: argparse.Namespace) -> int:
    from repro.orchestrate import OrchestrationError, run_workflow

    try:
        spec, workdir = _load_workflow(args)
    except OrchestrationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_workflow(
        spec,
        workdir,
        workers=args.workers,
        force=args.force,
        progress=print,
    )
    print(result.summary())
    if not result.ok:
        for step in result.steps:
            if step.action == "failed":
                print(f"failed step {step.name}: {step.error}", file=sys.stderr)
        return 1
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.orchestrate import OrchestrationError, workflow_status

    try:
        spec, workdir = _load_workflow(args)
    except OrchestrationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(workflow_status(spec, workdir))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.orchestrate import OrchestrationError, build_report

    try:
        spec, workdir = _load_workflow(args)
    except OrchestrationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rendered = build_report(spec, workdir, fmt=args.fmt)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as stream:
                stream.write(rendered)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"wrote {args.fmt} report to {args.output}")
    else:
        print(rendered, end="")
    return 0


COMMANDS = {
    "info": cmd_info,
    "train": cmd_train,
    "predict": cmd_predict,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "models": cmd_models,
    "map": cmd_map,
    "sweep": cmd_sweep,
    "run": cmd_run,
    "status": cmd_status,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the console script and ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
