"""MEMHD core: the paper's primary contribution.

The sub-modules follow the structure of Sec. III of the paper:

* :mod:`repro.core.config` -- :class:`MEMHDConfig`, the single dataclass
  holding every hyperparameter (dimension ``D``, columns ``C``, cluster
  ratio ``R``, learning rate, epochs, ...).
* :mod:`repro.core.associative_memory` -- :class:`MultiCentroidAM`, the
  ``C x D`` multi-centroid associative memory with its column-to-class map.
* :mod:`repro.core.initialization` -- clustering-based initialization and
  confusion-matrix-driven cluster allocation (Sec. III-A), plus the
  random-sampling initializer used as the Fig. 5 baseline.
* :mod:`repro.core.quantization` -- mean-threshold 1-bit AM quantization
  (Sec. III-B) and the row-normalization used before re-binarization.
* :mod:`repro.core.training` -- quantization-aware iterative learning
  (Sec. III-C).
* :mod:`repro.core.model` -- :class:`MEMHDModel`, the end-to-end classifier
  tying encoder, initialization, quantization and training together
  (Sec. III-D provides the in-memory inference path, implemented in
  :mod:`repro.imc`).
"""

from repro.core.config import MEMHDConfig
from repro.core.associative_memory import MultiCentroidAM
from repro.core.initialization import (
    InitializationResult,
    clustering_initialization,
    random_sampling_initialization,
    initial_clusters_per_class,
)
from repro.core.quantization import (
    mean_threshold_binarize,
    normalize_rows,
    quantization_error,
)
from repro.core.training import QuantizationAwareTrainer
from repro.core.model import MEMHDModel
from repro.core.online import OnlineMEMHD
from repro.core.compression import (
    CompressionReport,
    centroid_usage,
    merge_similar_centroids,
    prune_centroids,
)

__all__ = [
    "MEMHDConfig",
    "MultiCentroidAM",
    "InitializationResult",
    "clustering_initialization",
    "random_sampling_initialization",
    "initial_clusters_per_class",
    "mean_threshold_binarize",
    "normalize_rows",
    "quantization_error",
    "QuantizationAwareTrainer",
    "MEMHDModel",
    "OnlineMEMHD",
    "CompressionReport",
    "centroid_usage",
    "merge_similar_centroids",
    "prune_centroids",
]
