"""The multi-centroid associative memory (AM).

The AM is a ``C x D`` matrix whose rows ("columns" of the IMC array when
mapped, hence the paper's ``C`` naming) are class vectors: several rows may
belong to the same class.  The mapping from AM row to class is held in
``column_classes``.  Associative search scores a binary query against every
row with the dot similarity and predicts the class of the best row -- a
single MVM on a ``D``-row, ``C``-column IMC array (paper Sec. III-D).

Two parallel representations are maintained:

``fp_memory``
    The floating-point shadow memory accumulating iterative-learning
    updates.
``binary_memory``
    The 1-bit quantized memory actually used for every similarity
    evaluation (and the only thing mapped into the IMC array).

A third, derived representation -- the bit-packed mirror returned by
:meth:`MultiCentroidAM.packed` -- stores the same 1-bit memory as
``uint64`` words and serves the ``packed=True`` fast path of every
inference method (bit-exact with the float path).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.quantization import mean_threshold_binarize, normalize_rows
from repro.hdc.packed import PackedAM
from repro.hdc.pruned import PrunedAM
from repro.hdc.similarity import dot_similarity


class MultiCentroidAM:
    """Multi-centroid associative memory with a column-to-class map.

    Parameters
    ----------
    fp_memory:
        ``(C, D)`` floating-point class-vector matrix (e.g. K-means
        centroids from the clustering-based initialization).
    column_classes:
        ``(C,)`` integer array giving the class each row represents.
    num_classes:
        Total number of classes ``k``.  Defaults to
        ``column_classes.max() + 1``.
    threshold_mode:
        Binarization threshold mode passed to
        :func:`repro.core.quantization.mean_threshold_binarize`.
    normalization:
        Row normalization applied by :meth:`refresh_binary`.
    """

    def __init__(
        self,
        fp_memory: np.ndarray,
        column_classes: np.ndarray,
        num_classes: Optional[int] = None,
        threshold_mode: str = "global-mean",
        normalization: str = "zscore",
    ) -> None:
        fp = np.asarray(fp_memory, dtype=np.float64)
        classes = np.asarray(column_classes, dtype=np.int64)
        if fp.ndim != 2:
            raise ValueError("fp_memory must be a 2-D (C, D) array")
        if classes.ndim != 1 or classes.shape[0] != fp.shape[0]:
            raise ValueError("column_classes must be 1-D with one entry per AM row")
        if np.any(classes < 0):
            raise ValueError("column_classes must be non-negative")
        inferred = int(classes.max()) + 1 if classes.size else 0
        self.num_classes = int(num_classes) if num_classes is not None else inferred
        if self.num_classes < inferred:
            raise ValueError(
                "num_classes is smaller than the largest label in column_classes"
            )
        missing = set(range(self.num_classes)) - set(int(c) for c in classes)
        if missing:
            raise ValueError(
                f"every class needs at least one column; missing: {sorted(missing)}"
            )
        self.fp_memory = fp
        self.column_classes = classes
        self.threshold_mode = threshold_mode
        self.normalization = normalization
        self._packed_am: Optional[PackedAM] = None
        self._pruned_am: Optional[PrunedAM] = None
        self.binary_memory = np.zeros_like(fp, dtype=np.int8)
        #: Shortlist width of the pruned engine (None = heuristic default).
        self.prune_topk: Optional[int] = None
        self.refresh_binary()

    # ----------------------------------------------------------- properties
    @property
    def binary_memory(self) -> np.ndarray:
        """The deployed 1-bit memory (what every similarity search reads)."""
        return self._binary_memory

    @binary_memory.setter
    def binary_memory(self, value: np.ndarray) -> None:
        # Any assignment -- refresh_binary, checkpoint restore, a trainer
        # rolling back to its best snapshot, online promotion/rollback --
        # drops the derived packed/pruned mirrors, so engine="packed" /
        # "pruned" can never keep answering from a stale copy.
        self._binary_memory = value
        self._packed_am = None
        self._pruned_am = None
    @property
    def num_columns(self) -> int:
        """Total number of class vectors ``C``."""
        return int(self.fp_memory.shape[0])

    @property
    def dimension(self) -> int:
        """Hypervector dimensionality ``D``."""
        return int(self.fp_memory.shape[1])

    @property
    def shape_label(self) -> str:
        """The paper's ``DxC`` shape label."""
        return f"{self.dimension}x{self.num_columns}"

    def columns_of_class(self, class_label: int) -> np.ndarray:
        """Indices of the AM rows belonging to ``class_label``."""
        if not 0 <= class_label < self.num_classes:
            raise ValueError(f"class_label out of range: {class_label}")
        return np.flatnonzero(self.column_classes == class_label)

    def columns_per_class(self) -> Dict[int, int]:
        """Number of centroids allocated to each class."""
        counts = np.bincount(self.column_classes, minlength=self.num_classes)
        return {label: int(count) for label, count in enumerate(counts)}

    # ------------------------------------------------------------ inference
    def packed(self) -> PackedAM:
        """Bit-packed mirror of the binary AM (built lazily, cached).

        The packed mirror stores the 1-bit memory as ``uint64`` words (8x
        smaller than ``binary_memory``) and answers associative searches
        with popcount kernels.  It is invalidated by
        :meth:`refresh_binary`.
        """
        if self._packed_am is None:
            self._packed_am = PackedAM.from_binary_memory(
                self.binary_memory, self.column_classes, self.num_classes
            )
        return self._packed_am

    def pruned(self) -> PrunedAM:
        """Centroid-pruned search index over the packed mirror (cached).

        Screens queries against per-class centroid sketches and exactly
        re-ranks only a shortlist; argmax-identical to the full scan (see
        :class:`repro.hdc.pruned.PrunedAM`).  Shares the packed mirror's
        storage, honours :attr:`prune_topk`, and is invalidated together
        with it by :meth:`refresh_binary`.
        """
        if self._pruned_am is None:
            self._pruned_am = PrunedAM(self.packed(), prune_topk=self.prune_topk)
        return self._pruned_am

    def configure_pruning(self, prune_topk: Optional[int]) -> None:
        """Set the pruned engine's shortlist width (None = heuristic)."""
        self.prune_topk = prune_topk
        if self._pruned_am is not None:
            self._pruned_am.prune_topk = prune_topk

    def scores(self, queries: np.ndarray, packed: bool = False) -> np.ndarray:
        """Dot similarity of binary queries against the binary AM.

        Parameters
        ----------
        queries:
            ``(n, D)`` or ``(D,)`` binary ``{0, 1}`` query hypervectors
            (the output of the binary projection encoder).
        packed:
            When ``True``, evaluate through the bit-packed popcount engine
            (bit-exact with the float path, far less memory traffic).

        Returns
        -------
        numpy.ndarray
            ``(n, C)`` similarity matrix (or ``(C,)`` for a single query).
        """
        arr = np.asarray(queries)
        if arr.shape[-1] != self.dimension:
            raise ValueError(
                f"query dimension {arr.shape[-1]} does not match AM dimension "
                f"{self.dimension}"
            )
        if packed:
            return self.packed().scores(arr)
        return dot_similarity(arr, self.binary_memory)

    def predict_columns(
        self, queries: np.ndarray, packed: bool = False, pruned: bool = False
    ) -> np.ndarray:
        """Index of the winning AM row for each query.

        ``pruned=True`` routes through the centroid-pruned shortlist
        search (argmax-identical to the full scan by construction).
        """
        if pruned:
            return self.pruned().predict_columns(np.asarray(queries))
        scores = np.atleast_2d(self.scores(queries, packed=packed))
        return np.argmax(scores, axis=1)

    def predict(
        self, queries: np.ndarray, packed: bool = False, pruned: bool = False
    ) -> np.ndarray:
        """Predicted class labels (the class of the winning row)."""
        return self.column_classes[
            self.predict_columns(queries, packed=packed, pruned=pruned)
        ]

    def class_scores(self, queries: np.ndarray, packed: bool = False) -> np.ndarray:
        """Per-class score: the best similarity among each class's rows."""
        scores = np.atleast_2d(self.scores(queries, packed=packed))
        result = np.full((scores.shape[0], self.num_classes), -np.inf)
        for class_label in range(self.num_classes):
            columns = self.columns_of_class(class_label)
            result[:, class_label] = scores[:, columns].max(axis=1)
        return result

    # ------------------------------------------------------------- training
    def refresh_binary(self) -> None:
        """Re-quantize the binary AM from the (normalized) FP AM.

        The assignment invalidates the packed/pruned mirrors through the
        :attr:`binary_memory` setter.
        """
        normalized = normalize_rows(self.fp_memory, self.normalization)
        self.binary_memory = mean_threshold_binarize(normalized, self.threshold_mode)

    def apply_updates(
        self,
        add_rows: np.ndarray,
        add_vectors: np.ndarray,
        subtract_rows: np.ndarray,
        subtract_vectors: np.ndarray,
        learning_rate: float,
    ) -> None:
        """Accumulate Eq. (6) updates into the FP AM.

        ``add_rows[i]`` receives ``+ learning_rate * add_vectors[i]`` and
        ``subtract_rows[i]`` receives ``- learning_rate * subtract_vectors[i]``.
        Repeated row indices accumulate (``np.add.at`` semantics).  The
        binary AM is *not* refreshed here; call :meth:`refresh_binary` at
        the configured interval.
        """
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        add_rows = np.asarray(add_rows, dtype=np.int64)
        subtract_rows = np.asarray(subtract_rows, dtype=np.int64)
        add_vectors = np.asarray(add_vectors, dtype=np.float64)
        subtract_vectors = np.asarray(subtract_vectors, dtype=np.float64)
        if add_rows.size:
            np.add.at(self.fp_memory, add_rows, learning_rate * add_vectors)
        if subtract_rows.size:
            np.add.at(self.fp_memory, subtract_rows, -learning_rate * subtract_vectors)

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this AM for checkpointing.

        Returns
        -------
        dict
            ``fp_memory`` (the float shadow memory, so training can
            resume), ``binary_memory`` (the deployed 1-bit memory, saved
            verbatim so a restored AM predicts bit-identically even if the
            quantization code evolves) and ``column_classes``.
        """
        return {
            "fp_memory": self.fp_memory,
            "binary_memory": self.binary_memory,
            "column_classes": self.column_classes,
        }

    @classmethod
    def from_checkpoint(
        cls,
        arrays: Dict[str, np.ndarray],
        num_classes: int,
        threshold_mode: str = "global-mean",
        normalization: str = "zscore",
    ) -> "MultiCentroidAM":
        """Rebuild an AM from :meth:`checkpoint_arrays` output.

        The saved ``binary_memory`` is adopted verbatim (not re-quantized
        from ``fp_memory``), which makes restore bit-exact by construction.

        Parameters
        ----------
        arrays:
            Mapping with ``fp_memory``, ``binary_memory`` and
            ``column_classes`` entries.
        num_classes:
            Total number of classes ``k``.
        threshold_mode / normalization:
            The quantization settings the AM was trained with (used by any
            further :meth:`refresh_binary` calls).
        """
        am = cls(
            np.asarray(arrays["fp_memory"], dtype=np.float64),
            np.asarray(arrays["column_classes"], dtype=np.int64),
            num_classes=num_classes,
            threshold_mode=threshold_mode,
            normalization=normalization,
        )
        binary = np.asarray(arrays["binary_memory"], dtype=np.int8)
        if binary.shape != am.fp_memory.shape:
            raise ValueError(
                f"binary_memory shape {binary.shape} does not match "
                f"fp_memory shape {am.fp_memory.shape}"
            )
        am.binary_memory = binary
        return am

    # -------------------------------------------------------------- utility
    def copy(self) -> "MultiCentroidAM":
        """Deep copy (used by experiments that branch a trained memory)."""
        clone = MultiCentroidAM(
            self.fp_memory.copy(),
            self.column_classes.copy(),
            num_classes=self.num_classes,
            threshold_mode=self.threshold_mode,
            normalization=self.normalization,
        )
        clone.binary_memory = self.binary_memory.copy()
        return clone

    def memory_bits(self) -> int:
        """Storage of the binary AM in single-bit cells: ``C * D``."""
        return self.num_columns * self.dimension

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiCentroidAM(shape={self.shape_label}, "
            f"classes={self.num_classes})"
        )
