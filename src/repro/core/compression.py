"""Post-training compression of the multi-centroid associative memory.

MEMHD already reduces memory by an order of magnitude relative to the
baselines, but two practical situations call for shrinking a *trained* AM
further without re-training:

* the deployment array is smaller than the one the model was trained for
  (e.g. a 128x64 macro instead of 128x128), or
* profiling shows some centroids contribute little and their columns could
  be reclaimed (for example by :meth:`repro.core.online.OnlineMEMHD.add_class`).

Two complementary tools are provided:

``merge_similar_centroids``
    Greedily merges, within each class, pairs of centroids whose binary
    patterns are nearly identical (Hamming distance below a threshold),
    replacing them with their (FP) sum.  Lossless in the limit of duplicate
    centroids.

``prune_centroids``
    Ranks centroids by their usage on a reference set (how many samples they
    win for their own class) and drops the least-used ones until a target
    column count is met, always keeping at least one centroid per class.

Both return a new :class:`~repro.core.associative_memory.MultiCentroidAM`
and a report of what was removed; the original memory is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.associative_memory import MultiCentroidAM
from repro.hdc.similarity import hamming_distance


@dataclass
class CompressionReport:
    """What a compression pass removed and what is left.

    Attributes
    ----------
    columns_before / columns_after:
        AM column counts before and after compression.
    removed_per_class:
        Number of columns removed from each class.
    merged_pairs:
        For :func:`merge_similar_centroids`, the (kept, absorbed) column
        index pairs that were merged (indices refer to the *original* AM).
    """

    columns_before: int
    columns_after: int
    removed_per_class: Dict[int, int] = field(default_factory=dict)
    merged_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def columns_removed(self) -> int:
        return self.columns_before - self.columns_after

    def as_dict(self) -> Dict[str, object]:
        return {
            "columns_before": self.columns_before,
            "columns_after": self.columns_after,
            "columns_removed": self.columns_removed,
            "removed_per_class": dict(self.removed_per_class),
            "merged_pairs": list(self.merged_pairs),
        }


def _rebuild(
    am: MultiCentroidAM, keep_mask: np.ndarray, fp_override: Optional[np.ndarray] = None
) -> MultiCentroidAM:
    """New AM keeping the masked rows (optionally with replaced FP rows)."""
    fp = fp_override if fp_override is not None else am.fp_memory
    return MultiCentroidAM(
        fp[keep_mask].copy(),
        am.column_classes[keep_mask].copy(),
        num_classes=am.num_classes,
        threshold_mode=am.threshold_mode,
        normalization=am.normalization,
    )


def merge_similar_centroids(
    am: MultiCentroidAM,
    max_hamming_fraction: float = 0.05,
) -> Tuple[MultiCentroidAM, CompressionReport]:
    """Merge near-duplicate centroids within each class.

    Two centroids of the same class are merged when their binary patterns
    differ in at most ``max_hamming_fraction`` of the dimensions; the kept
    centroid's FP row absorbs (adds) the absorbed centroid's FP row, so the
    merged prototype represents the union of both clusters.

    Returns the compressed memory and a :class:`CompressionReport`.
    """
    if not 0.0 <= max_hamming_fraction <= 1.0:
        raise ValueError("max_hamming_fraction must be in [0, 1]")
    threshold = int(round(max_hamming_fraction * am.dimension))
    fp = am.fp_memory.copy()
    keep = np.ones(am.num_columns, dtype=bool)
    merged_pairs: List[Tuple[int, int]] = []
    removed_per_class: Dict[int, int] = {label: 0 for label in range(am.num_classes)}

    for class_label in range(am.num_classes):
        columns = am.columns_of_class(class_label)
        for i_position, column_i in enumerate(columns):
            if not keep[column_i]:
                continue
            for column_j in columns[i_position + 1 :]:
                if not keep[column_j]:
                    continue
                distance = int(
                    hamming_distance(
                        am.binary_memory[column_i], am.binary_memory[column_j]
                    )
                )
                if distance <= threshold:
                    fp[column_i] += fp[column_j]
                    keep[column_j] = False
                    merged_pairs.append((int(column_i), int(column_j)))
                    removed_per_class[class_label] += 1

    compressed = _rebuild(am, keep, fp_override=fp)
    report = CompressionReport(
        columns_before=am.num_columns,
        columns_after=compressed.num_columns,
        removed_per_class={k: v for k, v in removed_per_class.items() if v},
        merged_pairs=merged_pairs,
    )
    return compressed, report


def centroid_usage(
    am: MultiCentroidAM, queries: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """How many reference samples each centroid wins *for its own class*.

    A centroid's usage is the number of samples of its class for which it is
    the most similar column among that class's columns -- the quantity that
    decides how much representational work the centroid is doing.
    """
    q = np.asarray(queries, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if q.shape[0] != y.shape[0]:
        raise ValueError("queries and labels must have the same length")
    scores = np.atleast_2d(am.scores(q))
    usage = np.zeros(am.num_columns, dtype=np.int64)
    for class_label in range(am.num_classes):
        columns = am.columns_of_class(class_label)
        members = np.flatnonzero(y == class_label)
        if members.size == 0:
            continue
        winners = np.argmax(scores[np.ix_(members, columns)], axis=1)
        for local_index, count in zip(*np.unique(winners, return_counts=True)):
            usage[columns[int(local_index)]] += int(count)
    return usage


def prune_centroids(
    am: MultiCentroidAM,
    queries: np.ndarray,
    labels: np.ndarray,
    target_columns: int,
) -> Tuple[MultiCentroidAM, CompressionReport]:
    """Drop the least-used centroids until ``target_columns`` remain.

    Usage is measured with :func:`centroid_usage` on the supplied reference
    split (normally the training data).  Every class always keeps at least
    one centroid; if the target cannot be met under that constraint a
    ``ValueError`` is raised.
    """
    if target_columns < am.num_classes:
        raise ValueError(
            f"target_columns ({target_columns}) must be >= the number of "
            f"classes ({am.num_classes})"
        )
    if target_columns >= am.num_columns:
        report = CompressionReport(am.num_columns, am.num_columns)
        return am.copy(), report

    usage = centroid_usage(am, queries, labels)
    keep = np.ones(am.num_columns, dtype=bool)
    removed_per_class: Dict[int, int] = {}
    to_remove = am.num_columns - target_columns
    # Remove in increasing usage order, skipping a class's last column.
    order = np.argsort(usage, kind="stable")
    for column in order:
        if to_remove == 0:
            break
        class_label = int(am.column_classes[column])
        class_columns = am.columns_of_class(class_label)
        remaining = keep[class_columns].sum()
        if remaining <= 1:
            continue
        keep[column] = False
        removed_per_class[class_label] = removed_per_class.get(class_label, 0) + 1
        to_remove -= 1
    if to_remove > 0:
        raise ValueError(
            "cannot reach the target column count without dropping a class "
            "below one centroid"
        )

    compressed = _rebuild(am, keep)
    report = CompressionReport(
        columns_before=am.num_columns,
        columns_after=compressed.num_columns,
        removed_per_class=removed_per_class,
    )
    return compressed, report
