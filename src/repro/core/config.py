"""MEMHD hyperparameter configuration.

A single frozen dataclass collects every knob of the MEMHD pipeline so that
experiments are fully described by (dataset, :class:`MEMHDConfig`, seed).
The defaults follow the paper: binary projection encoding, clustering-based
initialization with ratio ``R`` in the 0.8--1.0 range, mean-threshold 1-bit
quantization, and quantization-aware iterative learning with a learning rate
in the 0.01--0.1 range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


#: Allowed initialization strategies (Sec. III-A vs. the Fig. 5 baseline).
INIT_METHODS = ("clustering", "random")
#: Allowed row-normalization modes applied before re-binarization.
NORMALIZATION_MODES = ("zscore", "l2", "none")
#: Allowed binarization threshold modes (Sec. III-B uses the global mean).
THRESHOLD_MODES = ("global-mean", "row-mean")


@dataclass(frozen=True)
class MEMHDConfig:
    """Hyperparameters of a MEMHD model.

    Attributes
    ----------
    dimension:
        Hypervector dimensionality ``D``.  Chosen to match the IMC array's
        row count (e.g. 128 for a 128x128 array); the paper sweeps 64--1024.
    columns:
        Total number of class vectors ``C`` in the multi-centroid AM.
        Chosen to match the IMC array's column count; must be at least the
        number of classes so every class owns at least one centroid.
    cluster_ratio:
        ``R`` in Sec. III-A: the fraction of the ``C`` columns assigned by
        the initial class-wise clustering; the remaining ``C * (1 - R)``
        columns are allocated by the confusion-matrix-driven loop.
    epochs:
        Quantization-aware iterative-learning epochs (the paper trains for
        100; laptop-scale experiments converge in 10--20).
    learning_rate:
        Update step ``alpha`` of Eq. (6).
    init_method:
        ``"clustering"`` (paper) or ``"random"`` (Fig. 5 baseline).
    normalization:
        Row normalization applied to the FP AM before each re-binarization:
        ``"zscore"`` (default), ``"l2"`` or ``"none"``.
    threshold_mode:
        Binarization threshold: ``"global-mean"`` (paper, Sec. III-B) or
        ``"row-mean"``.
    kmeans_iterations:
        Maximum Lloyd iterations of the per-class K-means.
    allocation_rounds:
        Maximum validation/re-clustering rounds used to hand out the
        remaining ``C * (1 - R)`` columns.  Each round re-validates on the
        training set and distributes a batch of columns proportionally to
        per-class misclassification counts.
    binary_projection:
        Use a binary (+/-1) projection matrix for the encoder (True matches
        the IMC mapping of Sec. III-D).
    binary_update_interval:
        Number of training epochs between refreshes of the binary AM from
        the FP AM.  1 (default) refreshes every epoch.
    early_stop_patience:
        Stop training when the training accuracy has not improved for this
        many consecutive epochs; ``None`` disables early stopping.
    keep_best:
        Restore the binary-AM snapshot with the highest training accuracy at
        the end of training (default True), so late oscillations of the
        iterative updates never degrade the deployed model.
    seed:
        Seed used when the caller does not pass an explicit generator.
    """

    dimension: int = 128
    columns: int = 128
    cluster_ratio: float = 0.8
    epochs: int = 20
    learning_rate: float = 0.05
    init_method: str = "clustering"
    normalization: str = "zscore"
    threshold_mode: str = "global-mean"
    kmeans_iterations: int = 25
    allocation_rounds: int = 4
    binary_projection: bool = True
    binary_update_interval: int = 1
    early_stop_patience: Optional[int] = None
    keep_best: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.columns <= 0:
            raise ValueError("columns must be positive")
        if not 0.0 < self.cluster_ratio <= 1.0:
            raise ValueError("cluster_ratio (R) must be in (0, 1]")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.init_method not in INIT_METHODS:
            raise ValueError(
                f"init_method must be one of {INIT_METHODS}, got {self.init_method!r}"
            )
        if self.normalization not in NORMALIZATION_MODES:
            raise ValueError(
                f"normalization must be one of {NORMALIZATION_MODES}, "
                f"got {self.normalization!r}"
            )
        if self.threshold_mode not in THRESHOLD_MODES:
            raise ValueError(
                f"threshold_mode must be one of {THRESHOLD_MODES}, "
                f"got {self.threshold_mode!r}"
            )
        if self.kmeans_iterations < 1:
            raise ValueError("kmeans_iterations must be >= 1")
        if self.allocation_rounds < 1:
            raise ValueError("allocation_rounds must be >= 1")
        if self.binary_update_interval < 1:
            raise ValueError("binary_update_interval must be >= 1")
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise ValueError("early_stop_patience must be >= 1 or None")

    def with_updates(self, **changes) -> "MEMHDConfig":
        """Return a copy of the config with the given fields replaced."""
        return replace(self, **changes)

    def validate_for(self, num_classes: int) -> None:
        """Check that this config can represent ``num_classes`` classes."""
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if self.columns < num_classes:
            raise ValueError(
                f"columns (C={self.columns}) must be >= the number of classes "
                f"({num_classes}) so every class owns at least one centroid"
            )

    @property
    def shape_label(self) -> str:
        """Compact ``DxC`` label used throughout the paper (e.g. ``"128x128"``)."""
        return f"{self.dimension}x{self.columns}"
