"""Multi-centroid AM initialization (paper Sec. III-A).

Two initializers are provided:

``clustering_initialization``
    The paper's method.  A fraction ``R`` of the ``C`` available columns is
    assigned up front by running dot-similarity K-means *per class* over the
    encoded training hypervectors (Sec. III-A-1).  The remaining
    ``C * (1 - R)`` columns are then handed out over several validation
    rounds: the current (quantized) AM is evaluated on the whole training
    set, a confusion matrix is computed, and classes with more
    misclassifications receive additional centroids before being
    re-clustered (Sec. III-A-2).  The loop ends when every column is in
    use, i.e. the IMC array is fully utilized.

``random_sampling_initialization``
    The baseline initializer the paper compares against in Fig. 5: columns
    are split evenly across classes and each initial class vector is a
    randomly chosen sample hypervector of that class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.associative_memory import MultiCentroidAM
from repro.eval.metrics import misclassification_counts
from repro.hdc.clustering import dot_kmeans
from repro.hdc.hypervector import _as_generator


@dataclass
class InitializationResult:
    """Outcome of an AM initialization.

    Attributes
    ----------
    fp_memory:
        ``(C, D)`` floating-point initial class-vector matrix.
    column_classes:
        ``(C,)`` class label of every AM row.
    clusters_per_class:
        Final number of centroids allocated to each class.
    method:
        ``"clustering"`` or ``"random"``.
    allocation_rounds:
        One record per validation round of the cluster-allocation loop
        (empty for random initialization or when ``R == 1``).  Each record
        stores the number of columns that were still unallocated at the
        start of the round and the per-class misclassification counts that
        drove the allocation.
    padded_columns:
        Number of columns that could not be backed by distinct training
        samples (tiny datasets) and were filled with perturbed copies of
        existing centroids to preserve full utilization.
    """

    fp_memory: np.ndarray
    column_classes: np.ndarray
    clusters_per_class: Dict[int, int]
    method: str
    allocation_rounds: List[Dict[str, object]] = field(default_factory=list)
    padded_columns: int = 0

    @property
    def num_columns(self) -> int:
        return int(self.fp_memory.shape[0])


def initial_clusters_per_class(columns: int, num_classes: int, ratio: float) -> int:
    """Initial per-class cluster count ``n = max(1, floor(C * R / k))``."""
    if columns < num_classes:
        raise ValueError("columns must be at least num_classes")
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio (R) must be in (0, 1]")
    return max(1, int(np.floor(columns * ratio / num_classes)))


def _cluster_class(
    samples: np.ndarray,
    requested: int,
    max_iterations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class vectors for one class; clips the request to the sample count.

    Each returned row is the *sum* of the hypervectors assigned to that
    cluster (centroid scaled by the cluster size), matching classical HDC
    class-vector construction where class vectors accumulate sample
    hypervectors.  The scaling does not change the binarized pattern (row
    normalization removes it) but it keeps the Eq. (6) updates -- whose
    magnitude is ``learning_rate * H`` -- small relative to the memory, so
    the paper's 0.01--0.1 learning-rate range trains stably.
    """
    k = max(1, min(requested, samples.shape[0]))
    result = dot_kmeans(samples, k, max_iterations=max_iterations, rng=rng)
    sizes = np.maximum(result.cluster_sizes(), 1)
    return result.centroids * sizes[:, None]


def _assemble(
    centroids_by_class: Dict[int, np.ndarray], num_classes: int
) -> tuple:
    """Stack per-class centroid blocks into (fp_memory, column_classes)."""
    blocks = []
    labels = []
    for class_label in range(num_classes):
        block = centroids_by_class[class_label]
        blocks.append(block)
        labels.append(np.full(block.shape[0], class_label, dtype=np.int64))
    return np.vstack(blocks), np.concatenate(labels)


def _pad_to_full_utilization(
    centroids_by_class: Dict[int, np.ndarray],
    deficit: int,
    num_classes: int,
    rng: np.random.Generator,
) -> int:
    """Fill columns that no distinct sample can back with perturbed copies.

    Only triggers for datasets so small that the requested ``C`` exceeds the
    total number of training samples; full utilization of the IMC array is
    preserved by duplicating existing centroids with a small perturbation,
    distributed round-robin across classes.
    """
    padded = 0
    class_cycle = list(range(num_classes))
    position = 0
    while padded < deficit:
        class_label = class_cycle[position % num_classes]
        position += 1
        block = centroids_by_class[class_label]
        source = block[int(rng.integers(0, block.shape[0]))]
        noise = rng.normal(0.0, 1e-3, size=source.shape)
        centroids_by_class[class_label] = np.vstack([block, source + noise])
        padded += 1
    return padded


def clustering_initialization(
    encoded: np.ndarray,
    labels: np.ndarray,
    columns: int,
    num_classes: int,
    cluster_ratio: float = 0.8,
    kmeans_iterations: int = 25,
    allocation_rounds: int = 4,
    threshold_mode: str = "global-mean",
    normalization: str = "zscore",
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> InitializationResult:
    """Clustering-based initialization with confusion-matrix allocation.

    Parameters
    ----------
    encoded:
        ``(n, D)`` encoded training hypervectors (binary ``{0, 1}``).
    labels:
        ``(n,)`` integer class labels.
    columns:
        Total AM columns ``C`` (the IMC array's column count).
    num_classes:
        Number of classes ``k``.
    cluster_ratio:
        The paper's ``R``: fraction of columns assigned by the initial
        class-wise clustering.
    kmeans_iterations:
        Lloyd iteration budget per K-means run.
    allocation_rounds:
        Maximum validation rounds used to hand out the remaining columns;
        the final round always allocates everything left so the AM ends
        fully utilized.
    threshold_mode / normalization:
        Quantization settings used for the validation passes (they should
        match the downstream model so allocation optimizes the memory that
        will actually be deployed).
    rng:
        Seed or generator.
    """
    samples = np.asarray(encoded, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if samples.ndim != 2:
        raise ValueError("encoded must be a 2-D array")
    if samples.shape[0] != y.shape[0]:
        raise ValueError("encoded and labels must have the same length")
    if columns < num_classes:
        raise ValueError("columns must be >= num_classes")
    present = np.unique(y)
    if present.size != num_classes or present.min() != 0 or present.max() != num_classes - 1:
        missing = sorted(set(range(num_classes)) - set(int(c) for c in present))
        if missing:
            raise ValueError(f"training data is missing classes: {missing}")
    gen = _as_generator(rng)

    class_samples = {
        class_label: samples[y == class_label] for class_label in range(num_classes)
    }
    class_counts = {label: block.shape[0] for label, block in class_samples.items()}

    # --- Phase 1: class-wise clustering of the first C * R columns.
    per_class = initial_clusters_per_class(columns, num_classes, cluster_ratio)
    allocation = {label: per_class for label in range(num_classes)}
    centroids_by_class: Dict[int, np.ndarray] = {}
    for class_label in range(num_classes):
        child = np.random.default_rng(gen.integers(0, 2**63 - 1))
        centroids_by_class[class_label] = _cluster_class(
            class_samples[class_label], allocation[class_label],
            kmeans_iterations, child,
        )

    rounds: List[Dict[str, object]] = []
    used = sum(block.shape[0] for block in centroids_by_class.values())
    remaining = columns - used

    # --- Phase 2: confusion-matrix-driven allocation of the remaining columns.
    round_index = 0
    while remaining > 0 and round_index < allocation_rounds:
        round_index += 1
        rounds_left = allocation_rounds - round_index + 1
        batch = remaining if rounds_left == 1 else max(1, int(np.ceil(remaining / rounds_left)))

        fp_memory, column_classes = _assemble(centroids_by_class, num_classes)
        am = MultiCentroidAM(
            fp_memory,
            column_classes,
            num_classes=num_classes,
            threshold_mode=threshold_mode,
            normalization=normalization,
        )
        predictions = am.predict(samples)
        wrong = misclassification_counts(predictions, y, num_classes)

        # Distribute the batch proportionally to misclassification counts,
        # skipping classes that cannot support more distinct centroids.
        capacity = np.array(
            [
                max(0, class_counts[label] - centroids_by_class[label].shape[0])
                for label in range(num_classes)
            ],
            dtype=np.int64,
        )
        weights = wrong.astype(np.float64) + 1e-9
        weights[capacity == 0] = 0.0
        granted = np.zeros(num_classes, dtype=np.int64)
        if weights.sum() > 0:
            ideal = weights / weights.sum() * batch
            granted = np.minimum(np.floor(ideal).astype(np.int64), capacity)
            # Hand out any left-over columns one at a time to the classes
            # with the largest fractional remainder that still have capacity.
            leftover = batch - int(granted.sum())
            if leftover > 0:
                order = np.argsort(-(ideal - granted))
                for class_label in order:
                    if leftover == 0:
                        break
                    if granted[class_label] < capacity[class_label]:
                        granted[class_label] += 1
                        leftover -= 1

        if granted.sum() == 0:
            # No class can absorb more distinct centroids; stop allocating.
            rounds.append(
                {
                    "remaining_before": int(remaining),
                    "misclassified": wrong.tolist(),
                    "granted": granted.tolist(),
                }
            )
            break

        for class_label in np.flatnonzero(granted):
            allocation[class_label] = (
                centroids_by_class[class_label].shape[0] + int(granted[class_label])
            )
            child = np.random.default_rng(gen.integers(0, 2**63 - 1))
            centroids_by_class[class_label] = _cluster_class(
                class_samples[class_label],
                allocation[class_label],
                kmeans_iterations,
                child,
            )

        rounds.append(
            {
                "remaining_before": int(remaining),
                "misclassified": wrong.tolist(),
                "granted": granted.tolist(),
            }
        )
        used = sum(block.shape[0] for block in centroids_by_class.values())
        remaining = columns - used

    # --- Phase 3: guarantee full utilization even for tiny datasets.
    padded = 0
    used = sum(block.shape[0] for block in centroids_by_class.values())
    if used < columns:
        padded = _pad_to_full_utilization(
            centroids_by_class, columns - used, num_classes, gen
        )

    fp_memory, column_classes = _assemble(centroids_by_class, num_classes)
    clusters_per_class = {
        label: int(block.shape[0]) for label, block in centroids_by_class.items()
    }
    return InitializationResult(
        fp_memory=fp_memory,
        column_classes=column_classes,
        clusters_per_class=clusters_per_class,
        method="clustering",
        allocation_rounds=rounds,
        padded_columns=padded,
    )


def random_sampling_initialization(
    encoded: np.ndarray,
    labels: np.ndarray,
    columns: int,
    num_classes: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> InitializationResult:
    """Random-sampling initialization (the Fig. 5 baseline).

    Columns are split as evenly as possible across classes and each initial
    class vector is a training hypervector drawn uniformly at random from
    that class (with replacement when a class owns fewer samples than
    columns).
    """
    samples = np.asarray(encoded, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if samples.shape[0] != y.shape[0]:
        raise ValueError("encoded and labels must have the same length")
    if columns < num_classes:
        raise ValueError("columns must be >= num_classes")
    gen = _as_generator(rng)

    base = columns // num_classes
    extra = columns - base * num_classes
    centroids_by_class: Dict[int, np.ndarray] = {}
    for class_label in range(num_classes):
        count = base + (1 if class_label < extra else 0)
        members = samples[y == class_label]
        if members.shape[0] == 0:
            raise ValueError(f"class {class_label} has no training samples")
        replace = members.shape[0] < count
        chosen = gen.choice(members.shape[0], size=count, replace=replace)
        centroids_by_class[class_label] = members[chosen].astype(np.float64)

    fp_memory, column_classes = _assemble(centroids_by_class, num_classes)
    clusters_per_class = {
        label: int(block.shape[0]) for label, block in centroids_by_class.items()
    }
    return InitializationResult(
        fp_memory=fp_memory,
        column_classes=column_classes,
        clusters_per_class=clusters_per_class,
        method="random",
    )
