"""End-to-end MEMHD classifier.

:class:`MEMHDModel` ties together the building blocks of Sec. III:

* a binary random-projection encoder whose output dimensionality ``D``
  matches the IMC array's row count,
* the multi-centroid associative memory with ``C`` columns matching the
  array's column count,
* clustering-based (or random-sampling) initialization,
* mean-threshold 1-bit quantization, and
* quantization-aware iterative learning.

It implements the same :class:`repro.baselines.base.HDCClassifier`
interface as the baselines so the evaluation harness treats every model
uniformly, and it exposes the binary artifacts (projection matrix and AM)
that :mod:`repro.imc` maps into IMC arrays for in-memory inference.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.baselines.base import HDCClassifier, TrainingHistory
from repro.core.associative_memory import MultiCentroidAM
from repro.core.config import MEMHDConfig
from repro.core.initialization import (
    InitializationResult,
    clustering_initialization,
    random_sampling_initialization,
)
from repro.core.training import QuantizationAwareTrainer
from repro.hdc.encoders import RandomProjectionEncoder, check_encoder_shape
from repro.hdc.hypervector import _as_generator, to_binary
from repro.hdc.memory_model import MemoryReport, model_memory_report
from repro.runtime.pipeline import ENGINES, InferencePipeline


def _use_packed(engine: str) -> bool:
    """Validate an engine name and return whether it is the packed one."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine == "packed"


def _use_pruned(engine: str) -> bool:
    """Validate an engine name and return whether it is the pruned one."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine == "pruned"


class MEMHDModel(HDCClassifier):
    """Memory-efficient multi-centroid HDC classifier (the paper's model)."""

    name = "MEMHD"

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        config: Optional[MEMHDConfig] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
        encoder: Optional[RandomProjectionEncoder] = None,
    ) -> None:
        if num_features <= 0 or num_classes <= 0:
            raise ValueError("num_features and num_classes must be positive")
        self.config = config or MEMHDConfig()
        self.config.validate_for(num_classes)
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        seed = self.config.seed if rng is None else rng
        self._rng = _as_generator(seed)
        if encoder is not None:
            # Adopt a pre-built encoder (checkpoint restoration) instead of
            # drawing a fresh random projection.
            self.encoder = check_encoder_shape(
                encoder, self.num_features, self.config.dimension
            )
        else:
            self.encoder = RandomProjectionEncoder(
                num_features,
                self.config.dimension,
                binary_projection=self.config.binary_projection,
                rng=self._rng,
            )
        self._am: Optional[MultiCentroidAM] = None
        self._init_result: Optional[InitializationResult] = None

    # ------------------------------------------------------------------ API
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> TrainingHistory:
        """Initialize, quantize and train the multi-centroid AM.

        Parameters
        ----------
        features:
            ``(n, f)`` raw training features.
        labels:
            ``(n,)`` integer training labels in ``[0, num_classes)``.
        validation:
            Optional ``(features, labels)`` pair whose accuracy is recorded
            after every training epoch.
        """
        x, y = self._check_fit_inputs(features, labels)
        if np.any(y >= self.num_classes):
            raise ValueError("label outside the configured number of classes")
        encoded = self.encode_binary(x).astype(np.float64)

        if self.config.init_method == "clustering":
            init = clustering_initialization(
                encoded,
                y,
                columns=self.config.columns,
                num_classes=self.num_classes,
                cluster_ratio=self.config.cluster_ratio,
                kmeans_iterations=self.config.kmeans_iterations,
                allocation_rounds=self.config.allocation_rounds,
                threshold_mode=self.config.threshold_mode,
                normalization=self.config.normalization,
                rng=self._rng,
            )
        else:
            init = random_sampling_initialization(
                encoded,
                y,
                columns=self.config.columns,
                num_classes=self.num_classes,
                rng=self._rng,
            )
        self._init_result = init

        self._am = MultiCentroidAM(
            init.fp_memory,
            init.column_classes,
            num_classes=self.num_classes,
            threshold_mode=self.config.threshold_mode,
            normalization=self.config.normalization,
        )

        trainer = QuantizationAwareTrainer(
            learning_rate=self.config.learning_rate,
            epochs=self.config.epochs,
            binary_update_interval=self.config.binary_update_interval,
            early_stop_patience=self.config.early_stop_patience,
            keep_best=self.config.keep_best,
        )
        validation_encoded = None
        if validation is not None:
            val_x, val_y = validation
            validation_encoded = (
                self.encode_binary(np.asarray(val_x, dtype=np.float64)).astype(
                    np.float64
                ),
                np.asarray(val_y, dtype=np.int64),
            )
        return trainer.train(
            self._am, encoded, y, validation=validation_encoded, rng=self._rng
        )

    def predict(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Associative-search classification of raw feature vectors.

        Parameters
        ----------
        features:
            ``(n, f)`` or ``(f,)`` raw feature vectors.
        engine:
            ``"float"`` evaluates similarities with the reference matmul
            path; ``"packed"`` uses the bit-packed popcount engine;
            ``"pruned"`` adds centroid-pruned shortlist search on top of
            the packed kernels.  All three produce bit-identical
            predictions.
        """
        am = self._require_am()
        encoded = self.encode_binary(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return am.predict(
            encoded, packed=_use_packed(engine), pruned=_use_pruned(engine)
        )

    def memory_report(self) -> MemoryReport:
        """Table I breakdown: ``f*D`` encoder bits plus ``C*D`` AM bits."""
        return model_memory_report(
            "MEMHD",
            num_features=self.num_features,
            dimension=self.config.dimension,
            num_classes=self.num_classes,
            num_columns=self.config.columns,
        )

    # ----------------------------------------------------------- inspection
    @property
    def associative_memory(self) -> MultiCentroidAM:
        """The trained multi-centroid AM."""
        return self._require_am()

    @property
    def initialization(self) -> InitializationResult:
        """Details of the initialization phase (allocation rounds, etc.)."""
        if self._init_result is None:
            raise RuntimeError("model has not been fitted")
        return self._init_result

    @property
    def shape_label(self) -> str:
        """Paper-style ``DxC`` label of this model (e.g. ``"128x128"``)."""
        return self.config.shape_label

    def encode_binary(self, features: np.ndarray) -> np.ndarray:
        """Encode features into binary ``{0, 1}`` query hypervectors.

        This is the exact bit pattern an IMC implementation would drive onto
        the AM array's rows, so both the software model and the functional
        IMC simulator consume it.
        """
        encoded = self.encoder.encode(features)
        return to_binary(encoded)

    def projection_matrix_binary(self) -> np.ndarray:
        """The encoder's projection matrix as mapped into the IMC array."""
        return self.encoder.projection_binary

    def class_scores(self, features: np.ndarray, engine: str = "float") -> np.ndarray:
        """Per-class best-centroid similarity scores for raw features.

        Pruning only accelerates the argmax, so ``engine="pruned"``
        evaluates full per-class scores through the packed engine.
        """
        am = self._require_am()
        encoded = self.encode_binary(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        packed = _use_packed(engine) or _use_pruned(engine)
        return am.class_scores(encoded, packed=packed)

    def prepare_engine(self, engine: str = "float") -> None:
        """Build engine state ahead of serving (pipeline warm-up hook).

        For the packed engine this packs the binary AM into ``uint64``
        words; for the pruned engine it additionally builds the per-class
        centroid sketches.  The encoder's projection matrix is
        materialized in every case so the first served chunk pays no
        lazy-initialization cost.
        """
        am = self._require_am()
        _ = self.encoder.projection  # encoder state is eager; touch it anyway
        if _use_packed(engine):
            am.packed()
        elif _use_pruned(engine):
            am.pruned()

    def configure_pruning(self, prune_topk: Optional[int]) -> None:
        """Set the pruned engine's shortlist width (None = heuristic)."""
        self._require_am().configure_pruning(prune_topk)

    def prune_stats(self) -> Optional[Dict[str, float]]:
        """Prune counters of the pruned engine (None before it is built)."""
        am = self._am
        if am is None or am._pruned_am is None:
            return None
        return am._pruned_am.stats()

    def make_pipeline(
        self,
        engine: str = "packed",
        chunk_size: int = 1024,
        workers: int = 1,
    ) -> InferencePipeline:
        """Batched serving pipeline over this model (defaults to packed)."""
        self._require_am()
        return InferencePipeline(
            self, engine=engine, chunk_size=chunk_size, workers=workers
        )

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this fitted model for checkpointing.

        Returns
        -------
        dict
            ``encoder_projection`` plus the associative memory's arrays
            (``fp_memory``, ``binary_memory``, ``column_classes``).
            Training telemetry (:attr:`initialization`, epoch history) is
            deliberately not checkpointed; only what inference and further
            training need.
        """
        am = self._require_am()
        arrays = {"encoder_projection": self.encoder.projection}
        arrays.update(am.checkpoint_arrays())
        return arrays

    @classmethod
    def from_checkpoint(
        cls,
        num_features: int,
        num_classes: int,
        config: MEMHDConfig,
        arrays: Dict[str, np.ndarray],
        encoder_meta: Optional[Dict] = None,
    ) -> "MEMHDModel":
        """Rebuild a fitted model from :meth:`checkpoint_arrays` output.

        The restored model predicts bit-identically to the saved one on
        both the float and the packed engine; it can also keep training
        (the float shadow memory is part of the checkpoint), though epoch
        history and initialization telemetry start fresh.
        """
        meta = encoder_meta or {}
        encoder = RandomProjectionEncoder.from_projection(
            arrays["encoder_projection"],
            binary_projection=meta.get("binary_projection", config.binary_projection),
            quantize_output=meta.get("quantize_output", True),
        )
        model = cls(num_features, num_classes, config, rng=config.seed, encoder=encoder)
        model._am = MultiCentroidAM.from_checkpoint(
            arrays,
            num_classes=num_classes,
            threshold_mode=config.threshold_mode,
            normalization=config.normalization,
        )
        if model._am.dimension != config.dimension:
            raise ValueError(
                f"checkpoint AM dimension {model._am.dimension} does not "
                f"match config dimension {config.dimension}"
            )
        return model

    # ------------------------------------------------------------ internals
    def _require_am(self) -> MultiCentroidAM:
        if self._am is None:
            raise RuntimeError("MEMHDModel has not been fitted yet")
        return self._am
