"""Online / incremental extensions of the MEMHD model.

The paper closes by positioning MEMHD for "resource-constrained
environments"; a capability such deployments routinely need -- and the
future-work direction most adjacent to the paper -- is updating the model in
the field without re-running the full clustering + training pipeline:

* :meth:`OnlineMEMHD.partial_fit` folds a stream of newly-labelled samples
  into the existing multi-centroid AM using the same Eq. (6) quantization-
  aware update rule (mispredicted samples move their best true-class
  centroid up and the winning wrong centroid down), followed by the usual
  normalization + re-binarization.
* :meth:`OnlineMEMHD.add_class` grows the AM with centroids for a class that
  did not exist at training time, either by claiming the least-useful
  columns of existing classes (keeping the AM exactly ``C x D`` so it still
  fills one IMC array) or by appending new columns when the hardware budget
  allows.

The class wraps a fitted :class:`repro.core.model.MEMHDModel` and shares its
encoder, so queries keep using the already-deployed projection matrix.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.model import MEMHDModel
from repro.eval.metrics import accuracy
from repro.hdc.clustering import dot_kmeans
from repro.hdc.hypervector import _as_generator


class OnlineMEMHD:
    """Incremental updates and class addition on top of a fitted MEMHD model.

    Parameters
    ----------
    model:
        A fitted :class:`MEMHDModel`; its associative memory is updated in
        place.
    learning_rate:
        Step size of the streaming Eq. (6) updates; defaults to the model's
        configured learning rate.
    rng:
        Seed or generator for the class-addition clustering.
    """

    def __init__(
        self,
        model: MEMHDModel,
        learning_rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.am = model.associative_memory  # raises if not fitted
        rate = learning_rate if learning_rate is not None else model.config.learning_rate
        if rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(rate)
        self._rng = _as_generator(rng)

    # ------------------------------------------------------------------ API
    @property
    def num_classes(self) -> int:
        """Current number of classes representable by the AM."""
        return self.am.num_classes

    def partial_fit(
        self, features: np.ndarray, labels: np.ndarray, refresh: bool = True
    ) -> Dict[str, float]:
        """Fold a batch of labelled samples into the AM.

        Applies one pass of the quantization-aware update rule over the
        batch (scored against the current binary memory), then -- when
        ``refresh`` is True -- re-normalizes and re-binarizes the memory.
        Re-binarization assigns :attr:`MultiCentroidAM.binary_memory`,
        whose setter drops the cached packed/pruned mirrors, so
        ``engine="packed"`` / ``"pruned"`` predictions can never go stale
        after an update (regression-pinned by ``tests/test_core_online``).

        Returns
        -------
        dict
            ``{"batch_accuracy_before", "batch_accuracy_after", "updates"}``
            measured on the supplied batch.
        """
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same length")
        if np.any(y < 0) or np.any(y >= self.num_classes):
            raise ValueError(
                "labels must lie in the AM's current class range; use "
                "add_class() first for novel classes"
            )

        queries = self.model.encode_binary(x).astype(np.float64)
        before = accuracy(self.am.predict(queries), y)

        scores = np.atleast_2d(self.am.scores(queries))
        predicted_columns = np.argmax(scores, axis=1)
        predicted_classes = self.am.column_classes[predicted_columns]
        class_mask = self.am.column_classes[None, :] == y[:, None]
        masked = np.where(class_mask, scores, -np.inf)
        true_targets = np.argmax(masked, axis=1)
        wrong = np.flatnonzero(predicted_classes != y)
        if wrong.size:
            self.am.apply_updates(
                add_rows=true_targets[wrong],
                add_vectors=queries[wrong],
                subtract_rows=predicted_columns[wrong],
                subtract_vectors=queries[wrong],
                learning_rate=self.learning_rate,
            )
        if refresh:
            self.am.refresh_binary()
        after = accuracy(self.am.predict(queries), y)
        return {
            "batch_accuracy_before": before,
            "batch_accuracy_after": after,
            "updates": int(wrong.size),
        }

    def add_class(
        self,
        features: np.ndarray,
        new_label: Optional[int] = None,
        columns: int = 1,
        grow: bool = False,
    ) -> int:
        """Teach the model a class it has never seen.

        Parameters
        ----------
        features:
            ``(n, f)`` raw feature vectors of the new class (n >= 1).
        new_label:
            Label to assign; defaults to ``num_classes`` (the next id).
        columns:
            Number of centroids to dedicate to the new class.
        grow:
            When False (default) the new centroids *replace* existing
            columns -- one is taken from each of the classes currently
            owning the most columns, so the AM keeps its exact ``C x D``
            shape and continues to fill one IMC array.  When True the AM
            grows by ``columns`` rows instead (requires re-mapping onto
            hardware with more columns).

        Returns
        -------
        int
            The label assigned to the new class.
        """
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[0] < 1:
            raise ValueError("need at least one sample of the new class")
        if columns < 1:
            raise ValueError("columns must be >= 1")
        label = int(new_label) if new_label is not None else self.num_classes
        if label < self.num_classes:
            raise ValueError(
                f"label {label} already exists; partial_fit() handles known classes"
            )

        encoded = self.model.encode_binary(x).astype(np.float64)
        k = min(columns, encoded.shape[0])
        result = dot_kmeans(encoded, k, rng=self._rng)
        sizes = np.maximum(result.cluster_sizes(), 1)
        new_rows = result.centroids * sizes[:, None]

        if grow:
            self.am.fp_memory = np.vstack([self.am.fp_memory, new_rows])
            self.am.column_classes = np.concatenate(
                [self.am.column_classes, np.full(k, label, dtype=np.int64)]
            )
        else:
            victims = self._select_victim_columns(k)
            self.am.fp_memory[victims] = new_rows
            self.am.column_classes[victims] = label

        self.am.num_classes = max(self.am.num_classes, label + 1)
        self.am.refresh_binary()
        return label

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the current (online-updated) AM on a labelled split."""
        queries = self.model.encode_binary(np.asarray(features, dtype=np.float64))
        if queries.ndim == 1:
            queries = queries[None, :]
        return accuracy(self.am.predict(queries.astype(np.float64)), np.asarray(labels))

    # ------------------------------------------------------------ internals
    def _select_victim_columns(self, count: int) -> np.ndarray:
        """Pick columns to repurpose: take from the best-provisioned classes.

        One column is claimed from each of the classes currently owning the
        most centroids (never dropping a class below one column), repeating
        until ``count`` columns have been gathered.
        """
        counts = {
            label: list(self.am.columns_of_class(label))
            for label in range(self.am.num_classes)
        }
        victims = []
        while len(victims) < count:
            richest = max(counts, key=lambda label: len(counts[label]))
            if len(counts[richest]) <= 1:
                raise ValueError(
                    "cannot repurpose columns without dropping a class below "
                    "one centroid; call add_class(grow=True) instead"
                )
            victims.append(counts[richest].pop())
        return np.asarray(victims, dtype=np.int64)
