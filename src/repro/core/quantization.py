"""Associative-memory quantization and normalization (paper Sec. III-B).

After clustering-based initialization the floating-point AM values follow a
roughly Gaussian distribution (they are means of many binary hypervectors).
MEMHD performs 1-bit quantization with the *mean* as the threshold: entries
greater than the mean become 1, the rest 0.  The same binarization is
re-applied after every quantization-aware training epoch; before it, a row
normalization evens out the learning influence across the multiple class
vectors of one class so that no single centroid dominates (Sec. III-C-4).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def mean_threshold_binarize(
    fp_memory: np.ndarray, mode: str = "global-mean"
) -> np.ndarray:
    """1-bit quantization of a floating-point AM.

    Parameters
    ----------
    fp_memory:
        ``(C, D)`` floating-point associative memory.
    mode:
        ``"global-mean"`` (paper default): a single threshold, the mean of
        the whole matrix.  ``"row-mean"``: each row is thresholded at its
        own mean, which guarantees every centroid keeps a balanced number
        of ones even without prior normalization.

    Returns
    -------
    numpy.ndarray
        ``(C, D)`` ``int8`` matrix with values in ``{0, 1}``.
    """
    arr = np.asarray(fp_memory, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("fp_memory must be a 2-D array")
    if mode == "global-mean":
        threshold = arr.mean()
        return (arr > threshold).astype(np.int8)
    if mode == "row-mean":
        thresholds = arr.mean(axis=1, keepdims=True)
        return (arr > thresholds).astype(np.int8)
    raise ValueError(f"unknown threshold mode {mode!r}")


def normalize_rows(fp_memory: np.ndarray, mode: str = "zscore") -> np.ndarray:
    """Row-normalize the FP AM before re-binarization (Sec. III-C-4).

    ``"zscore"`` maps each row to zero mean and unit variance, ``"l2"``
    rescales each row to unit Euclidean norm, ``"none"`` returns a copy
    unchanged.  Degenerate rows (zero variance / zero norm) are left as-is.
    """
    arr = np.asarray(fp_memory, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("fp_memory must be a 2-D array")
    if mode == "none":
        return arr.copy()
    if mode == "zscore":
        mean = arr.mean(axis=1, keepdims=True)
        std = arr.std(axis=1, keepdims=True)
        # Rows that are (numerically) constant have no shape to preserve;
        # dividing by their vanishing std would only amplify rounding noise.
        degenerate = std <= 1e-12 * (1.0 + np.abs(mean))
        safe_std = np.where(degenerate, 1.0, std)
        return (arr - mean) / safe_std
    if mode == "l2":
        norms = np.linalg.norm(arr, axis=1, keepdims=True)
        safe_norms = np.where(norms > 0.0, norms, 1.0)
        return arr / safe_norms
    raise ValueError(f"unknown normalization mode {mode!r}")


def quantization_error(
    fp_memory: np.ndarray, binary_memory: np.ndarray
) -> Tuple[float, float]:
    """Diagnostics of the 1-bit quantization.

    Returns
    -------
    tuple
        ``(mse, ones_fraction)`` where ``mse`` is the mean squared error
        between the (z-scored) FP memory and the ``{-1, +1}``-scaled binary
        memory, and ``ones_fraction`` is the fraction of 1s in the binary
        memory.  Both are useful for monitoring whether quantization-aware
        learning is keeping the binary memory balanced.
    """
    fp = np.asarray(fp_memory, dtype=np.float64)
    binary = np.asarray(binary_memory)
    if fp.shape != binary.shape:
        raise ValueError("fp_memory and binary_memory must share a shape")
    zscored = normalize_rows(fp, "zscore")
    bipolar = 2.0 * binary.astype(np.float64) - 1.0
    mse = float(np.mean((zscored - bipolar) ** 2))
    ones_fraction = float(binary.astype(np.float64).mean())
    return mse, ones_fraction
