"""Quantization-aware iterative learning (paper Sec. III-C).

Each epoch proceeds in the four steps of the paper:

1. *Dot similarity*: every training hypervector is scored against the
   **binary** AM (the memory that will actually be deployed in the IMC
   array), and only mispredicted samples trigger updates.
2. *Update-target selection*: the update target on the wrong side is the
   mispredicted class vector with the overall highest similarity (Eq. 4),
   i.e. exactly the AM row that won the associative search; on the correct
   side it is the most similar row *within the true class* (Eq. 5), so each
   sample reinforces the centroid that already best represents it.
3. *Iterative learning*: the Eq. (6) updates ``C += alpha * H`` /
   ``C -= alpha * H`` are applied to the floating-point shadow memory.
4. *Binary AM update*: the FP memory is row-normalized (so no centroid of a
   class dominates its siblings) and re-binarized with the mean-threshold
   quantizer; the refreshed binary memory is what the next epoch's
   similarities are computed against.

Because every similarity inside one epoch is computed against the same
binary memory, the per-sample loop vectorizes into batched numpy updates
without changing the algorithm's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import TrainingHistory
from repro.core.associative_memory import MultiCentroidAM
from repro.eval.metrics import accuracy


@dataclass
class EpochStats:
    """Telemetry of a single quantization-aware training epoch."""

    epoch: int
    mispredictions: int
    train_accuracy: float
    validation_accuracy: Optional[float] = None


class QuantizationAwareTrainer:
    """Trains a :class:`MultiCentroidAM` with quantization-aware updates.

    Parameters
    ----------
    learning_rate:
        Update step ``alpha`` of Eq. (6).  The paper recommends 0.01--0.1,
        lower for harder datasets and higher for larger ``D`` or ``C``.
    epochs:
        Maximum number of epochs.
    binary_update_interval:
        Refresh the binary memory every this many epochs (1 = every epoch).
    early_stop_patience:
        Stop when the training accuracy has not improved for this many
        consecutive epochs (``None`` disables early stopping).
    keep_best:
        When True (default) the binary memory snapshot with the highest
        training accuracy seen during training is restored at the end, so a
        late oscillation of the iterative updates cannot degrade the
        deployed model below its best epoch.
    shuffle:
        Whether to shuffle the training order each epoch.  Shuffling only
        matters for tie-breaking statistics because updates are accumulated
        per epoch; it is kept for parity with the per-sample formulation.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        epochs: int = 20,
        binary_update_interval: int = 1,
        early_stop_patience: Optional[int] = None,
        keep_best: bool = True,
        shuffle: bool = True,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        if binary_update_interval < 1:
            raise ValueError("binary_update_interval must be >= 1")
        if early_stop_patience is not None and early_stop_patience < 1:
            raise ValueError("early_stop_patience must be >= 1 or None")
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.binary_update_interval = int(binary_update_interval)
        self.early_stop_patience = early_stop_patience
        self.keep_best = bool(keep_best)
        self.shuffle = bool(shuffle)

    # ------------------------------------------------------------------ API
    def train(
        self,
        am: MultiCentroidAM,
        encoded: np.ndarray,
        labels: np.ndarray,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> TrainingHistory:
        """Run quantization-aware iterative learning on ``am`` in place.

        Parameters
        ----------
        am:
            The multi-centroid AM to train (modified in place).
        encoded:
            ``(n, D)`` binary encoded training hypervectors.
        labels:
            ``(n,)`` integer training labels.
        validation:
            Optional ``(encoded, labels)`` pair evaluated after every epoch.
        rng:
            Generator used only for the optional per-epoch shuffling.
        """
        queries = np.asarray(encoded, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if queries.ndim != 2:
            raise ValueError("encoded must be a 2-D array")
        if queries.shape[0] != y.shape[0]:
            raise ValueError("encoded and labels must have the same length")
        if queries.shape[1] != am.dimension:
            raise ValueError(
                f"encoded dimension {queries.shape[1]} does not match the AM "
                f"dimension {am.dimension}"
            )
        generator = rng if rng is not None else np.random.default_rng()

        history = TrainingHistory()
        history.initial_accuracy = accuracy(am.predict(queries), y)

        # Precompute the per-sample mask of "my true class's columns".
        class_mask = am.column_classes[None, :] == y[:, None]  # (n, C)

        best_accuracy = history.initial_accuracy
        best_binary = am.binary_memory.copy() if self.keep_best else None
        stale_epochs = 0
        for epoch in range(1, self.epochs + 1):
            order = (
                generator.permutation(queries.shape[0])
                if self.shuffle
                else np.arange(queries.shape[0])
            )
            mispredictions = self._epoch(
                am, queries, y, class_mask, order
            )
            if epoch % self.binary_update_interval == 0:
                am.refresh_binary()

            train_acc = accuracy(am.predict(queries), y)
            history.updates.append(mispredictions)
            history.train_accuracy.append(train_acc)
            if validation is not None:
                val_queries, val_labels = validation
                history.validation_accuracy.append(
                    accuracy(am.predict(np.asarray(val_queries)), np.asarray(val_labels))
                )

            improved = train_acc > best_accuracy + 1e-12
            if improved:
                best_accuracy = train_acc
                if self.keep_best:
                    best_binary = am.binary_memory.copy()
                stale_epochs = 0
            else:
                stale_epochs += 1
            if (
                self.early_stop_patience is not None
                and stale_epochs >= self.early_stop_patience
            ):
                break
            if mispredictions == 0:
                break

        if self.keep_best and best_binary is not None:
            # Deploy the best binary snapshot seen during training; the FP
            # shadow memory keeps its final state for callers that want to
            # continue training.
            am.binary_memory = best_binary
        else:
            # Make sure the binary memory reflects the final FP state even
            # when the loop exited between refresh intervals.
            am.refresh_binary()
        if not history.train_accuracy:
            history.train_accuracy.append(history.initial_accuracy)
        return history

    # ------------------------------------------------------------ internals
    def _epoch(
        self,
        am: MultiCentroidAM,
        queries: np.ndarray,
        labels: np.ndarray,
        class_mask: np.ndarray,
        order: np.ndarray,
    ) -> int:
        """One epoch of steps 1--3; returns the number of mispredictions."""
        scores = np.atleast_2d(am.scores(queries))  # (n, C)

        # Step 1-2: winners and per-sample true-class targets.
        predicted_columns = np.argmax(scores, axis=1)
        predicted_classes = am.column_classes[predicted_columns]
        masked_scores = np.where(class_mask, scores, -np.inf)
        true_target_columns = np.argmax(masked_scores, axis=1)

        wrong = np.flatnonzero(predicted_classes != labels)
        if wrong.size == 0:
            return 0
        # The traversal order only changes the order of accumulation, which
        # is associative; keep it for parity with the per-sample description.
        wrong = order[np.isin(order, wrong)]

        # Step 3: accumulate Eq. (6) on the FP memory.
        am.apply_updates(
            add_rows=true_target_columns[wrong],
            add_vectors=queries[wrong],
            subtract_rows=predicted_columns[wrong],
            subtract_vectors=queries[wrong],
            learning_rate=self.learning_rate,
        )
        return int(wrong.size)
