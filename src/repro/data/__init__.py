"""Dataset containers, loaders and synthetic workload generators.

The paper evaluates on MNIST, Fashion-MNIST and ISOLET.  This reproduction
runs entirely offline, so :func:`repro.data.load_dataset` serves
deterministic synthetic datasets that mirror the shape and the *structure*
of those workloads (feature count, class count, per-class sample budget and
intra-class multi-modality); see ``DESIGN.md`` for the substitution
rationale.  If the real datasets are placed under a data directory in the
simple ``.npz`` format documented in :mod:`repro.data.datasets`, they are
picked up automatically.
"""

from repro.data.datasets import (
    Dataset,
    DatasetSplits,
    DATASET_PROFILES,
    DatasetProfile,
    load_dataset,
    available_datasets,
)
from repro.data.synthetic import (
    SyntheticSpec,
    make_multimodal_classification,
    make_synthetic_dataset,
)
from repro.data.preprocessing import (
    minmax_normalize,
    standardize,
    train_test_split,
    stratified_subsample,
)

__all__ = [
    "Dataset",
    "DatasetSplits",
    "DATASET_PROFILES",
    "DatasetProfile",
    "load_dataset",
    "available_datasets",
    "SyntheticSpec",
    "make_multimodal_classification",
    "make_synthetic_dataset",
    "minmax_normalize",
    "standardize",
    "train_test_split",
    "stratified_subsample",
]
