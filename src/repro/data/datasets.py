"""Dataset container and named dataset loaders.

The paper's three evaluation workloads are exposed here by name:

``"mnist"``
    784 features, 10 classes, ~6000 training samples per class.
``"fmnist"``
    784 features, 10 classes, ~6000 training samples per class.
``"isolet"``
    617 features, 26 classes, ~240 training samples per class (the small
    per-class budget is what drives the column-count overfitting effect the
    paper reports in Fig. 4).

Because the repository must run offline, :func:`load_dataset` generates a
synthetic surrogate with the same structural profile by default (see
``DESIGN.md``).  If a file ``<data_dir>/<name>.npz`` exists with arrays
``train_x, train_y, test_x, test_y`` it is loaded instead, so dropping in
the real datasets transparently upgrades every benchmark.

A ``scale`` parameter shrinks the per-class sample budget proportionally so
that the full benchmark suite completes in minutes on a laptop; the feature
and class counts are never scaled because the memory model (Table I) and IMC
mapping (Table II) depend on them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.data.synthetic import SyntheticSpec, make_multimodal_classification
from repro.hdc.hypervector import _as_generator


@dataclass
class Dataset:
    """A supervised classification dataset with a train and test split.

    Attributes
    ----------
    name:
        Dataset identifier (``"mnist"``, ``"fmnist"``, ``"isolet"`` or a
        custom name).
    train_features / test_features:
        ``(n, f)`` float arrays with values normalized into ``[0, 1]``.
    train_labels / test_labels:
        ``(n,)`` integer class labels in ``[0, num_classes)``.
    synthetic:
        True when the data came from the synthetic generator rather than a
        real dataset file.
    """

    name: str
    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray
    synthetic: bool = True

    def __post_init__(self) -> None:
        self.train_features = np.asarray(self.train_features, dtype=np.float64)
        self.test_features = np.asarray(self.test_features, dtype=np.float64)
        self.train_labels = np.asarray(self.train_labels, dtype=np.int64)
        self.test_labels = np.asarray(self.test_labels, dtype=np.int64)
        if self.train_features.ndim != 2 or self.test_features.ndim != 2:
            raise ValueError("features must be 2-D arrays")
        if self.train_features.shape[0] != self.train_labels.shape[0]:
            raise ValueError("train features/labels length mismatch")
        if self.test_features.shape[0] != self.test_labels.shape[0]:
            raise ValueError("test features/labels length mismatch")
        if self.train_features.shape[1] != self.test_features.shape[1]:
            raise ValueError("train/test feature dimensionality mismatch")

    @property
    def num_features(self) -> int:
        return int(self.train_features.shape[1])

    @property
    def num_classes(self) -> int:
        labels = np.concatenate([self.train_labels, self.test_labels])
        return int(labels.max()) + 1

    @property
    def num_train(self) -> int:
        return int(self.train_features.shape[0])

    @property
    def num_test(self) -> int:
        return int(self.test_features.shape[0])

    def class_counts(self, split: str = "train") -> np.ndarray:
        """Per-class sample counts for the requested split."""
        labels = self.train_labels if split == "train" else self.test_labels
        return np.bincount(labels, minlength=self.num_classes)

    def summary(self) -> Dict[str, Union[str, int, bool]]:
        """Compact description used by example scripts and reports."""
        return {
            "name": self.name,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "num_train": self.num_train,
            "num_test": self.num_test,
            "synthetic": self.synthetic,
        }


@dataclass
class DatasetSplits:
    """Convenience bundle of the arrays of a :class:`Dataset`."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "DatasetSplits":
        return cls(
            dataset.train_features,
            dataset.train_labels,
            dataset.test_features,
            dataset.test_labels,
        )


@dataclass(frozen=True)
class DatasetProfile:
    """Structural profile of one of the paper's evaluation datasets.

    The profile records the quantities the paper's analysis depends on
    (feature count, class count, per-class sample budget) plus the synthetic
    generator parameters used to mimic the dataset's difficulty.
    """

    name: str
    num_features: int
    num_classes: int
    train_per_class: int
    test_per_class: int
    modes_per_class: int
    latent_dim: int
    class_separation: float
    mode_spread: float
    noise_scale: float

    def spec(self, scale: float = 1.0) -> SyntheticSpec:
        """Build the synthetic generator spec, optionally scaling sample counts."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        train = max(self.modes_per_class * 4, int(round(self.train_per_class * scale)))
        test = max(10, int(round(self.test_per_class * scale)))
        return SyntheticSpec(
            num_classes=self.num_classes,
            num_features=self.num_features,
            train_per_class=train,
            test_per_class=test,
            modes_per_class=self.modes_per_class,
            latent_dim=self.latent_dim,
            class_separation=self.class_separation,
            mode_spread=self.mode_spread,
            noise_scale=self.noise_scale,
        )


#: Structural profiles of the paper's three evaluation datasets.  Per-class
#: training budgets match the paper's description (~6000 for MNIST/FMNIST,
#: ~240 for ISOLET); the default ``scale`` used by benchmarks shrinks them.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "mnist": DatasetProfile(
        name="mnist",
        num_features=784,
        num_classes=10,
        train_per_class=6000,
        test_per_class=1000,
        modes_per_class=6,
        latent_dim=24,
        class_separation=2.5,
        mode_spread=1.8,
        noise_scale=0.50,
    ),
    "fmnist": DatasetProfile(
        name="fmnist",
        num_features=784,
        num_classes=10,
        train_per_class=6000,
        test_per_class=1000,
        modes_per_class=6,
        latent_dim=24,
        class_separation=2.2,
        mode_spread=2.0,
        noise_scale=0.60,
    ),
    "isolet": DatasetProfile(
        name="isolet",
        num_features=617,
        num_classes=26,
        train_per_class=240,
        test_per_class=60,
        modes_per_class=3,
        latent_dim=20,
        class_separation=2.8,
        mode_spread=1.2,
        noise_scale=0.45,
    ),
}


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(sorted(DATASET_PROFILES))


def _load_npz(path: str, name: str) -> Dataset:
    """Load a real dataset from ``<path>`` in the documented npz layout."""
    with np.load(path) as archive:
        required = ("train_x", "train_y", "test_x", "test_y")
        missing = [key for key in required if key not in archive]
        if missing:
            raise ValueError(f"{path} is missing arrays: {missing}")
        train_x = archive["train_x"].astype(np.float64)
        test_x = archive["test_x"].astype(np.float64)
        # Normalize into [0, 1] so the encoders can assume a fixed range.
        high = max(train_x.max(), test_x.max())
        if high > 1.0:
            train_x = train_x / high
            test_x = test_x / high
        return Dataset(
            name=name,
            train_features=train_x,
            train_labels=archive["train_y"].astype(np.int64),
            test_features=test_x,
            test_labels=archive["test_y"].astype(np.int64),
            synthetic=False,
        )


def load_dataset(
    name: str,
    scale: float = 1.0,
    rng: Optional[Union[int, np.random.Generator]] = None,
    data_dir: Optional[str] = None,
) -> Dataset:
    """Load one of the paper's evaluation datasets (or its synthetic surrogate).

    Parameters
    ----------
    name:
        ``"mnist"``, ``"fmnist"`` or ``"isolet"`` (case-insensitive).
    scale:
        Fraction of the paper-scale per-class sample budget to generate when
        falling back to the synthetic surrogate.  ``1.0`` reproduces the
        paper-scale sample counts; benchmarks default to much smaller values
        so the suite runs quickly.  Ignored when a real ``.npz`` is found.
    rng:
        Seed or generator for the synthetic fallback.  A fixed default seed
        derived from the dataset name is used when omitted so repeated calls
        return identical data.
    data_dir:
        Directory searched for ``<name>.npz``; defaults to the
        ``REPRO_DATA_DIR`` environment variable or ``./data``.
    """
    key = name.lower()
    if key not in DATASET_PROFILES:
        raise ValueError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        )
    directory = data_dir or os.environ.get("REPRO_DATA_DIR", "data")
    npz_path = os.path.join(directory, f"{key}.npz")
    if os.path.isfile(npz_path):
        return _load_npz(npz_path, key)

    profile = DATASET_PROFILES[key]
    if rng is None:
        # Stable per-dataset default seed so callers get identical surrogates.
        rng = abs(hash(key)) % (2**31)
        rng = {"mnist": 1001, "fmnist": 2002, "isolet": 3003}[key]
    gen = _as_generator(rng)
    spec = profile.spec(scale=scale)
    train_x, train_y, test_x, test_y = make_multimodal_classification(spec, gen)
    return Dataset(
        name=key,
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
        synthetic=True,
    )
