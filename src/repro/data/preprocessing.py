"""Feature preprocessing and split utilities.

Small, dependency-free helpers shared by the examples, the evaluation
harness and the tests.  All routines are pure functions of their inputs (and
an explicit RNG where randomness is involved).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.hdc.hypervector import _as_generator


def minmax_normalize(
    features: np.ndarray,
    reference: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scale features into ``[0, 1]`` per column.

    Parameters
    ----------
    features:
        ``(n, f)`` array to scale.
    reference:
        Optional array whose per-column min/max define the scaling (use the
        training split here to avoid test-set leakage).  Defaults to
        ``features`` itself.
    """
    arr = np.asarray(features, dtype=np.float64)
    ref = arr if reference is None else np.asarray(reference, dtype=np.float64)
    low = ref.min(axis=0)
    high = ref.max(axis=0)
    span = np.where(high > low, high - low, 1.0)
    return np.clip((arr - low) / span, 0.0, 1.0)


def standardize(
    features: np.ndarray,
    reference: Optional[np.ndarray] = None,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Zero-mean, unit-variance scaling per column."""
    arr = np.asarray(features, dtype=np.float64)
    ref = arr if reference is None else np.asarray(reference, dtype=np.float64)
    mean = ref.mean(axis=0)
    std = ref.std(axis=0)
    std = np.where(std > epsilon, std, 1.0)
    return (arr - mean) / std


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    rng: Optional[Union[int, np.random.Generator]] = None,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a dataset into train and test partitions.

    With ``stratify=True`` (default) the class proportions of ``labels`` are
    preserved in both partitions, which matters for the small-sample ISOLET
    profile.
    """
    x = np.asarray(features)
    y = np.asarray(labels)
    if x.shape[0] != y.shape[0]:
        raise ValueError("features and labels must have the same length")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    gen = _as_generator(rng)

    if not stratify:
        order = gen.permutation(x.shape[0])
        cut = int(round(x.shape[0] * (1.0 - test_fraction)))
        train_idx, test_idx = order[:cut], order[cut:]
    else:
        train_parts = []
        test_parts = []
        for class_label in np.unique(y):
            members = np.flatnonzero(y == class_label)
            members = gen.permutation(members)
            cut = int(round(members.size * (1.0 - test_fraction)))
            cut = min(max(cut, 1), members.size - 1) if members.size > 1 else members.size
            train_parts.append(members[:cut])
            test_parts.append(members[cut:])
        train_idx = gen.permutation(np.concatenate(train_parts))
        test_idx = gen.permutation(np.concatenate(test_parts)) if test_parts else np.array([], dtype=np.int64)
        test_idx = test_idx.astype(np.int64)

    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def stratified_subsample(
    features: np.ndarray,
    labels: np.ndarray,
    per_class: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw up to ``per_class`` samples from every class, without replacement.

    Used to cap benchmark runtimes while keeping every class represented.
    """
    x = np.asarray(features)
    y = np.asarray(labels)
    if per_class <= 0:
        raise ValueError(f"per_class must be positive, got {per_class}")
    gen = _as_generator(rng)
    keep = []
    for class_label in np.unique(y):
        members = np.flatnonzero(y == class_label)
        members = gen.permutation(members)
        keep.append(members[:per_class])
    order = gen.permutation(np.concatenate(keep))
    return x[order], y[order]
