"""Synthetic multi-modal classification workload generators.

The evaluation datasets of the paper (MNIST, FMNIST, ISOLET) are not
shippable offline, so the benchmarks run on synthetic surrogates produced
here.  The generators are designed around the property the paper's
contribution exploits: *classes are multi-modal in feature space*, i.e. a
single prototype per class under-fits while a handful of per-class centroids
captures the class well.  Each synthetic class is therefore a mixture of
several Gaussian "modes" living on a low-dimensional latent manifold that is
randomly embedded into the full feature space, which also gives the data the
strong feature correlations image/speech data exhibit.

Determinism: every function takes a seed (or generator) and the same seed
always produces bit-identical data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.hdc.hypervector import _as_generator


@dataclass(frozen=True)
class SyntheticSpec:
    """Specification of a synthetic multi-modal classification dataset.

    Attributes
    ----------
    num_classes:
        Number of classes ``k``.
    num_features:
        Feature dimensionality ``f`` of the generated samples.
    train_per_class / test_per_class:
        Samples generated per class for the train and test splits.
    modes_per_class:
        Number of Gaussian modes composing each class.  Values above 1 make
        the workload favour multi-centroid associative memories.
    latent_dim:
        Dimensionality of the latent manifold the modes live on before the
        random embedding into ``num_features`` dimensions.
    class_separation:
        Distance scale between mode centers in latent space (relative to the
        unit within-mode standard deviation).  Larger values make the task
        easier.
    mode_spread:
        Distance scale between the modes of one class in ``"compact"``
        assignment mode, relative to ``class_separation``.
    noise_scale:
        Standard deviation of the isotropic observation noise added in the
        full feature space.
    mode_assignment:
        ``"interleaved"`` (default): all ``k * modes_per_class`` mode
        centers are drawn from one common pool and dealt out to classes at
        random, so a class is a union of *distant* clusters interleaved with
        other classes' clusters -- the regime where a single prototype per
        class underfits and a multi-centroid AM wins (the paper's premise).
        ``"compact"``: each class has one center and its modes are small
        offsets around it, giving nearly unimodal, linearly separable
        classes.
    """

    num_classes: int = 10
    num_features: int = 64
    train_per_class: int = 100
    test_per_class: int = 30
    modes_per_class: int = 3
    latent_dim: int = 16
    class_separation: float = 4.0
    mode_spread: float = 1.6
    noise_scale: float = 0.25
    mode_assignment: str = "interleaved"

    def __post_init__(self) -> None:
        if self.mode_assignment not in ("interleaved", "compact"):
            raise ValueError(
                "mode_assignment must be 'interleaved' or 'compact', "
                f"got {self.mode_assignment!r}"
            )
        for name in (
            "num_classes",
            "num_features",
            "train_per_class",
            "test_per_class",
            "modes_per_class",
            "latent_dim",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("class_separation", "mode_spread", "noise_scale"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


def _sample_modes(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw per-class mode centers in latent space.

    Returns ``mode_centers`` with shape ``(k, modes_per_class, latent_dim)``.
    In ``"interleaved"`` mode the centers of all classes come from a single
    pool and are dealt out at random (classes are unions of distant
    clusters); in ``"compact"`` mode each class has one center with small
    per-mode offsets.
    """
    if spec.mode_assignment == "interleaved":
        total_modes = spec.num_classes * spec.modes_per_class
        pool = rng.normal(
            0.0, spec.class_separation, size=(total_modes, spec.latent_dim)
        )
        order = rng.permutation(total_modes)
        return pool[order].reshape(
            spec.num_classes, spec.modes_per_class, spec.latent_dim
        )
    class_centers = rng.normal(
        0.0, spec.class_separation, size=(spec.num_classes, spec.latent_dim)
    )
    mode_offsets = rng.normal(
        0.0,
        spec.mode_spread,
        size=(spec.num_classes, spec.modes_per_class, spec.latent_dim),
    )
    return class_centers[:, None, :] + mode_offsets


def _generate_split(
    spec: SyntheticSpec,
    mode_centers: np.ndarray,
    embedding: np.ndarray,
    offset: np.ndarray,
    samples_per_class: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate one split by sampling modes, embedding, and adding noise."""
    features = np.empty(
        (spec.num_classes * samples_per_class, spec.num_features), dtype=np.float64
    )
    labels = np.empty(spec.num_classes * samples_per_class, dtype=np.int64)
    row = 0
    for class_index in range(spec.num_classes):
        modes = rng.integers(0, spec.modes_per_class, size=samples_per_class)
        latent = mode_centers[class_index, modes] + rng.normal(
            0.0, 1.0, size=(samples_per_class, spec.latent_dim)
        )
        observed = latent @ embedding + offset
        observed += rng.normal(0.0, spec.noise_scale, size=observed.shape)
        features[row : row + samples_per_class] = observed
        labels[row : row + samples_per_class] = class_index
        row += samples_per_class
    return features, labels


def make_multimodal_classification(
    spec: SyntheticSpec,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a multi-modal classification dataset from a spec.

    Returns
    -------
    tuple
        ``(train_x, train_y, test_x, test_y)``.  Features are scaled into
        ``[0, 1]`` per feature (min-max over the union of both splits) so
        downstream encoders can assume a normalized value range.
    """
    gen = _as_generator(rng)
    mode_centers = _sample_modes(spec, gen)
    # Random orthogonal-ish embedding of the latent manifold into feature
    # space; correlated columns mimic the pixel correlations of image data.
    embedding = gen.normal(
        0.0, 1.0 / np.sqrt(spec.latent_dim), size=(spec.latent_dim, spec.num_features)
    )
    offset = gen.normal(0.0, 0.5, size=spec.num_features)
    train_x, train_y = _generate_split(
        spec, mode_centers, embedding, offset, spec.train_per_class, gen
    )
    test_x, test_y = _generate_split(
        spec, mode_centers, embedding, offset, spec.test_per_class, gen
    )

    # Joint min-max normalization into [0, 1].
    both = np.vstack([train_x, test_x])
    low = both.min(axis=0)
    high = both.max(axis=0)
    span = np.where(high > low, high - low, 1.0)
    train_x = (train_x - low) / span
    test_x = (test_x - low) / span

    # Shuffle within each split so class blocks are not contiguous.
    train_order = gen.permutation(train_x.shape[0])
    test_order = gen.permutation(test_x.shape[0])
    return (
        train_x[train_order],
        train_y[train_order],
        test_x[test_order],
        test_y[test_order],
    )


def make_synthetic_dataset(
    name: str,
    spec: SyntheticSpec,
    rng: Optional[Union[int, np.random.Generator]] = None,
):
    """Build a named :class:`repro.data.datasets.Dataset` from a spec."""
    from repro.data.datasets import Dataset  # local import to avoid a cycle

    train_x, train_y, test_x, test_y = make_multimodal_classification(spec, rng)
    return Dataset(
        name=name,
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
        synthetic=True,
    )
