"""Evaluation harness: metrics, experiment runners and report formatting."""

from repro.eval.metrics import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    misclassification_counts,
    misclassification_rates,
)
from repro.eval.experiments import (
    ExperimentRecord,
    evaluate_classifier,
    accuracy_memory_curve,
    grid_sweep,
    initialization_comparison,
    cluster_ratio_sweep,
)
from repro.eval.reporting import (
    format_table,
    normalize_series,
    format_accuracy_memory,
    format_heatmap,
)
from repro.eval.statistics import (
    TrialSummary,
    summarize_trials,
    paired_bootstrap,
    run_trials,
)

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "misclassification_counts",
    "misclassification_rates",
    "ExperimentRecord",
    "evaluate_classifier",
    "accuracy_memory_curve",
    "grid_sweep",
    "initialization_comparison",
    "cluster_ratio_sweep",
    "format_table",
    "normalize_series",
    "format_accuracy_memory",
    "format_heatmap",
    "TrialSummary",
    "summarize_trials",
    "paired_bootstrap",
    "run_trials",
]
