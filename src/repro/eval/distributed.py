"""Distributed elastic sweeps over a shared store directory.

The PR 3 sweep engine is process-pool-on-one-host; this module scales it
out.  The append-only :class:`~repro.eval.store.ResultStore` keyed by
config hashes is already a work ledger -- any worker can look at it and
know exactly which cells remain -- so all the distributed layer adds is
*mutual exclusion with crash recovery*: *who* is currently computing a
missing cell.  That is done with lease files on the shared directory (a
POSIX filesystem both workers can see: one machine's tmpdir for tests
and CI, NFS or similar for real multi-host pools):

* **claim** -- ``O_CREAT | O_EXCL`` of ``<key>.lease``: the kernel
  guarantees exactly one creator, no server or database required.  The
  lease body records worker id, hostname, pid and claim time; liveness
  is the file's **mtime**.
* **renew** -- a heartbeat thread touches every held lease (``os.utime``)
  every ``ttl/4`` seconds.  Renewal never rewrites the body, so a
  reader can never observe a torn lease from a *live* owner.
* **expire** -- a lease whose mtime is older than the TTL belongs to a
  crashed (or partitioned) worker.  Unparsable/empty lease bodies --
  a writer killed mid-create -- are treated as expired immediately.
* **reclaim** -- takeover is ``os.rename`` of the stale lease to a
  unique tombstone: rename is atomic, so of N racing reclaimers exactly
  one wins (the rest get ``FileNotFoundError``), and the winner then
  re-runs the ordinary ``O_EXCL`` claim.
* **release** -- the result is appended to the shared store *first*,
  then the lease is unlinked.  A crash between the two is safe: the next
  claimant re-checks the store after claiming and releases immediately.

Exactly-once per cell follows for live workers: a cell's result can only
be computed under a held lease, leases have a single owner between claim
and expiry, and a completed cell is never claimed again (claimants check
``completed_keys()`` before and after claiming).  A worker that stalls
past its TTL without renewing can be raced by a reclaimer -- the
classic lease caveat -- but config-hash dedup in the store makes a
double-completion harmless (last write wins with identical deterministic
metrics) and *observable* in the events log.

Every claim/completion/reclaim is appended to ``events.jsonl`` next to
the store, which is how ``repro sweep status`` attributes work per
worker.  The wall clock is injectable (``clock=``) so the Hypothesis
property tests drive the whole protocol over a simulated clock.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.eval.store import ResultRecord, ResultStore
from repro.eval.sweep import SweepError, SweepSpec, _cell_label, execute_job

#: Default lease time-to-live.  A worker that misses every heartbeat for
#: this long is presumed dead and its cell is reclaimed.  Heartbeats fire
#: every ``ttl/4``, so transient scheduling hiccups do not forfeit cells.
DEFAULT_TTL_S = 30.0

#: File name of the shared result store inside a ``--store-dir``.
RESULTS_NAME = "results.jsonl"

#: Subdirectory of the store dir holding one ``<key>.lease`` per claim.
LEASES_NAME = "leases"

#: Append-only per-worker attribution log next to the results file.
EVENTS_NAME = "events.jsonl"


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique per live worker, readable in status."""
    return f"{socket.gethostname()}-{os.getpid()}"


# --------------------------------------------------------------------------
# Events log (per-worker attribution)
# --------------------------------------------------------------------------
def append_event(path: Union[str, os.PathLike], payload: Dict[str, Any]) -> None:
    """Append one JSON event line with a single ``O_APPEND`` write.

    The log is advisory (attribution and chaos-test observability, never
    correctness), so there is no fsync; the single ``os.write`` of one
    short line keeps concurrent workers' lines from interleaving.
    """
    line = json.dumps(payload, sort_keys=True) + "\n"
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def read_events(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Every parseable event line, in append order (torn tails skipped)."""
    path = Path(path)
    if not path.is_file():
        return []
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
    return events


# --------------------------------------------------------------------------
# Leases
# --------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LeaseState:
    """One lease file as observed on disk."""

    key: str
    renewed_unix: float  #: mtime -- the heartbeat timestamp
    worker: Optional[str]  #: ``None`` when the body is torn/unparsable
    hostname: Optional[str] = None
    pid: Optional[int] = None
    claimed_unix: Optional[float] = None
    token: Optional[str] = None  #: unique per claim -- ownership witness

    @property
    def torn(self) -> bool:
        return self.worker is None


class LeaseDir:
    """Lease-file protocol over one shared directory.

    Parameters
    ----------
    root:
        Directory holding the ``<key>.lease`` files (created on demand).
    worker_id:
        Identity written into every claim this instance makes.
    ttl_s:
        Seconds after the last heartbeat at which a lease expires.
    clock:
        Wall-clock source.  Injectable so property tests can replay
        claim/renew/expire interleavings over a simulated clock; lease
        mtimes are always written from this clock (``os.utime`` with
        explicit times), never from the filesystem's idea of "now".
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        worker_id: str,
        ttl_s: float = DEFAULT_TTL_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl_s <= 0:
            raise SweepError(f"lease ttl must be positive, got {ttl_s}")
        self.root = Path(root)
        self.worker_id = str(worker_id)
        self.ttl_s = float(ttl_s)
        self.clock = clock
        self._lock = threading.Lock()
        #: ``key -> (path, token)``.  The token (unique per claim, written
        #: into the lease body) pins *our* lease file: after a reclaim the
        #: path holds the thief's file with a different token, which is
        #: how renew/release notice the loss instead of touching it.
        #: (Inode comparison is not enough -- common filesystems reuse
        #: inode numbers immediately after an unlink.)
        self._held: Dict[str, tuple] = {}
        self._tombstones = 0

    # ------------------------------------------------------------------ paths
    def lease_path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    @property
    def held_keys(self) -> List[str]:
        with self._lock:
            return sorted(self._held)

    # ------------------------------------------------------------------ claim
    def try_claim(self, key: str) -> Optional[str]:
        """Attempt to become ``key``'s owner.

        Returns ``"claimed"`` (fresh cell), ``"reclaimed"`` (took over an
        expired/torn lease) or ``None`` (someone else owns it, or we lost
        a race).  Never blocks.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if self._create(key):
            return "claimed"
        state = self.read(key)
        if state is None:
            # Owner released between our failed create and the read; the
            # cell is most likely completed -- the caller re-checks the
            # store and retries next pass otherwise.
            return None
        if not self.is_expired(state):
            return None
        # Takeover: atomically move the stale lease aside.  Exactly one of
        # N racing reclaimers wins the rename; the losers see ENOENT.
        path = self.lease_path(key)
        with self._lock:
            self._tombstones += 1
            count = self._tombstones
        tombstone = path.with_name(
            f"{path.name}.stale.{self.worker_id}.{os.getpid()}.{count}"
        )
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return None  # lost the reclaim race (or the owner released)
        try:
            os.unlink(tombstone)
        except FileNotFoundError:  # pragma: no cover - nothing else removes it
            pass
        if self._create(key):
            return "reclaimed"
        return None  # a third worker claimed between our rename and create

    def _create(self, key: str) -> bool:
        path = self.lease_path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        now = float(self.clock())
        token = os.urandom(8).hex()
        body = json.dumps(
            {
                "worker": self.worker_id,
                "hostname": socket.gethostname(),
                "pid": os.getpid(),
                "claimed_unix": now,
                "token": token,
            },
            sort_keys=True,
        )
        try:
            os.write(fd, body.encode("utf-8"))
        finally:
            os.close(fd)
        os.utime(path, (now, now))
        with self._lock:
            self._held[key] = (path, token)
        return True

    # ------------------------------------------------------------------- read
    def read(self, key: str) -> Optional[LeaseState]:
        """The on-disk state of ``key``'s lease (``None`` when absent)."""
        path = self.lease_path(key)
        try:
            raw = path.read_bytes()
            mtime = path.stat().st_mtime
        except (FileNotFoundError, NotADirectoryError):
            return None
        try:
            body = json.loads(raw.decode("utf-8"))
            worker = str(body["worker"])
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
            # Torn/empty claim record: the creator died mid-write.  Treated
            # as expired regardless of mtime (pinned by the property tests).
            return LeaseState(key=key, renewed_unix=float(mtime), worker=None)
        return LeaseState(
            key=key,
            renewed_unix=float(mtime),
            worker=worker,
            hostname=body.get("hostname"),
            pid=body.get("pid"),
            claimed_unix=body.get("claimed_unix"),
            token=body.get("token"),
        )

    def is_expired(self, state: LeaseState) -> bool:
        """Torn leases are expired immediately; live ones after the TTL."""
        if state.torn:
            return True
        return (float(self.clock()) - state.renewed_unix) > self.ttl_s

    def scan(self) -> List[LeaseState]:
        """Every lease currently on disk (races tolerated, best-effort)."""
        if not self.root.is_dir():
            return []
        states = []
        for path in sorted(self.root.glob("*.lease")):
            state = self.read(path.name[: -len(".lease")])
            if state is not None:
                states.append(state)
        return states

    # ---------------------------------------------------------------- renew
    def renew(self) -> List[str]:
        """Heartbeat every held lease; returns keys lost to reclaimers.

        Renewal is ``os.utime`` only -- the body is never rewritten, so a
        concurrent reader can never see a torn lease from a live owner.
        A missing file, or a file carrying a different claim token (a
        reclaimer raced us after a stall and re-created the lease as its
        own), means the key is lost: dropped from the held set and
        reported, and the usurper's file is left untouched.
        """
        now = float(self.clock())
        lost: List[str] = []
        with self._lock:
            held = dict(self._held)
        for key, (path, token) in held.items():
            state = self.read(key)
            if state is None or state.token != token:
                lost.append(key)
                with self._lock:
                    self._held.pop(key, None)
                continue
            try:
                os.utime(path, (now, now))
            except FileNotFoundError:
                lost.append(key)
                with self._lock:
                    self._held.pop(key, None)
        return lost

    # --------------------------------------------------------------- release
    def release(self, key: str) -> None:
        """Drop ownership of ``key`` (missing file already means released).

        Only *our* lease file (matched by claim token) is unlinked: if a
        reclaimer took over after we stalled past the TTL, the path now
        holds their live lease and must survive our belated release.
        """
        with self._lock:
            held = self._held.pop(key, None)
        if held is None:
            return
        path, token = held
        state = self.read(key)
        if state is None or state.token != token:
            return
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    def release_all(self) -> None:
        for key in self.held_keys:
            self.release(key)


# --------------------------------------------------------------------------
# The elastic worker loop
# --------------------------------------------------------------------------
@dataclasses.dataclass
class DistributedRunResult:
    """Accounting of one worker's participation in an elastic sweep."""

    worker_id: str
    total: int
    completed: int
    skipped: int
    reclaimed: int
    failed: List[Dict[str, str]]
    records: List[ResultRecord]
    grid_complete: bool

    @property
    def ok(self) -> bool:
        return not self.failed and self.grid_complete

    def summary(self) -> str:
        state = "complete" if self.grid_complete else "INCOMPLETE"
        return (
            f"worker {self.worker_id}: grid {state}, {self.total} cell(s), "
            f"{self.completed} executed here ({self.reclaimed} reclaimed), "
            f"{self.skipped} already in store, {len(self.failed)} failed"
        )


def store_paths(store_dir: Union[str, os.PathLike]) -> Dict[str, Path]:
    """Canonical layout of a shared sweep store directory."""
    root = Path(store_dir)
    return {
        "root": root,
        "results": root / RESULTS_NAME,
        "leases": root / LEASES_NAME,
        "events": root / EVENTS_NAME,
    }


def run_distributed(
    spec: SweepSpec,
    store_dir: Union[str, os.PathLike],
    worker_id: Optional[str] = None,
    ttl_s: float = DEFAULT_TTL_S,
    poll_s: Optional[float] = None,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    clock: Callable[[], float] = time.time,
) -> DistributedRunResult:
    """Join (or start) the elastic pool computing ``spec`` over ``store_dir``.

    The worker repeatedly scans the grid for cells missing from the
    shared store, claims one via the lease protocol, executes it inline,
    appends the result, and releases the lease.  It returns when every
    cell of the grid is in the store (whoever computed it) or, when
    ``max_cells`` is set, after executing that many cells -- so workers
    can join late, die and rejoin at any time, and the union of survivors
    completes the grid.

    ``poll_s`` is the idle rescan interval while other workers hold the
    remaining cells (default ``min(1, ttl/4)``).
    """
    if max_cells is not None and max_cells < 0:
        raise SweepError(f"max_cells must be >= 0, got {max_cells}")
    paths = store_paths(store_dir)
    paths["root"].mkdir(parents=True, exist_ok=True)
    worker = worker_id or default_worker_id()
    store = ResultStore(paths["results"])
    leases = LeaseDir(paths["leases"], worker, ttl_s=ttl_s, clock=clock)
    poll = float(poll_s) if poll_s is not None else min(1.0, ttl_s / 4.0)
    jobs = spec.expand()
    if not jobs:
        raise SweepError(
            "sweep spec expanded to an empty grid (every cell was dropped "
            "as unrealizable -- check model/engine/columns combinations)"
        )

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    def event(name: str, **extra: Any) -> None:
        payload = {"ts": float(clock()), "worker": worker, "event": name}
        payload.update(extra)
        append_event(paths["events"], payload)

    # Heartbeat: renew held leases at ttl/4 so a live worker never expires.
    stop_heartbeat = threading.Event()

    def heartbeat() -> None:
        interval = max(0.05, ttl_s / 4.0)
        while not stop_heartbeat.wait(interval):
            for lost in leases.renew():
                event("lease-lost", key=lost)

    heartbeat_thread = threading.Thread(
        target=heartbeat, name=f"lease-heartbeat-{worker}", daemon=True
    )

    records: List[ResultRecord] = []
    failed: List[Dict[str, str]] = []
    locally_failed: set = set()
    reclaimed = 0
    skipped_initially = len(store.completed_keys() & {job.key for job in jobs})
    event("join", cells=len(jobs))
    note(f"worker {worker}: joined pool over {paths['root']} ({len(jobs)} cell(s))")
    heartbeat_thread.start()
    try:
        while True:
            done = store.completed_keys()
            pending = [
                job
                for job in jobs
                if job.key not in done and job.key not in locally_failed
            ]
            if not pending:
                break
            if max_cells is not None and len(records) >= max_cells:
                break
            progressed = False
            for job in pending:
                if max_cells is not None and len(records) >= max_cells:
                    break
                claim = leases.try_claim(job.key)
                if claim is None:
                    continue
                if claim == "reclaimed":
                    reclaimed += 1
                # Re-check under the lease: the previous owner may have
                # appended the result and crashed before releasing.
                if job.key in store.completed_keys():
                    leases.release(job.key)
                    progressed = True
                    continue
                event(claim, key=job.key)
                note(f"  {claim} {_cell_label(job.config)} [{job.key}]")
                try:
                    outcome = execute_job(job.as_dict())
                    record = store.append(
                        outcome["config"], outcome["metrics"], key=outcome["key"]
                    )
                    records.append(record)
                    event("completed", key=job.key)
                    note(f"  done {_cell_label(job.config)}")
                except Exception as error:  # noqa: BLE001 - cell must not kill worker
                    locally_failed.add(job.key)
                    failed.append(
                        {"key": job.key, "error": f"{type(error).__name__}: {error}"}
                    )
                    event("failed", key=job.key, error=str(error))
                    note(f"  FAILED {_cell_label(job.config)}: {error}")
                finally:
                    leases.release(job.key)
                progressed = True
            if not progressed:
                # Every remaining cell is leased by another live worker:
                # wait for their results to land, or their leases to expire.
                time.sleep(poll)
    finally:
        stop_heartbeat.set()
        heartbeat_thread.join(timeout=5.0)
        leases.release_all()
        remaining = {job.key for job in jobs} - store.completed_keys()
        event("leave", completed=len(records), remaining=len(remaining))
    return DistributedRunResult(
        worker_id=worker,
        total=len(jobs),
        completed=len(records),
        skipped=skipped_initially,
        reclaimed=reclaimed,
        failed=failed,
        records=records,
        grid_complete=not remaining,
    )


# --------------------------------------------------------------------------
# Same-host pools (orchestrate's `distributed:` config, benchmarks, tests)
# --------------------------------------------------------------------------
def _pool_worker_main(
    spec_payload: Dict[str, Any],
    store_dir: str,
    worker_id: str,
    ttl_s: float,
    poll_s: Optional[float],
) -> None:
    """Entry point of one pool subprocess (module-level: picklable)."""
    spec = SweepSpec.from_dict(spec_payload)
    result = run_distributed(
        spec, store_dir, worker_id=worker_id, ttl_s=ttl_s, poll_s=poll_s
    )
    raise SystemExit(0 if result.ok else 1)


def run_distributed_pool(
    spec: SweepSpec,
    store_dir: Union[str, os.PathLike],
    workers: int = 2,
    ttl_s: float = DEFAULT_TTL_S,
    poll_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run ``workers`` elastic subprocess workers over one shared store.

    The same-machine convenience wrapper used by the orchestrate runner's
    ``distributed:`` sweep config and the chaos benchmark: real multi-host
    pools just start ``repro sweep run --distributed`` everywhere instead.
    Success is judged by the *grid*, not the workers -- a worker may die
    (elastic pools tolerate that) as long as the union of survivors
    completed every cell.
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    paths = store_paths(store_dir)
    context = multiprocessing.get_context()
    processes = [
        context.Process(
            target=_pool_worker_main,
            args=(spec.to_dict(), str(paths["root"]), f"pool-{index}", ttl_s, poll_s),
            daemon=False,
        )
        for index in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    if progress is not None:
        exits = [process.exitcode for process in processes]
        progress(f"pool: {workers} worker(s) exited with codes {exits}")
    store = ResultStore(paths["results"])
    done = store.completed_keys()
    missing = [job.key for job in spec.expand() if job.key not in done]
    if missing:
        raise SweepError(
            f"distributed pool finished with {len(missing)} incomplete "
            f"cell(s): {missing[:5]}{'...' if len(missing) > 5 else ''}"
        )
    return {
        "workers": workers,
        "cells": len(spec.expand()),
        "exit_codes": [process.exitcode for process in processes],
        "results": str(paths["results"]),
    }


# --------------------------------------------------------------------------
# Status / attribution
# --------------------------------------------------------------------------
def pool_status(
    store_dir: Union[str, os.PathLike],
    ttl_s: float = DEFAULT_TTL_S,
    clock: Callable[[], float] = time.time,
) -> Dict[str, Any]:
    """Per-worker attribution + live lease view of a shared store dir.

    Aggregated from the events log (claims, reclaims, completions,
    failures; ``expired`` counts a worker's leases that *other* workers
    reclaimed -- i.e. cells it lost by dying or stalling) and a scan of
    the lease directory (currently-held and currently-expired leases).
    """
    paths = store_paths(store_dir)
    events = read_events(paths["events"])
    workers: Dict[str, Dict[str, int]] = {}

    def row(worker: str) -> Dict[str, int]:
        return workers.setdefault(
            worker,
            {"claimed": 0, "reclaimed": 0, "completed": 0, "failed": 0, "expired": 0},
        )

    last_owner: Dict[str, str] = {}
    for entry in events:
        worker = str(entry.get("worker", "?"))
        name = entry.get("event")
        key = entry.get("key")
        if name == "claimed":
            row(worker)["claimed"] += 1
            last_owner[str(key)] = worker
        elif name == "reclaimed":
            row(worker)["reclaimed"] += 1
            previous = last_owner.get(str(key))
            if previous is not None and previous != worker:
                row(previous)["expired"] += 1
            last_owner[str(key)] = worker
        elif name == "completed":
            row(worker)["completed"] += 1
        elif name == "failed":
            row(worker)["failed"] += 1
    scanner = LeaseDir(paths["leases"], worker_id="status", ttl_s=ttl_s, clock=clock)
    active = []
    expired = []
    for state in scanner.scan():
        entry = {
            "key": state.key,
            "worker": state.worker or "<torn>",
            "age_s": max(0.0, float(clock()) - state.renewed_unix),
        }
        (expired if scanner.is_expired(state) else active).append(entry)
    store = ResultStore(paths["results"])
    return {
        "results": str(paths["results"]),
        "completed_cells": len(store.completed_keys()),
        "workers": {worker: workers[worker] for worker in sorted(workers)},
        "active_leases": active,
        "expired_leases": expired,
    }
