"""Experiment runners behind the paper's figures.

Every runner is a pure function of (dataset, configuration, seed) so the
benchmarks under ``benchmarks/`` are thin wrappers that pick the paper's
parameter points and print the resulting rows/series.

* :func:`evaluate_classifier` -- train/evaluate one model, one record.
* :func:`accuracy_memory_curve` -- Fig. 3: accuracy vs. memory footprint
  across model families and sizes.
* :func:`grid_sweep` -- Fig. 4: MEMHD accuracy heatmap over dimensions and
  columns.
* :func:`initialization_comparison` -- Fig. 5: clustering vs. random
  initialization accuracy-per-epoch curves.
* :func:`cluster_ratio_sweep` -- Fig. 6: accuracy vs. the initial cluster
  ratio ``R``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from typing import TYPE_CHECKING

from repro.data.datasets import Dataset
from repro.hdc.hypervector import _as_generator

if TYPE_CHECKING:  # pragma: no cover - import-time only for type checkers
    from repro.baselines.base import HDCClassifier, TrainingHistory
    from repro.core.config import MEMHDConfig


#: Signature of a model factory used by the sweep runners: it receives the
#: dataset's feature/class counts and a seed and returns a fresh classifier.
ModelFactory = Callable[[int, int, int], "HDCClassifier"]


@dataclass
class ExperimentRecord:
    """Result of training and evaluating one classifier on one dataset."""

    model: str
    label: str
    dataset: str
    test_accuracy: float
    train_accuracy: float
    memory_kib: float
    am_memory_kib: float
    history: Optional[TrainingHistory] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "label": self.label,
            "dataset": self.dataset,
            "test_accuracy": self.test_accuracy,
            "train_accuracy": self.train_accuracy,
            "memory_kib": self.memory_kib,
            "am_memory_kib": self.am_memory_kib,
            **self.extras,
        }


def evaluate_classifier(
    model: HDCClassifier,
    dataset: Dataset,
    label: Optional[str] = None,
    record_history: bool = True,
) -> ExperimentRecord:
    """Fit ``model`` on the dataset's train split and score the test split."""
    history = model.fit(dataset.train_features, dataset.train_labels)
    test_accuracy = model.score(dataset.test_features, dataset.test_labels)
    train_accuracy = (
        history.final_train_accuracy
        if history.train_accuracy
        else model.score(dataset.train_features, dataset.train_labels)
    )
    report = model.memory_report()
    return ExperimentRecord(
        model=model.name,
        label=label or model.name,
        dataset=dataset.name,
        test_accuracy=test_accuracy,
        train_accuracy=train_accuracy,
        memory_kib=report.total_kib,
        am_memory_kib=report.am_kib,
        history=history if record_history else None,
    )


def accuracy_memory_curve(
    dataset: Dataset,
    factories: Sequence[Tuple[str, ModelFactory]],
    trials: int = 1,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> List[ExperimentRecord]:
    """Fig. 3 runner: one record per (factory, averaged over trials).

    Each factory is called with ``(num_features, num_classes, seed)``; the
    per-trial test accuracies are averaged and the memory footprint is taken
    from the first trial (it is deterministic given the configuration).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    gen = _as_generator(rng)
    records: List[ExperimentRecord] = []
    for label, factory in factories:
        trial_records = []
        for _ in range(trials):
            seed = int(gen.integers(0, 2**31 - 1))
            model = factory(dataset.num_features, dataset.num_classes, seed)
            trial_records.append(
                evaluate_classifier(model, dataset, label=label, record_history=False)
            )
        base = trial_records[0]
        base.test_accuracy = float(
            np.mean([record.test_accuracy for record in trial_records])
        )
        base.train_accuracy = float(
            np.mean([record.train_accuracy for record in trial_records])
        )
        base.extras["trials"] = trials
        base.extras["test_accuracy_std"] = float(
            np.std([record.test_accuracy for record in trial_records])
        )
        records.append(base)
    return records


def grid_sweep(
    dataset: Dataset,
    dimensions: Sequence[int],
    columns: Sequence[int],
    base_config: Optional[MEMHDConfig] = None,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> Dict[Tuple[int, int], float]:
    """Fig. 4 runner: MEMHD test accuracy for every (D, C) grid point.

    Grid points whose column count is smaller than the dataset's class
    count are skipped (they cannot give every class a centroid), matching
    the paper's heatmap which starts at C >= k.
    """
    from repro.core.config import MEMHDConfig
    from repro.core.model import MEMHDModel

    base = base_config or MEMHDConfig()
    gen = _as_generator(rng)
    results: Dict[Tuple[int, int], float] = {}
    for dimension in dimensions:
        for column_count in columns:
            if column_count < dataset.num_classes:
                continue
            config = base.with_updates(dimension=dimension, columns=column_count)
            seed = int(gen.integers(0, 2**31 - 1))
            model = MEMHDModel(
                dataset.num_features, dataset.num_classes, config, rng=seed
            )
            model.fit(dataset.train_features, dataset.train_labels)
            results[(dimension, column_count)] = model.score(
                dataset.test_features, dataset.test_labels
            )
    return results


def initialization_comparison(
    dataset: Dataset,
    config: MEMHDConfig,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> Dict[str, TrainingHistory]:
    """Fig. 5 runner: training curves for clustering vs. random initialization.

    Both runs share the same dimensions, columns, learning rate and epochs;
    only the initialization method differs.  The histories include the
    post-initialization accuracy (``initial_accuracy``) the figure annotates.
    """
    from repro.core.model import MEMHDModel

    gen = _as_generator(rng)
    histories: Dict[str, TrainingHistory] = {}
    for method in ("clustering", "random"):
        seed = int(gen.integers(0, 2**31 - 1))
        model = MEMHDModel(
            dataset.num_features,
            dataset.num_classes,
            config.with_updates(init_method=method),
            rng=seed,
        )
        histories[method] = model.fit(
            dataset.train_features,
            dataset.train_labels,
            validation=(dataset.test_features, dataset.test_labels),
        )
    return histories


def cluster_ratio_sweep(
    dataset: Dataset,
    config: MEMHDConfig,
    ratios: Sequence[float],
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> Dict[float, float]:
    """Fig. 6 runner: test accuracy as a function of the cluster ratio R."""
    from repro.core.model import MEMHDModel

    gen = _as_generator(rng)
    results: Dict[float, float] = {}
    for ratio in ratios:
        seed = int(gen.integers(0, 2**31 - 1))
        model = MEMHDModel(
            dataset.num_features,
            dataset.num_classes,
            config.with_updates(cluster_ratio=float(ratio)),
            rng=seed,
        )
        model.fit(dataset.train_features, dataset.train_labels)
        results[float(ratio)] = model.score(
            dataset.test_features, dataset.test_labels
        )
    return results
