"""Classification metrics.

Only the handful of metrics the paper's evaluation needs are implemented:
top-1 accuracy, the confusion matrix (which also drives MEMHD's cluster
allocation, Sec. III-A-2), per-class accuracy and misclassification rates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Fraction of predictions equal to the ground-truth labels."""
    pred = np.asarray(predicted)
    true = np.asarray(actual)
    if pred.shape != true.shape:
        raise ValueError(
            f"shape mismatch: predicted {pred.shape} vs actual {true.shape}"
        )
    if pred.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(pred == true))


def confusion_matrix(
    predicted: np.ndarray,
    actual: np.ndarray,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Row-indexed-by-truth confusion matrix.

    ``matrix[i, j]`` counts samples whose true class is ``i`` and predicted
    class is ``j``.
    """
    pred = np.asarray(predicted, dtype=np.int64)
    true = np.asarray(actual, dtype=np.int64)
    if pred.shape != true.shape:
        raise ValueError("predicted and actual must have the same shape")
    if pred.size == 0:
        raise ValueError("cannot compute a confusion matrix of empty arrays")
    if np.any(pred < 0) or np.any(true < 0):
        raise ValueError("labels must be non-negative integers")
    if num_classes is None:
        num_classes = int(max(pred.max(), true.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (true, pred), 1)
    return matrix


def per_class_accuracy(
    predicted: np.ndarray,
    actual: np.ndarray,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Recall of each class; classes absent from ``actual`` report NaN."""
    matrix = confusion_matrix(predicted, actual, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    correct = np.diag(matrix).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(totals > 0, correct / totals, np.nan)
    return result


def misclassification_counts(
    predicted: np.ndarray,
    actual: np.ndarray,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Number of misclassified samples per true class.

    This is the quantity MEMHD's cluster-allocation loop ranks classes by:
    classes with more mispredictions receive additional centroids.
    """
    matrix = confusion_matrix(predicted, actual, num_classes)
    return matrix.sum(axis=1) - np.diag(matrix)


def misclassification_rates(
    predicted: np.ndarray,
    actual: np.ndarray,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Fraction of each class's samples that were misclassified (NaN if absent)."""
    matrix = confusion_matrix(predicted, actual, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    wrong = (matrix.sum(axis=1) - np.diag(matrix)).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, wrong / totals, np.nan)
