"""Plain-text report formatting for tables and figures.

The benchmark harness prints its results as aligned ASCII tables (and
simple text heatmaps) so the paper's tables and figure series can be read
straight from the pytest output or the ``*_output.txt`` capture files --
no plotting dependencies required.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of dictionaries as a GitHub-flavoured markdown table.

    The markdown sibling of :func:`format_table`, used by the workflow QA
    reports (``repro report``).  Pipe characters inside cells are escaped
    so arbitrary metric values cannot break the table.
    """
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            text = float_format.format(value)
        else:
            text = str(value)
        return text.replace("|", "\\|")

    lines = [
        "| " + " | ".join(str(column) for column in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(render(row.get(column, "")) for column in columns) + " |"
        )
    return "\n".join(lines)


def normalize_series(values: Sequence[float], peak: float = 100.0) -> List[float]:
    """Scale a series so its maximum equals ``peak`` (Fig. 7 convention)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return []
    maximum = float(arr.max())
    if maximum <= 0:
        raise ValueError("cannot normalize a series whose maximum is not positive")
    return list(arr / maximum * peak)


def format_accuracy_memory(
    records: Iterable,
    title: Optional[str] = None,
) -> str:
    """Fig. 3 style listing: model, size label, memory (KB) and accuracy."""
    rows = []
    for record in records:
        data = record.as_dict() if hasattr(record, "as_dict") else dict(record)
        rows.append(
            {
                "model": data.get("model", "?"),
                "config": data.get("label", data.get("config", "?")),
                "memory_kib": data.get("memory_kib", float("nan")),
                "accuracy_%": 100.0 * float(data.get("test_accuracy", float("nan"))),
            }
        )
    rows.sort(key=lambda row: row["memory_kib"])
    return format_table(rows, title=title, float_format="{:.2f}")


def _record_fields(record) -> Tuple[Dict[str, object], Dict[str, object]]:
    """``(config, metrics)`` of a sweep record (ResultRecord or plain dict)."""
    if hasattr(record, "config") and hasattr(record, "metrics"):
        return dict(record.config), dict(record.metrics)
    data = dict(record)
    return dict(data.get("config", {})), dict(data.get("metrics", {}))


def format_sweep_records(
    records: Iterable,
    metrics: Sequence[str] = ("test_accuracy", "memory_kib", "queries_per_s"),
    title: Optional[str] = None,
) -> str:
    """Sweep result listing: one aligned row per completed grid cell.

    Accuracy-like metrics (anything ending in ``accuracy``) are shown as
    percentages; config axes a cell does not carry render blank.
    """
    rows = []
    for record in records:
        config, cell_metrics = _record_fields(record)
        row: Dict[str, object] = {
            "model": config.get("model", "?"),
            "dataset": config.get("dataset", "?"),
            "D": config.get("dimension", ""),
            "C": config.get("columns", ""),
            "engine": config.get("engine") or "-",
        }
        if config.get("bit_flip_probability"):
            row["flip_p"] = config["bit_flip_probability"]
        if config.get("adc_bits") is not None:
            row["adc_bits"] = config["adc_bits"]
        for name in metrics:
            value = cell_metrics.get(name)
            if name.endswith("accuracy"):
                row[f"{name}_%"] = (
                    100.0 * float(value) if value is not None else float("nan")
                )
            else:
                row[name] = value if value is not None else ""
        rows.append(row)
    # Stable, readable ordering: by model family, dataset, then size.
    rows.sort(key=lambda r: (str(r["model"]), str(r["dataset"]), str(r["D"]), str(r["C"])))
    columns = sorted({key for row in rows for key in row}, key=lambda name: name)
    if rows:
        # Preserve the natural column order of the first row, appending any
        # extras (flip_p / adc_bits) that only later rows introduce.
        leading = list(rows[0].keys())
        columns = leading + [name for name in columns if name not in leading]
    return format_table(rows, columns=columns or None, float_format="{:.2f}", title=title)


def format_serving_records(
    records: Iterable,
    title: Optional[str] = None,
) -> str:
    """Serving-load cell listing: the capacity-planning table.

    One row per (model config x serving point) with the request/error
    accounting (deterministic) and the measured QPS + p50/p95/p99 latency
    quantiles (volatile -- informative here, never drift-gated).
    """
    rows = []
    for record in records:
        config, metrics = _record_fields(record)
        rows.append(
            {
                "model": config.get("model", "?"),
                "dataset": config.get("dataset", "?"),
                "D": config.get("dimension", ""),
                "engine": config.get("engine") or "-",
                "mode": config.get("serving_mode", "?"),
                "workers": config.get("serving_workers", ""),
                "conc": config.get("serving_concurrency", ""),
                "batch": config.get("serving_batch", ""),
                "requests": metrics.get("requests", ""),
                "errors": metrics.get("errors", ""),
                "qps": metrics.get("qps", ""),
                "p50_ms": metrics.get("p50_ms", ""),
                "p95_ms": metrics.get("p95_ms", ""),
                "p99_ms": metrics.get("p99_ms", ""),
            }
        )
    rows.sort(
        key=lambda r: (
            str(r["model"]),
            str(r["dataset"]),
            str(r["D"]),
            str(r["engine"]),
            str(r["mode"]),
            int(r["workers"] or 0),
            int(r["conc"] or 0),
            int(r["batch"] or 0),
        )
    )
    return format_table(rows, float_format="{:.2f}", title=title)


def sweep_grid(
    records: Iterable,
    row_axis: str = "dimension",
    col_axis: str = "columns",
    value: str = "test_accuracy",
    ideal_only: bool = True,
) -> Dict[Tuple[int, int], float]:
    """Pivot sweep records into the ``{(row, col): value}`` heatmap form.

    Cells missing either axis or the metric are skipped, so mixed-model
    stores pivot cleanly on the MEMHD-only axes.  By default, non-ideal
    cells (injected bit flips or a finite ADC) are skipped too: they share
    the pivot key of their ideal sibling and would otherwise overwrite it
    with degraded numbers, last-write-wins.  Pass ``ideal_only=False``
    after pre-filtering records to one non-ideality setting.
    """
    grid: Dict[Tuple[int, int], float] = {}
    for record in records:
        config, metrics = _record_fields(record)
        if row_axis not in config or col_axis not in config or value not in metrics:
            continue
        if ideal_only and (
            config.get("bit_flip_probability") or config.get("adc_bits") is not None
        ):
            continue
        grid[(int(config[row_axis]), int(config[col_axis]))] = float(metrics[value])
    return grid


def format_store_diff(diff, title: Optional[str] = None) -> str:
    """Render a :class:`repro.eval.store.StoreDiff` for terminal output."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(diff.summary())
    if diff.changed:
        rows = [change.as_dict() for change in diff.changed]
        lines.append(format_table(rows, float_format="{:.6g}"))
    for label, keys in (("only-left", diff.only_left), ("only-right", diff.only_right)):
        if keys:
            lines.append(f"{label}: {', '.join(keys)}")
    if diff.is_clean:
        lines.append("stores are identical (within tolerance)")
    return "\n".join(lines)


def format_heatmap(
    grid: Dict[Tuple[int, int], float],
    title: Optional[str] = None,
    cell_format: str = "{:6.1f}",
    cell_scale: float = 100.0,
) -> str:
    """Fig. 4 style text heatmap: rows are dimensions, columns are AM columns.

    ``cell_scale`` converts stored values to display units -- the default
    of 100 renders accuracy fractions as percentages; pass 1.0 for
    metrics that are not fractions (memory KiB, throughput, ...).
    """
    if not grid:
        return "(empty heatmap)"
    dimensions = sorted({key[0] for key in grid})
    columns = sorted({key[1] for key in grid})
    header = "D \\ C |" + "".join(f"{c:>8d}" for c in columns)
    lines = [header, "-" * len(header)]
    for dimension in dimensions:
        cells = []
        for column in columns:
            value = grid.get((dimension, column))
            cells.append(
                cell_format.format(cell_scale * value) if value is not None else "     --"
            )
        lines.append(f"{dimension:>6d}|" + " ".join(f"{c:>7s}" for c in cells))
    if title:
        lines.insert(0, title)
    return "\n".join(lines)
