"""Plain-text report formatting for tables and figures.

The benchmark harness prints its results as aligned ASCII tables (and
simple text heatmaps) so the paper's tables and figure series can be read
straight from the pytest output or the ``*_output.txt`` capture files --
no plotting dependencies required.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def normalize_series(values: Sequence[float], peak: float = 100.0) -> List[float]:
    """Scale a series so its maximum equals ``peak`` (Fig. 7 convention)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return []
    maximum = float(arr.max())
    if maximum <= 0:
        raise ValueError("cannot normalize a series whose maximum is not positive")
    return list(arr / maximum * peak)


def format_accuracy_memory(
    records: Iterable,
    title: Optional[str] = None,
) -> str:
    """Fig. 3 style listing: model, size label, memory (KB) and accuracy."""
    rows = []
    for record in records:
        data = record.as_dict() if hasattr(record, "as_dict") else dict(record)
        rows.append(
            {
                "model": data.get("model", "?"),
                "config": data.get("label", data.get("config", "?")),
                "memory_kib": data.get("memory_kib", float("nan")),
                "accuracy_%": 100.0 * float(data.get("test_accuracy", float("nan"))),
            }
        )
    rows.sort(key=lambda row: row["memory_kib"])
    return format_table(rows, title=title, float_format="{:.2f}")


def format_heatmap(
    grid: Dict[Tuple[int, int], float],
    title: Optional[str] = None,
    cell_format: str = "{:6.1f}",
) -> str:
    """Fig. 4 style text heatmap: rows are dimensions, columns are AM columns."""
    if not grid:
        return "(empty heatmap)"
    dimensions = sorted({key[0] for key in grid})
    columns = sorted({key[1] for key in grid})
    header = "D \\ C |" + "".join(f"{c:>8d}" for c in columns)
    lines = [header, "-" * len(header)]
    for dimension in dimensions:
        cells = []
        for column in columns:
            value = grid.get((dimension, column))
            cells.append(
                cell_format.format(100.0 * value) if value is not None else "     --"
            )
        lines.append(f"{dimension:>6d}|" + " ".join(f"{c:>7s}" for c in cells))
    if title:
        lines.insert(0, title)
    return "\n".join(lines)
