"""Serving-load sweep cells: capacity planning as a regular sweep axis.

An accuracy cell answers "how good is this configuration"; a serving-load
cell answers "how does it *serve*": the cell trains its model with the
same deterministic seed derivation every other cell uses, boots a real
server on an ephemeral port (an in-process
:class:`~repro.runtime.server.ModelServer` for one worker, a
:class:`~repro.runtime.workers.WorkerSupervisor` prefork pool for more),
drives it with the PR 4 load generator under the cell's
concurrency/batch/loop-mode knobs, and records the numbers capacity
planning needs -- QPS and p50/p95/p99 latency -- as ordinary cell
metrics.

Determinism is split explicitly, so the store stays drift-gateable:

* **deterministic metrics** -- ``requests``, ``queries``, ``errors``,
  ``error_rate`` (the load is a *fixed request count*, not a duration)
  and ``predictions_sha256`` (a digest of the labels the server returns
  for a fixed synthesized payload pool -- bit-exact across runs, hosts
  and worker counts because the trained model is bit-identical);
* **volatile metrics** -- ``qps`` / ``requests_per_s`` / ``p50_ms`` /
  ``p95_ms`` / ``p99_ms`` / ``duration_s`` / ``train_elapsed_s`` -- are
  machine measurements, excluded from ``sweep diff`` / provenance by the
  explicit ``repro.eval.store.VOLATILE_METRICS`` set.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.eval.metrics import accuracy

#: Payload batches hashed into ``predictions_sha256`` (kept small: the
#: digest certifies bit-exactness, it is not a throughput measurement).
DIGEST_BATCHES = 8


def execute_serving_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Train, serve, and load-test one serving-load grid cell.

    Module-level and picklable for the same reason as
    :func:`repro.eval.sweep.execute_job` -- process pools and distributed
    workers both call it through that dispatcher.
    """
    from repro.eval.sweep import model_for_config
    from repro.runtime.loadtest import prediction_digest, run_load

    config = payload["config"]
    model_seed = int(payload["seed"])
    model, dataset = model_for_config(config, model_seed)

    train_start = time.perf_counter()
    history = model.fit(dataset.train_features, dataset.train_labels)
    train_elapsed = time.perf_counter() - train_start
    report = model.memory_report()

    engine = config.get("engine") or "float"
    concurrency = int(config["serving_concurrency"])
    workers = int(config["serving_workers"])
    batch = int(config["serving_batch"])
    mode = config["serving_mode"]
    requests = int(config["serving_requests"])
    rate = config.get("serving_rate")

    with _serve(model, engine=engine, workers=workers) as url:
        load = run_load(
            url,
            num_features=dataset.num_features,
            mode=mode,
            concurrency=concurrency,
            batch_size=batch,
            rate=None if rate is None else float(rate),
            seed=model_seed,
            total_requests=requests,
        )
        digest = prediction_digest(
            url,
            num_features=dataset.num_features,
            batch_size=batch,
            count=DIGEST_BATCHES,
            seed=model_seed,
        )

    load_row = load.as_dict()
    metrics: Dict[str, Any] = {
        # deterministic: gate drift on these
        "train_accuracy": float(history.final_train_accuracy),
        "test_accuracy": float(
            accuracy(model.predict(dataset.test_features), dataset.test_labels)
        ),
        "memory_kib": float(report.total_kib),
        "requests": int(load_row["requests"]),
        "queries": int(load_row["queries"]),
        "errors": int(load_row["errors"]),
        "error_rate": float(load_row["errors"]) / float(load_row["requests"]),
        "predictions_sha256": digest,
        # volatile: machine measurements, diff-ignored by VOLATILE_METRICS
        "train_elapsed_s": float(train_elapsed),
        "duration_s": float(load_row["duration_s"]),
        "qps": float(load_row["qps"]),
        "requests_per_s": float(load_row["requests_per_s"]),
        "p50_ms": float(load_row["p50_ms"]),
        "p95_ms": float(load_row["p95_ms"]),
        "p99_ms": float(load_row["p99_ms"]),
    }
    return {"key": payload["key"], "config": config, "metrics": metrics}


class _serve:
    """Context manager yielding the URL of a per-cell throwaway server.

    One worker boots an in-process threaded :class:`ModelServer`;
    ``workers > 1`` boots a :class:`WorkerSupervisor` prefork pool with
    the fitted model inherited through ``fork``.  On platforms without
    ``fork`` the pool degrades to the in-process server -- the
    deterministic metrics (counts + digest) are identical either way, so
    stores from both paths still diff clean.
    """

    def __init__(self, model, engine: str, workers: int) -> None:
        self.model = model
        self.engine = engine
        self.workers = workers
        self._server = None
        self._supervisor = None

    def __enter__(self) -> str:
        from repro.runtime.workers import fork_available

        if self.workers > 1 and fork_available():
            from repro.runtime.workers import WorkerConfig, WorkerSupervisor

            self._supervisor = WorkerSupervisor(
                WorkerConfig(model=self.model, engine=self.engine),
                host="127.0.0.1",
                port=0,
                workers=self.workers,
                respawn=False,
            )
            self._supervisor.start()
            return self._supervisor.url
        from repro.runtime.server import ModelServer

        self._server = ModelServer(
            self.model, engine=self.engine, host="127.0.0.1", port=0
        ).start()
        return self._server.url

    def __exit__(self, *exc_info) -> None:
        if self._supervisor is not None:
            self._supervisor.shutdown(drain=False)
        if self._server is not None:
            self._server.shutdown()
