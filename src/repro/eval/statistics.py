"""Multi-trial statistics for experiment results.

The paper reports 5-trial averages; this module provides the small set of
statistics the evaluation harness (and downstream users running their own
sweeps) need to do the same rigorously:

* :func:`summarize_trials` -- mean, standard deviation and a normal-theory
  confidence interval of a set of per-trial metrics.
* :func:`paired_bootstrap` -- a paired bootstrap test for "is model A better
  than model B on the same trials?", the appropriate comparison when both
  models are evaluated on identical dataset/seed pairs.
* :func:`run_trials` -- convenience runner that repeats a factory-built
  experiment over seeds and aggregates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np
from scipy import stats as scipy_stats

from repro.hdc.hypervector import _as_generator


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate statistics of one metric across repeated trials."""

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float
    confidence: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "count": self.count,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
        }


def summarize_trials(values: Sequence[float], confidence: float = 0.95) -> TrialSummary:
    """Mean / std / confidence interval of per-trial metric values.

    A Student-t interval is used (appropriate for the handful of trials the
    paper's protocol runs); with a single trial the interval degenerates to
    the point value.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must not be empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    if arr.size > 1 and std > 0.0:
        sem = std / np.sqrt(arr.size)
        t_value = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1)
        half_width = float(t_value * sem)
    else:
        half_width = 0.0
    return TrialSummary(
        mean=mean,
        std=std,
        count=int(arr.size),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        confidence=confidence,
    )


def paired_bootstrap(
    values_a: Sequence[float],
    values_b: Sequence[float],
    num_resamples: int = 2000,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> Dict[str, float]:
    """Paired bootstrap comparison of two models evaluated on the same trials.

    Returns the mean difference ``a - b``, a 95% bootstrap interval on the
    difference and the (one-sided) probability that A is not better than B
    (small values mean A is reliably better).
    """
    a = np.asarray(list(values_a), dtype=np.float64)
    b = np.asarray(list(values_b), dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("values_a and values_b must be equal-length, non-empty")
    if num_resamples < 1:
        raise ValueError("num_resamples must be >= 1")
    gen = _as_generator(rng)
    differences = a - b
    if a.size == 1:
        delta = float(differences[0])
        return {
            "mean_difference": delta,
            "ci_low": delta,
            "ci_high": delta,
            "p_not_better": 0.0 if delta > 0 else 1.0,
        }
    resampled_means = np.empty(num_resamples)
    for index in range(num_resamples):
        sample = gen.integers(0, a.size, size=a.size)
        resampled_means[index] = differences[sample].mean()
    return {
        "mean_difference": float(differences.mean()),
        "ci_low": float(np.percentile(resampled_means, 2.5)),
        "ci_high": float(np.percentile(resampled_means, 97.5)),
        "p_not_better": float(np.mean(resampled_means <= 0.0)),
    }


def run_trials(
    experiment: Callable[[int], float],
    num_trials: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
    confidence: float = 0.95,
) -> TrialSummary:
    """Repeat ``experiment(seed)`` over ``num_trials`` seeds and summarize.

    ``experiment`` receives a fresh integer seed per trial and returns a
    scalar metric (e.g. test accuracy).
    """
    if num_trials < 1:
        raise ValueError("num_trials must be >= 1")
    gen = _as_generator(rng)
    values = [
        float(experiment(int(gen.integers(0, 2**31 - 1)))) for _ in range(num_trials)
    ]
    return summarize_trials(values, confidence=confidence)
