"""Append-only JSONL result store for experiment sweeps.

A sweep produces one :class:`repro.eval.sweep.ExperimentRecord`-style row
per grid cell; this module gives those rows a durable, diffable home:

* every record is keyed by a **config hash** -- the SHA-256 of the cell's
  canonical (sorted-keys) JSON configuration -- so the same cell always
  lands under the same key regardless of field ordering or which process
  produced it;
* records are stored as **one JSON object per line**, appended with a
  flush per record, so an interrupted sweep loses at most the cell that
  was being written and a re-run can skip everything already on disk
  (resume);
* two stores can be **diffed** metric-by-metric for regression checks --
  the golden-metrics test pins a store under ``tests/golden/`` and fails
  loudly when accuracy drifts.

The format is deliberately plain: no index, no database, inspectable with
``jq`` and diffable with ``repro sweep diff``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

try:  # POSIX advisory locking for multi-writer (distributed sweep) appends
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Metrics excluded from diffs by default: wall-clock measurements vary
#: run to run and machine to machine, unlike accuracies and memory sizes.
TIMING_METRICS = frozenset({"elapsed_s", "queries_per_s", "train_elapsed_s"})

#: Latency/throughput metrics recorded by serving-load sweep cells.  They
#: are measurements of the machine, not the model, so they are volatile by
#: definition and must never be drift-gated.
LATENCY_METRICS = frozenset(
    {
        "qps",
        "requests_per_s",
        "duration_s",
        "wall_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
    }
)

#: The full set of metric names excluded from drift gating by default.
#: This is an explicit allowlist -- NOT substring matching -- so metrics
#: like ``p99_ms`` are skipped while e.g. ``firewall_rules`` or
#: ``overall_score`` (which contain timing-ish substrings) are compared.
VOLATILE_METRICS = TIMING_METRICS | LATENCY_METRICS

#: Volatile metric *families*: per-engine variants are stored with the
#: engine suffixed (``queries_per_s_packed``), so membership alone cannot
#: cover them.  A name is volatile when it is in :data:`VOLATILE_METRICS`
#: or starts with one of these prefixes.  Still no substring matching.
_VOLATILE_PREFIXES = tuple(
    f"{base}_" for base in sorted(VOLATILE_METRICS | {"elapsed", "wall", "duration"})
)


def is_volatile_metric(name: str) -> bool:
    """True for wall-clock/latency/throughput metrics that vary run-to-run.

    Membership is decided by the explicit :data:`VOLATILE_METRICS` set plus
    per-engine suffixed variants of those names (``queries_per_s_packed``,
    ``elapsed_s_float``, ...).  Deterministic metrics whose names merely
    *contain* a timing-ish substring (``firewall_rules``, ``p99_ms_gate``
    would not occur, but e.g. ``test_accuracy`` or ``requests``) are never
    treated as volatile.
    """
    if name in VOLATILE_METRICS:
        return True
    return name.startswith(_VOLATILE_PREFIXES)


class StoreError(Exception):
    """A result-store operation failed (unreadable file, bad record, ...)."""


def canonical_config(config: Dict[str, Any]) -> str:
    """Canonical JSON form of a cell configuration (sorted keys, no spaces)."""
    try:
        return json.dumps(config, sort_keys=True, separators=(",", ":"))
    except TypeError as error:
        raise StoreError(f"configuration is not JSON-serializable: {error}") from error


def config_key(config: Dict[str, Any]) -> str:
    """Stable 16-hex-digit key of a cell configuration.

    The key is the truncated SHA-256 of :func:`canonical_config`, so it is
    identical across processes, platforms and python versions -- the
    property resume and diff both rely on.
    """
    digest = hashlib.sha256(canonical_config(config).encode("utf-8")).hexdigest()
    return digest[:16]


@dataclasses.dataclass(frozen=True)
class ResultRecord:
    """One completed sweep cell: its configuration and measured metrics."""

    key: str
    config: Dict[str, Any]
    metrics: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "config": self.config, "metrics": self.metrics}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ResultRecord":
        for field in ("key", "config", "metrics"):
            if field not in payload:
                raise StoreError(f"record is missing the {field!r} field")
        return cls(
            key=str(payload["key"]),
            config=dict(payload["config"]),
            metrics=dict(payload["metrics"]),
        )


@dataclasses.dataclass(frozen=True)
class MetricChange:
    """One metric that moved between two stores for the same cell."""

    key: str
    metric: str
    old: Any
    new: Any

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "metric": self.metric,
            "old": self.old,
            "new": self.new,
        }


@dataclasses.dataclass(frozen=True)
class StoreDiff:
    """Outcome of comparing two stores cell-by-cell.

    Attributes
    ----------
    matching:
        Number of cells present in both stores with every compared metric
        within tolerance.
    changed:
        Per-metric differences of cells present in both stores.
    only_left / only_right:
        Keys present in exactly one of the stores.
    """

    matching: int
    changed: List[MetricChange]
    only_left: List[str]
    only_right: List[str]

    @property
    def is_clean(self) -> bool:
        """True when both stores agree on every shared cell and cover the
        same cells."""
        return not self.changed and not self.only_left and not self.only_right

    def summary(self) -> str:
        return (
            f"{self.matching} matching, {len(self.changed)} changed metric(s), "
            f"{len(self.only_left)} only-left, {len(self.only_right)} only-right"
        )


def _metrics_agree(old: Any, new: Any, rtol: float, atol: float) -> bool:
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if isinstance(old, bool) != isinstance(new, bool):
            return False
        return math.isclose(float(old), float(new), rel_tol=rtol, abs_tol=atol)
    return old == new


class ResultStore:
    """Append-only JSONL store of sweep results, keyed by config hash.

    Parameters
    ----------
    path:
        The ``.jsonl`` file backing the store.  Created (with parents) on
        first append; reads of a missing file see an empty store.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------ write
    def append(
        self,
        config: Dict[str, Any],
        metrics: Dict[str, Any],
        key: Optional[str] = None,
    ) -> ResultRecord:
        """Append one completed cell; returns the stored record.

        The write is a single ``write`` + ``flush`` + ``fsync`` of one
        line, so a concurrently-killed sweep can lose at most the record
        being written -- never corrupt earlier lines.  Before writing, a
        torn tail left by a killed writer (a final line with no
        terminating newline) is truncated away; without that repair the
        new record would fuse onto the partial bytes and corrupt the
        store.

        Appends take an exclusive ``flock`` (where available) for the
        repair + write, so multiple distributed-sweep workers can append
        to one shared store without a concurrent tail repair truncating a
        record another live writer just landed.  A writer killed while
        holding the lock releases it automatically (the kernel drops
        advisory locks on process exit).
        """
        record = ResultRecord(
            key=key or config_key(config), config=dict(config), metrics=dict(metrics)
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            self._truncate_torn_tail(handle)
            line = json.dumps(record.as_dict(), sort_keys=True) + "\n"
            handle.write(line.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def extend(self, records: Iterable[ResultRecord]) -> None:
        """Append pre-built records (used by store merges and tests)."""
        for record in records:
            self.append(record.config, record.metrics, key=record.key)

    # ------------------------------------------------------------------- read
    def records(self) -> List[ResultRecord]:
        """Every stored record in append order (duplicates included)."""
        if not self.path.is_file():
            return []
        records: List[ResultRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(ResultRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, StoreError) as error:
                    # A torn final line (killed mid-write) is expected and
                    # recoverable: the cell simply re-runs.  A torn line in
                    # the middle of the file is corruption worth surfacing.
                    if line_number == self._line_count():
                        continue
                    raise StoreError(
                        f"{self.path}:{line_number}: unreadable record ({error})"
                    ) from error
        return records

    def latest(self) -> Dict[str, ResultRecord]:
        """Keyed view of the store; for duplicate keys the last write wins."""
        return {record.key: record for record in self.records()}

    def completed_keys(self) -> "set[str]":
        """Config-hash keys with at least one stored record (resume set)."""
        return set(self.latest())

    def __len__(self) -> int:
        return len(self.latest())

    # ------------------------------------------------------------------- diff
    def diff(
        self,
        other: "ResultStore",
        rtol: float = 1e-9,
        atol: float = 1e-12,
        metrics: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> StoreDiff:
        """Compare this store (left) against ``other`` (right).

        Parameters
        ----------
        rtol / atol:
            Numeric tolerance for metric comparisons (non-numeric metrics
            compare by equality).
        metrics:
            Only compare these metric names; default compares every metric
            that appears on either side.
        ignore:
            Metric names excluded from the comparison; when ``None`` the
            default skips everything :func:`is_volatile_metric` matches
            (wall-clock, latency and throughput measurements are expected
            to differ between runs).  Pass an explicit sequence -- e.g.
            ``ignore=()`` -- to override.
        """
        if ignore is None:
            ignored = None  # predicate-based default, applied below
        else:
            ignored = set(ignore)
        left, right = self.latest(), other.latest()
        changed: List[MetricChange] = []
        matching = 0
        for shared_key in sorted(set(left) & set(right)):
            old_metrics = left[shared_key].metrics
            new_metrics = right[shared_key].metrics
            names = set(old_metrics) | set(new_metrics)
            if metrics is not None:
                names &= set(metrics)
            if ignored is None:
                names = {name for name in names if not is_volatile_metric(name)}
            else:
                names -= ignored
            cell_changes = [
                MetricChange(
                    key=shared_key,
                    metric=name,
                    old=old_metrics.get(name),
                    new=new_metrics.get(name),
                )
                for name in sorted(names)
                if not _metrics_agree(
                    old_metrics.get(name), new_metrics.get(name), rtol, atol
                )
            ]
            if cell_changes:
                changed.extend(cell_changes)
            else:
                matching += 1
        return StoreDiff(
            matching=matching,
            changed=changed,
            only_left=sorted(set(left) - set(right)),
            only_right=sorted(set(right) - set(left)),
        )

    # -------------------------------------------------------------- internals
    @staticmethod
    def _truncate_torn_tail(handle) -> None:
        """Drop a partial (newline-less) final line before appending.

        The partial line is an incomplete record from a killed writer --
        reads already skip it, so removing it loses nothing, while
        leaving it would fuse it with the next appended record.
        """
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        data = handle.read(size)
        handle.truncate(data.rfind(b"\n") + 1)
        handle.seek(0, os.SEEK_END)

    def _line_count(self) -> int:
        with open(self.path, "r", encoding="utf-8") as handle:
            return sum(1 for _ in handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(path={str(self.path)!r})"
