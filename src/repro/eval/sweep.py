"""Declarative, parallel, resumable experiment-matrix engine.

The paper's headline results are grids -- accuracy over memory budget,
dimension x centroid count, cluster ratio, IMC noise / ADC precision.
:class:`SweepSpec` describes such a grid declaratively; the engine expands
it into concrete jobs, executes them (optionally on a
:class:`concurrent.futures.ProcessPoolExecutor`) with deterministic
per-cell seeds, and streams every finished cell into an append-only
:class:`repro.eval.store.ResultStore` keyed by a config hash.  Because the
store is consulted before running, an interrupted or repeated sweep only
executes the missing cells (**resume**), and two stores can be **diffed**
for regression checks (the golden-metrics test pins one under
``tests/golden/``).

Cell semantics
--------------
One cell is one ``(model, dataset, dimension, columns, cluster ratio,
engine, bit-flip probability, ADC bits)`` combination, canonicalized so
that axes a model ignores never multiply the grid:

* baselines drop the MEMHD-only axes (``columns``, ``cluster_ratio``) and
  only MEMHD cells carry the IMC non-ideality axes;
* projection-encoded models drop ``id_levels``;
* the ``packed`` engine is only generated for models that support it, and
  non-ideal (noise / ADC) cells are simulator evaluations with no engine
  axis at all.

Every cell's model seed is derived from the spec's base seed and the
cell's config hash, so results are reproducible regardless of execution
order, worker count, or which cells were resumed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.datasets import DATASET_PROFILES, available_datasets, load_dataset
from repro.eval.metrics import accuracy
from repro.eval.store import ResultRecord, ResultStore, config_key

#: Model families a sweep (and the CLI) can construct.
MODEL_CHOICES = ("memhd", "basichdc", "quanthd", "searchd", "lehdc", "onlinehd")

#: Models whose ``predict`` supports the bit-packed popcount engine.
PACKED_MODELS = frozenset({"memhd", "basichdc", "quanthd", "searchd", "lehdc"})

#: Models encoded with the ID-Level encoder (the only users of ``id_levels``).
ID_LEVEL_MODELS = frozenset({"quanthd", "searchd", "lehdc"})

#: Engines a sweep cell can time predictions under.
SWEEP_ENGINES = ("float", "packed")

#: Cell kinds a sweep can expand: accuracy/memory evaluation (the default
#: PR 3 behaviour) or serving-load cells that boot a real server per cell
#: and measure it with the PR 4 load generator.
SWEEP_KINDS = ("accuracy", "serving-load")

#: Loop modes a serving-load cell can drive (mirrors
#: ``repro.runtime.loadtest.MODES`` without importing the runtime stack
#: at sweep-definition time).
SERVING_MODES = ("closed", "open")

#: Test hook: sleep this many seconds at the start of every executed cell.
#: Gives the chaos tests a reliable window to SIGKILL a worker *mid-cell*
#: (between claiming a lease and appending the result).
DELAY_ENV = "REPRO_SWEEP_TEST_DELAY_S"


class SweepError(Exception):
    """A sweep could not be specified or executed (empty grid, bad axis...)."""


# --------------------------------------------------------------------------
# Shared model factory (used by the sweep workers and the CLI)
# --------------------------------------------------------------------------
def build_model(
    model: str,
    num_features: int,
    num_classes: int,
    *,
    dimension: int = 128,
    columns: int = 128,
    epochs: int = 5,
    learning_rate: float = 0.05,
    cluster_ratio: float = 0.8,
    init_method: str = "clustering",
    id_levels: int = 32,
    seed: int = 0,
):
    """Instantiate any supported model family from flat hyperparameters.

    This is the single construction path shared by ``repro train`` /
    ``repro predict`` and the sweep workers, so a sweep cell trains
    exactly the model the CLI would.
    """
    if model == "memhd":
        from repro.core.config import MEMHDConfig
        from repro.core.model import MEMHDModel

        config = MEMHDConfig(
            dimension=dimension,
            columns=columns,
            cluster_ratio=cluster_ratio,
            epochs=epochs,
            learning_rate=learning_rate,
            init_method=init_method,
            seed=seed,
        )
        return MEMHDModel(num_features, num_classes, config, rng=seed)
    if model == "basichdc":
        from repro.baselines import BasicHDC, BasicHDCConfig

        return BasicHDC(
            num_features,
            num_classes,
            BasicHDCConfig(
                dimension=dimension,
                refine_epochs=epochs,
                learning_rate=learning_rate,
                seed=seed,
            ),
        )
    if model == "quanthd":
        from repro.baselines import QuantHD, QuantHDConfig

        return QuantHD(
            num_features,
            num_classes,
            QuantHDConfig(
                dimension=dimension,
                num_levels=id_levels,
                epochs=epochs,
                learning_rate=learning_rate,
                seed=seed,
            ),
        )
    if model == "searchd":
        from repro.baselines import SearcHD, SearcHDConfig

        return SearcHD(
            num_features,
            num_classes,
            SearcHDConfig(
                dimension=dimension,
                num_levels=id_levels,
                num_models=8,
                epochs=max(1, min(epochs, 3)),
                seed=seed,
            ),
        )
    if model == "lehdc":
        from repro.baselines import LeHDC, LeHDCConfig

        return LeHDC(
            num_features,
            num_classes,
            LeHDCConfig(
                dimension=dimension,
                num_levels=id_levels,
                epochs=epochs,
                learning_rate=max(learning_rate, 0.05),
                seed=seed,
            ),
        )
    if model == "onlinehd":
        from repro.baselines import OnlineHD, OnlineHDConfig

        return OnlineHD(
            num_features,
            num_classes,
            OnlineHDConfig(
                dimension=dimension,
                epochs=epochs,
                learning_rate=learning_rate,
                seed=seed,
            ),
        )
    raise ValueError(f"unknown model {model!r}; choose from {MODEL_CHOICES}")


#: Config fields that determine the trained model (and hence its seed).
#: Evaluation-only axes (engine, injected noise, ADC resolution) are
#: excluded so that every cell evaluating the same trained model -- the
#: float and packed timings, the ideal and noisy simulator runs -- really
#: does evaluate a bit-identical model.
TRAINING_FIELDS = (
    "model",
    "dataset",
    "scale",
    "dimension",
    "columns",
    "cluster_ratio",
    "init_method",
    "id_levels",
    "epochs",
    "learning_rate",
    "seed",
)


def training_config(config: Dict[str, Any]) -> Dict[str, Any]:
    """The training-relevant subset of a cell configuration."""
    return {field: config[field] for field in TRAINING_FIELDS if field in config}


def derive_job_seed(base_seed: int, config: Dict[str, Any]) -> int:
    """Deterministic per-cell model seed from the training configuration.

    Independent of execution order, worker count and the evaluation-only
    axes, so a resumed sweep trains bit-identical models for the cells it
    re-runs and same-model cells (float vs packed, ideal vs noisy) share
    one model.
    """
    identity = config_key(training_config(config))
    digest = hashlib.sha256(f"{base_seed}:{identity}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


# --------------------------------------------------------------------------
# Spec and jobs
# --------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """Declarative description of an experiment grid.

    Axes (the cartesian product is canonicalized per model, see the module
    docstring): ``models x datasets x dimensions x columns x
    cluster_ratios x engines x bit_flip_probabilities x adc_bits``.
    Scalars (``scale``, ``epochs``, ``learning_rate``, ``id_levels``,
    ``init_method``, ``seed``) apply to every cell.

    ``kind="serving-load"`` switches the grid to capacity-planning cells:
    each cell trains its model (same deterministic seed derivation as
    accuracy cells -- serving knobs are evaluation-only axes), boots a
    real server and measures it under the cell's ``serving_*`` axes
    (concurrency x worker processes x request batch x loop mode).  Only
    ideal cells exist in this kind (no IMC noise/ADC axes).  Accuracy
    cells carry no ``kind`` or ``serving_*`` config keys, so every
    pre-existing store's config hashes are unchanged.
    """

    models: Tuple[str, ...] = ("memhd",)
    datasets: Tuple[str, ...] = ("mnist",)
    dimensions: Tuple[int, ...] = (128,)
    columns: Tuple[int, ...] = (128,)
    cluster_ratios: Tuple[float, ...] = (0.8,)
    engines: Tuple[str, ...] = ("float",)
    bit_flip_probabilities: Tuple[float, ...] = (0.0,)
    adc_bits: Tuple[Optional[int], ...] = (None,)
    scale: float = 0.02
    epochs: int = 5
    learning_rate: float = 0.05
    id_levels: int = 32
    init_method: str = "clustering"
    seed: int = 0
    kind: str = "accuracy"
    serving_concurrency: Tuple[int, ...] = (8,)
    serving_workers: Tuple[int, ...] = (1,)
    serving_batch: Tuple[int, ...] = (1,)
    serving_modes: Tuple[str, ...] = ("closed",)
    serving_requests: int = 64
    serving_rate: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(self, "datasets", tuple(self.datasets))
        object.__setattr__(self, "dimensions", tuple(int(d) for d in self.dimensions))
        object.__setattr__(self, "columns", tuple(int(c) for c in self.columns))
        object.__setattr__(
            self, "cluster_ratios", tuple(float(r) for r in self.cluster_ratios)
        )
        object.__setattr__(self, "engines", tuple(self.engines))
        object.__setattr__(
            self,
            "bit_flip_probabilities",
            tuple(float(p) for p in self.bit_flip_probabilities),
        )
        object.__setattr__(
            self,
            "adc_bits",
            tuple(None if b is None else int(b) for b in self.adc_bits),
        )
        for model in self.models:
            if model not in MODEL_CHOICES:
                raise SweepError(
                    f"unknown model {model!r}; choose from {MODEL_CHOICES}"
                )
        for dataset in self.datasets:
            if dataset not in available_datasets():
                raise SweepError(
                    f"unknown dataset {dataset!r}; choose from {available_datasets()}"
                )
        for engine in self.engines:
            if engine not in SWEEP_ENGINES:
                raise SweepError(
                    f"unknown engine {engine!r}; choose from {SWEEP_ENGINES}"
                )
        for probability in self.bit_flip_probabilities:
            if not 0.0 <= probability <= 1.0:
                raise SweepError("bit flip probabilities must be in [0, 1]")
        if self.scale <= 0:
            raise SweepError("scale must be positive")
        if self.epochs < 0:
            raise SweepError("epochs must be non-negative")
        object.__setattr__(
            self,
            "serving_concurrency",
            tuple(int(c) for c in self.serving_concurrency),
        )
        object.__setattr__(
            self, "serving_workers", tuple(int(w) for w in self.serving_workers)
        )
        object.__setattr__(
            self, "serving_batch", tuple(int(b) for b in self.serving_batch)
        )
        object.__setattr__(self, "serving_modes", tuple(self.serving_modes))
        if self.kind not in SWEEP_KINDS:
            raise SweepError(f"unknown kind {self.kind!r}; choose from {SWEEP_KINDS}")
        if self.kind == "serving-load":
            if any(p != 0.0 for p in self.bit_flip_probabilities) or any(
                b is not None for b in self.adc_bits
            ):
                raise SweepError(
                    "serving-load sweeps are ideal-only: drop the "
                    "bit-flip/ADC axes (the IMC simulator has no server)"
                )
            for values, label in (
                (self.serving_concurrency, "serving_concurrency"),
                (self.serving_workers, "serving_workers"),
                (self.serving_batch, "serving_batch"),
            ):
                if not values or any(v < 1 for v in values):
                    raise SweepError(f"{label} axis values must be >= 1")
            for mode in self.serving_modes:
                if mode not in SERVING_MODES:
                    raise SweepError(
                        f"unknown serving mode {mode!r}; choose from {SERVING_MODES}"
                    )
            if int(self.serving_requests) < 1:
                raise SweepError("serving_requests must be >= 1")
            object.__setattr__(self, "serving_requests", int(self.serving_requests))
            if "open" in self.serving_modes and (
                self.serving_rate is None or float(self.serving_rate) <= 0
            ):
                raise SweepError("open-loop serving cells need a positive serving_rate")
            if self.serving_rate is not None:
                object.__setattr__(self, "serving_rate", float(self.serving_rate))

    # -------------------------------------------------------------- (de)spec
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (``repro sweep run --spec`` round-trip)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SweepError(f"unknown sweep spec fields: {sorted(unknown)}")
        try:
            return cls(**payload)
        except (TypeError, ValueError) as error:
            # Wrong-typed field values (a scalar where an axis list is
            # expected, a non-numeric epoch count, ...) must surface as the
            # same clean SweepError every other bad-spec path raises.
            raise SweepError(f"invalid sweep spec: {error}") from error

    # ------------------------------------------------------------- expansion
    def expand(self) -> List["SweepJob"]:
        """Expand the grid into unique, canonicalized jobs.

        Cells a model cannot realize are dropped (packed engine on a
        model without one, MEMHD column budgets below the dataset's class
        count, non-ideal IMC cells for non-MEMHD models), and cells that
        canonicalize identically -- e.g. two column budgets for a
        baseline that has no columns -- collapse into one job.
        """
        if self.kind == "serving-load":
            return self._expand_serving()
        jobs: Dict[str, SweepJob] = {}
        axes = itertools.product(
            self.models,
            self.datasets,
            self.dimensions,
            self.columns,
            self.cluster_ratios,
            self.bit_flip_probabilities,
            self.adc_bits,
        )
        for model, dataset, dimension, column_count, ratio, flip, adc in axes:
            ideal = flip == 0.0 and adc is None
            if model != "memhd" and not ideal:
                continue  # the IMC simulator maps MEMHD models only
            engines: Tuple[Optional[str], ...]
            if ideal:
                engines = tuple(
                    engine
                    for engine in self.engines
                    if engine == "float" or model in PACKED_MODELS
                )
            else:
                engines = (None,)  # simulator cell: no serving engine
            for engine in engines:
                config = self._cell_config(
                    model, dataset, dimension, column_count, ratio, flip, adc, engine
                )
                if config is None:
                    continue
                key = config_key(config)
                jobs.setdefault(
                    key,
                    SweepJob(
                        key=key,
                        config=config,
                        seed=derive_job_seed(self.seed, config),
                    ),
                )
        return list(jobs.values())

    def _expand_serving(self) -> List["SweepJob"]:
        """Expand serving-load cells: model grid x serving knobs.

        The serving knobs are evaluation-only axes (excluded from
        :data:`TRAINING_FIELDS`), so every serving point of one model
        cell trains the bit-identical model -- and its predictions can be
        digest-compared across concurrency/worker-count points.
        """
        jobs: Dict[str, SweepJob] = {}
        axes = itertools.product(
            self.models,
            self.datasets,
            self.dimensions,
            self.columns,
            self.cluster_ratios,
        )
        for model, dataset, dimension, column_count, ratio in axes:
            engines = tuple(
                engine
                for engine in self.engines
                if engine == "float" or model in PACKED_MODELS
            )
            for engine in engines:
                base = self._cell_config(
                    model, dataset, dimension, column_count, ratio, 0.0, None, engine
                )
                if base is None:
                    continue
                points = itertools.product(
                    self.serving_concurrency,
                    self.serving_workers,
                    self.serving_batch,
                    self.serving_modes,
                )
                for concurrency, workers, batch, mode in points:
                    config = dict(base)
                    config.update(
                        {
                            "kind": "serving-load",
                            "serving_concurrency": concurrency,
                            "serving_workers": workers,
                            "serving_batch": batch,
                            "serving_mode": mode,
                            "serving_requests": self.serving_requests,
                            "serving_rate": (
                                self.serving_rate if mode == "open" else None
                            ),
                        }
                    )
                    key = config_key(config)
                    jobs.setdefault(
                        key,
                        SweepJob(
                            key=key,
                            config=config,
                            seed=derive_job_seed(self.seed, config),
                        ),
                    )
        return list(jobs.values())

    def _cell_config(
        self,
        model: str,
        dataset: str,
        dimension: int,
        column_count: int,
        ratio: float,
        flip: float,
        adc: Optional[int],
        engine: Optional[str],
    ) -> Optional[Dict[str, Any]]:
        config: Dict[str, Any] = {
            "model": model,
            "dataset": dataset,
            "scale": self.scale,
            "dimension": dimension,
            "epochs": self.epochs,
            "learning_rate": self.learning_rate,
            "seed": self.seed,
            "engine": engine,
            "bit_flip_probability": flip,
            "adc_bits": adc,
        }
        if model == "memhd":
            if column_count < DATASET_PROFILES[dataset].num_classes:
                return None  # cannot give every class a centroid
            config["columns"] = column_count
            config["cluster_ratio"] = ratio
            config["init_method"] = self.init_method
        if model in ID_LEVEL_MODELS:
            config["id_levels"] = self.id_levels
        return config


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One expanded grid cell: its canonical config, key and model seed."""

    key: str
    config: Dict[str, Any]
    seed: int

    def as_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "config": dict(self.config), "seed": self.seed}


# --------------------------------------------------------------------------
# Job execution (module-level so ProcessPoolExecutor can pickle it)
# --------------------------------------------------------------------------
def model_for_config(config: Dict[str, Any], model_seed: int):
    """``(untrained model, dataset)`` for one cell configuration.

    The single config-to-model mapping shared by the sweep workers and
    :func:`train_record_model`, so ``--save-best`` necessarily rebuilds
    exactly the model whose metrics the sweep recorded.
    """
    dataset = load_dataset(config["dataset"], scale=config["scale"], rng=config["seed"])
    model = build_model(
        config["model"],
        dataset.num_features,
        dataset.num_classes,
        dimension=config["dimension"],
        columns=config.get("columns", 128),
        epochs=config["epochs"],
        learning_rate=config["learning_rate"],
        cluster_ratio=config.get("cluster_ratio", 0.8),
        init_method=config.get("init_method", "clustering"),
        id_levels=config.get("id_levels", 32),
        seed=model_seed,
    )
    return model, dataset


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Train and evaluate one grid cell; returns the record as a dict.

    Pure function of the job payload: the dataset is generated from the
    spec seed, the model from the derived cell seed, so any process (or a
    later resume) produces the same metrics for the same cell.
    """
    delay = float(os.environ.get(DELAY_ENV, "0") or 0.0)
    if delay > 0:
        time.sleep(delay)
    config = payload["config"]
    if config.get("kind") == "serving-load":
        from repro.eval.serving_cell import execute_serving_job

        return execute_serving_job(payload)
    model_seed = int(payload["seed"])
    model, dataset = model_for_config(config, model_seed)
    train_start = time.perf_counter()
    history = model.fit(dataset.train_features, dataset.train_labels)
    train_elapsed = time.perf_counter() - train_start

    report = model.memory_report()
    metrics: Dict[str, Any] = {
        "train_accuracy": float(history.final_train_accuracy),
        "memory_kib": float(report.total_kib),
        "am_memory_kib": float(report.am_kib),
        "train_elapsed_s": float(train_elapsed),
    }

    engine = config.get("engine")
    if engine is None:
        metrics.update(_simulated_metrics(model, dataset, config, model_seed))
    else:
        from repro.runtime.pipeline import InferencePipeline

        pipeline = InferencePipeline(model, engine=engine, chunk_size=1024)
        pipeline.warmup()
        result = pipeline.run(dataset.test_features)
        metrics["test_accuracy"] = float(
            accuracy(result.labels, dataset.test_labels)
        )
        metrics["elapsed_s"] = float(result.stats.elapsed_seconds)
        metrics["queries_per_s"] = float(result.stats.queries_per_second)
    return {"key": payload["key"], "config": config, "metrics": metrics}


def _simulated_metrics(model, dataset, config, model_seed) -> Dict[str, Any]:
    """IMC-simulator evaluation of a non-ideal (noise / ADC) MEMHD cell."""
    from repro.imc.adc import ADCConfig
    from repro.imc.noise import NoiseModel
    from repro.imc.simulator import InMemoryInference

    noise = NoiseModel(bit_flip_probability=config["bit_flip_probability"])
    engine = InMemoryInference(model, noise=noise, rng=model_seed + 1)
    queries = np.atleast_2d(engine.encode(dataset.test_features))
    scores = np.atleast_2d(engine.associative_search(queries))
    if config["adc_bits"] is not None:
        adc = ADCConfig(
            output_bits=config["adc_bits"], full_scale=float(config["dimension"])
        )
        scores = adc.quantize_outputs(scores)
    predictions = engine.column_classes[np.argmax(scores, axis=1)]
    return {
        "test_accuracy": float(np.mean(predictions == dataset.test_labels)),
        "reference_accuracy": float(
            model.score(dataset.test_features, dataset.test_labels)
        ),
    }


# --------------------------------------------------------------------------
# The sweep runner
# --------------------------------------------------------------------------
@dataclasses.dataclass
class SweepRunResult:
    """Accounting of one :func:`run_sweep` call.

    ``completed`` counts cells executed *by this call*; ``skipped`` counts
    resume hits (cells already in the store).  ``records`` holds only the
    newly-executed cells.
    """

    total: int
    completed: int
    skipped: int
    failed: List[Dict[str, str]]
    records: List[ResultRecord]

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return (
            f"{self.total} cell(s): {self.completed} executed, "
            f"{self.skipped} resumed from store, {len(self.failed)} failed"
        )


def run_sweep(
    spec: SweepSpec,
    store: Union[ResultStore, str],
    workers: int = 1,
    resume: bool = True,
    max_jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepRunResult:
    """Execute a sweep spec, streaming results into ``store``.

    Parameters
    ----------
    spec:
        The grid to run.
    store:
        A :class:`ResultStore` (or a path to one).  Completed cells found
        in it are skipped when ``resume`` is True; newly-finished cells
        are appended (and flushed) one by one, so killing the process
        mid-sweep loses at most the in-flight cells.
    workers:
        Process-pool width.  ``1`` runs jobs inline (no subprocesses),
        which is also the fully-deterministic-ordering mode tests use.
    max_jobs:
        Execute at most this many pending cells (smoke runs, and the
        resume test's stand-in for a killed sweep).
    progress:
        Optional callable invoked with one human-readable line per cell.

    Raises
    ------
    SweepError
        When the spec expands to an empty grid.
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
        store = ResultStore(store)
    jobs = spec.expand()
    if not jobs:
        raise SweepError(
            "sweep spec expanded to an empty grid (every cell was dropped "
            "as unrealizable -- check model/engine/columns combinations)"
        )
    done = store.completed_keys() if resume else set()
    pending = [job for job in jobs if job.key not in done]
    skipped = len(jobs) - len(pending)
    if max_jobs is not None:
        pending = pending[: max(0, int(max_jobs))]

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    note(f"sweep: {len(jobs)} cell(s), {skipped} already in store, "
         f"{len(pending)} to run")

    records: List[ResultRecord] = []
    failed: List[Dict[str, str]] = []

    def finish(job: SweepJob, outcome: Dict[str, Any]) -> None:
        record = store.append(outcome["config"], outcome["metrics"], key=outcome["key"])
        records.append(record)
        label = _cell_label(job.config)
        test_accuracy = outcome["metrics"].get("test_accuracy")
        shown = "-" if test_accuracy is None else f"{100.0 * test_accuracy:.2f}%"
        note(f"  done {label}: accuracy {shown}")

    if workers == 1 or len(pending) <= 1:
        for job in pending:
            try:
                finish(job, execute_job(job.as_dict()))
            except Exception as error:  # noqa: BLE001 - jobs must not kill the sweep
                failed.append({"key": job.key, "error": f"{type(error).__name__}: {error}"})
                note(f"  FAILED {_cell_label(job.config)}: {error}")
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_job, job.as_dict()): job for job in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    job = futures[future]
                    error = future.exception()
                    if error is not None:
                        failed.append(
                            {"key": job.key, "error": f"{type(error).__name__}: {error}"}
                        )
                        note(f"  FAILED {_cell_label(job.config)}: {error}")
                    else:
                        finish(job, future.result())

    return SweepRunResult(
        total=len(jobs),
        completed=len(records),
        skipped=skipped,
        failed=failed,
        records=records,
    )


def _cell_label(config: Dict[str, Any]) -> str:
    parts = [config["model"], config["dataset"], f"D={config['dimension']}"]
    if "columns" in config:
        parts.append(f"C={config['columns']}")
    if config.get("engine"):
        parts.append(config["engine"])
    if config.get("bit_flip_probability"):
        parts.append(f"p={config['bit_flip_probability']}")
    if config.get("adc_bits") is not None:
        parts.append(f"adc={config['adc_bits']}b")
    if config.get("kind") == "serving-load":
        parts.append(
            f"serve[{config['serving_mode']} c={config['serving_concurrency']} "
            f"w={config['serving_workers']} b={config['serving_batch']}]"
        )
    return " ".join(parts)


# --------------------------------------------------------------------------
# Post-run helpers
# --------------------------------------------------------------------------
def spec_records(
    spec: SweepSpec, store: Union[ResultStore, str]
) -> List[ResultRecord]:
    """The store's completed records restricted to (and ordered by) the spec."""
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    latest = store.latest()
    records = (latest.get(job.key) for job in spec.expand())
    return [record for record in records if record is not None]


def best_record(
    records: Sequence[ResultRecord], metric: str = "test_accuracy"
) -> ResultRecord:
    """The record maximizing ``metric`` (ties: first in ``records``)."""
    scored = [record for record in records if metric in record.metrics]
    if not scored:
        raise SweepError(f"no completed record carries the metric {metric!r}")
    return max(scored, key=lambda record: record.metrics[metric])


def train_record_model(record: ResultRecord):
    """Re-train the exact model behind a sweep record (for ``--save-best``).

    Sweep workers do not ship fitted models back across process
    boundaries; instead the cell's deterministic seeds let anyone rebuild
    the identical model from its record.  Returns ``(model, dataset)``.
    """
    config = record.config
    model, dataset = model_for_config(config, derive_job_seed(config["seed"], config))
    model.fit(dataset.train_features, dataset.train_labels)
    return model, dataset
