"""Hyperdimensional computing (HDC) substrate.

This package provides the building blocks every classifier in the
reproduction rests on:

* :mod:`repro.hdc.hypervector` -- creation of random hypervectors and the
  elementary HDC algebra (bundling, binding, permutation, sign/binarize).
* :mod:`repro.hdc.similarity` -- dot, cosine, Hamming and normalized-Hamming
  similarity between hypervectors or batches of hypervectors.
* :mod:`repro.hdc.encoders` -- the two encoders the paper uses:
  random-projection encoding (MVM-compatible, used by BasicHDC and MEMHD) and
  ID-Level encoding (used by SearcHD / QuantHD / LeHDC).
* :mod:`repro.hdc.clustering` -- K-means clustering under the dot-similarity
  metric, used for MEMHD's clustering-based initialization.
* :mod:`repro.hdc.memory_model` -- the Table I memory-requirement formulas
  for every model family.
* :mod:`repro.hdc.packed` -- bit-packed (``uint64``-word) hypervectors and
  the popcount similarity engine behind every ``packed=True`` /
  ``engine="packed"`` fast path in the library.
* :mod:`repro.hdc.pruned` -- centroid-pruned shortlist search over the
  packed engine (the ``engine="pruned"`` sublinear hot path), exact by
  construction.
"""

from repro.hdc.hypervector import (
    BIPOLAR,
    BINARY,
    random_binary_hypervectors,
    random_bipolar_hypervectors,
    random_gaussian_hypervectors,
    level_hypervectors,
    bundle,
    bind,
    permute,
    binarize,
    bipolarize,
    to_bipolar,
    to_binary,
)
from repro.hdc.similarity import (
    dot_similarity,
    cosine_similarity,
    hamming_distance,
    hamming_similarity,
    pairwise_dot,
    pruned_top1,
    top1,
)
from repro.hdc.encoders import (
    Encoder,
    RandomProjectionEncoder,
    IDLevelEncoder,
)
from repro.hdc.clustering import (
    KMeansResult,
    dot_kmeans,
    classwise_clustering,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.packed import (
    PackedAM,
    PackedVectors,
    kernel_backend,
    pack_binary,
    pack_bipolar,
    packed_dot_similarity,
    packed_hamming_distance,
    words_per_vector,
)
from repro.hdc.pruned import (
    PrunedAM,
    default_prune_topk,
)
from repro.hdc.memory_model import (
    MemoryReport,
    bits_to_kib,
    projection_encoder_bits,
    id_level_encoder_bits,
    associative_memory_bits,
    model_memory_report,
    TABLE1_MODEL_FAMILIES,
)

__all__ = [
    "BIPOLAR",
    "BINARY",
    "random_binary_hypervectors",
    "random_bipolar_hypervectors",
    "random_gaussian_hypervectors",
    "level_hypervectors",
    "bundle",
    "bind",
    "permute",
    "binarize",
    "bipolarize",
    "to_bipolar",
    "to_binary",
    "dot_similarity",
    "cosine_similarity",
    "hamming_distance",
    "hamming_similarity",
    "pairwise_dot",
    "pruned_top1",
    "top1",
    "Encoder",
    "RandomProjectionEncoder",
    "IDLevelEncoder",
    "KMeansResult",
    "dot_kmeans",
    "classwise_clustering",
    "ItemMemory",
    "PackedAM",
    "PackedVectors",
    "kernel_backend",
    "pack_binary",
    "pack_bipolar",
    "packed_dot_similarity",
    "packed_hamming_distance",
    "words_per_vector",
    "PrunedAM",
    "default_prune_topk",
    "MemoryReport",
    "bits_to_kib",
    "projection_encoder_bits",
    "id_level_encoder_bits",
    "associative_memory_bits",
    "model_memory_report",
    "TABLE1_MODEL_FAMILIES",
]
