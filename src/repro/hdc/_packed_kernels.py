"""Popcount kernels behind the bit-packed similarity engine.

Two interchangeable backends compute the ``(n, m)`` pair matrix of
``popcount(q AND r)`` (binary dot similarity) or ``popcount(q XOR r)``
(Hamming distance) over ``uint64``-packed hypervectors:

``numpy``
    A cache-blocked pure-numpy kernel built on :func:`numpy.bitwise_count`.
    Always available; used as the correctness reference.

``native``
    A small C kernel compiled on first use with the system C compiler
    (``cc``/``gcc``) and loaded through :mod:`ctypes`.  On a typical x86-64
    host the hardware ``popcnt`` path is an order of magnitude faster than
    the blocked numpy kernel because the ``(n, m, W)`` AND/XOR intermediate
    never materializes.  The build probes a ladder of compiler-flag tiers
    (``-march=native`` then ``-mavx2`` then portable ``-O3``), scores the
    AM in cache-blocked tiles so a reference tile stays resident across
    query rows, and can partition query rows over POSIX threads.
    Compilation happens once per machine into a content-addressed cache
    directory under the system temp dir; any failure (no compiler,
    sandboxed filesystem, exotic platform) silently falls back to the
    numpy backend.

Environment knobs
-----------------
``REPRO_PACKED_BACKEND``
    ``auto`` (default) / ``native`` / ``numpy``: backend selection.
``REPRO_PACKED_TIER``
    ``auto`` (default) probes ``native`` -> ``avx2`` -> ``portable`` in
    order; naming a tier pins it (falling back to numpy if that tier does
    not compile).
``REPRO_PACKED_THREADS``
    Worker threads for the native kernel: a positive integer, or ``auto``
    / ``0`` for the CPU count.  Default 1.  Threads partition disjoint
    query rows, so results are bit-identical at any thread count; the
    numpy backend ignores this knob.

The active backend can also be switched at runtime with
:func:`set_backend` (used by the equivalence tests to compare backends),
and :func:`reset_native_cache` drops the loaded library so a changed
``CC`` / ``REPRO_PACKED_TIER`` is honoured by the next call.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Callable, Dict, Optional

import numpy as np

#: Rows per query block of the numpy kernel; sized so the blocked AND/XOR
#: intermediate (block * m * W words) stays cache-resident for typical AMs.
_NUMPY_BLOCK_ROWS = 16

#: Compiler-flag tiers probed in order under ``REPRO_PACKED_TIER=auto``.
TIERS = ("native", "avx2", "portable")

_TIER_FLAGS = {
    "native": ["-march=native"],
    "avx2": ["-mavx2"],
    "portable": [],
}

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <pthread.h>

/* AM rows per tile: one tile of reference vectors stays hot in L1/L2
 * while every query row of the chunk streams over it. */
#define TILE_ROWS 16
#define MAX_THREADS 64

enum { OP_AND = 0, OP_XOR = 1 };

static void score_rows(const uint64_t* q, const uint64_t* r, int64_t* out,
                       size_t row_start, size_t row_stop, size_t m,
                       size_t words, int op) {
    for (size_t j0 = 0; j0 < m; j0 += TILE_ROWS) {
        size_t j1 = j0 + TILE_ROWS < m ? j0 + TILE_ROWS : m;
        for (size_t i = row_start; i < row_stop; ++i) {
            const uint64_t* qi = q + i * words;
            int64_t* oi = out + i * m;
            for (size_t j = j0; j < j1; ++j) {
                const uint64_t* rj = r + j * words;
                uint64_t acc = 0;
                if (op == OP_AND) {
                    for (size_t w = 0; w < words; ++w)
                        acc += (uint64_t)__builtin_popcountll(qi[w] & rj[w]);
                } else {
                    for (size_t w = 0; w < words; ++w)
                        acc += (uint64_t)__builtin_popcountll(qi[w] ^ rj[w]);
                }
                oi[j] = (int64_t)acc;
            }
        }
    }
}

typedef struct {
    const uint64_t* q;
    const uint64_t* r;
    int64_t* out;
    size_t row_start;
    size_t row_stop;
    size_t m;
    size_t words;
    int op;
} job_t;

static void* run_job(void* arg) {
    job_t* job = (job_t*)arg;
    score_rows(job->q, job->r, job->out, job->row_start, job->row_stop,
               job->m, job->words, job->op);
    return NULL;
}

/* Threads own disjoint slices of query rows (disjoint output rows), so no
 * synchronization is needed and the result is identical at any count. */
void pair_popcount(const uint64_t* q, const uint64_t* r, int64_t* out,
                   size_t n, size_t m, size_t words, int op, int threads) {
    if (threads > MAX_THREADS) threads = MAX_THREADS;
    if ((size_t)threads > n) threads = (int)n;
    if (threads < 2) {
        score_rows(q, r, out, 0, n, m, words, op);
        return;
    }
    pthread_t ids[MAX_THREADS];
    job_t jobs[MAX_THREADS];
    int spawned = 0;
    size_t chunk = (n + (size_t)threads - 1) / (size_t)threads;
    for (int t = 1; t < threads; ++t) {
        size_t start = (size_t)t * chunk;
        if (start >= n) break;
        size_t stop = start + chunk < n ? start + chunk : n;
        jobs[spawned].q = q;
        jobs[spawned].r = r;
        jobs[spawned].out = out;
        jobs[spawned].row_start = start;
        jobs[spawned].row_stop = stop;
        jobs[spawned].m = m;
        jobs[spawned].words = words;
        jobs[spawned].op = op;
        if (pthread_create(&ids[spawned], NULL, run_job, &jobs[spawned]) != 0) {
            /* Creation failed: run this slice inline instead. */
            run_job(&jobs[spawned]);
            continue;
        }
        ++spawned;
    }
    score_rows(q, r, out, 0, chunk < n ? chunk : n, m, words, op);
    for (int t = 0; t < spawned; ++t)
        pthread_join(ids[t], NULL);
}

/* Legacy single-threaded entry points kept for ABI stability. */
void and_popcount(const uint64_t* q, const uint64_t* r, int64_t* out,
                  size_t n, size_t m, size_t words) {
    pair_popcount(q, r, out, n, m, words, OP_AND, 1);
}

void xor_popcount(const uint64_t* q, const uint64_t* r, int64_t* out,
                  size_t n, size_t m, size_t words) {
    pair_popcount(q, r, out, n, m, words, OP_XOR, 1);
}

/* Shortlist re-rank for the pruned engine: each query scores only the row
 * groups named by its CSR candidate list and keeps the running best
 * (metric, original row) pair.  The metric is popcount(q AND r) for OP_AND
 * and -popcount(q XOR r) for OP_XOR, so "bigger metric wins, equal metric
 * and lower original row wins" reproduces the full scan's argmax tie rule
 * in both alphabets. */
static void sparse_scan_rows(const uint64_t* q, const uint64_t* r,
                             const int64_t* group_start,
                             const int64_t* orig_row,
                             const int64_t* list_start,
                             const int64_t* list_groups,
                             int64_t* best_metric, int64_t* best_row,
                             size_t row_begin, size_t row_end,
                             size_t words, int op) {
    for (size_t i = row_begin; i < row_end; ++i) {
        const uint64_t* qi = q + i * words;
        int64_t bm = best_metric[i];
        int64_t br = best_row[i];
        for (int64_t p = list_start[i]; p < list_start[i + 1]; ++p) {
            int64_t g = list_groups[p];
            for (int64_t j = group_start[g]; j < group_start[g + 1]; ++j) {
                const uint64_t* rj = r + (size_t)j * words;
                uint64_t acc = 0;
                if (op == OP_AND) {
                    for (size_t w = 0; w < words; ++w)
                        acc += (uint64_t)__builtin_popcountll(qi[w] & rj[w]);
                } else {
                    for (size_t w = 0; w < words; ++w)
                        acc += (uint64_t)__builtin_popcountll(qi[w] ^ rj[w]);
                }
                int64_t metric = (op == OP_AND) ? (int64_t)acc : -(int64_t)acc;
                int64_t row = orig_row[j];
                if (metric > bm || (metric == bm && row < br)) {
                    bm = metric;
                    br = row;
                }
            }
        }
        best_metric[i] = bm;
        best_row[i] = br;
    }
}

typedef struct {
    const uint64_t* q;
    const uint64_t* r;
    const int64_t* group_start;
    const int64_t* orig_row;
    const int64_t* list_start;
    const int64_t* list_groups;
    int64_t* best_metric;
    int64_t* best_row;
    size_t row_begin;
    size_t row_end;
    size_t words;
    int op;
} sparse_job_t;

static void* run_sparse_job(void* arg) {
    sparse_job_t* job = (sparse_job_t*)arg;
    sparse_scan_rows(job->q, job->r, job->group_start, job->orig_row,
                     job->list_start, job->list_groups, job->best_metric,
                     job->best_row, job->row_begin, job->row_end, job->words,
                     job->op);
    return NULL;
}

void sparse_scan(const uint64_t* q, const uint64_t* r,
                 const int64_t* group_start, const int64_t* orig_row,
                 const int64_t* list_start, const int64_t* list_groups,
                 int64_t* best_metric, int64_t* best_row,
                 size_t n, size_t words, int op, int threads) {
    if (threads > MAX_THREADS) threads = MAX_THREADS;
    if ((size_t)threads > n) threads = (int)n;
    if (threads < 2) {
        sparse_scan_rows(q, r, group_start, orig_row, list_start, list_groups,
                         best_metric, best_row, 0, n, words, op);
        return;
    }
    pthread_t ids[MAX_THREADS];
    sparse_job_t jobs[MAX_THREADS];
    int spawned = 0;
    size_t chunk = (n + (size_t)threads - 1) / (size_t)threads;
    for (int t = 1; t < threads; ++t) {
        size_t start = (size_t)t * chunk;
        if (start >= n) break;
        size_t stop = start + chunk < n ? start + chunk : n;
        jobs[spawned] = (sparse_job_t){q, r, group_start, orig_row, list_start,
                                       list_groups, best_metric, best_row,
                                       start, stop, words, op};
        if (pthread_create(&ids[spawned], NULL, run_sparse_job,
                           &jobs[spawned]) != 0) {
            run_sparse_job(&jobs[spawned]);
            continue;
        }
        ++spawned;
    }
    sparse_scan_rows(q, r, group_start, orig_row, list_start, list_groups,
                     best_metric, best_row, 0, chunk < n ? chunk : n, words,
                     op);
    for (int t = 0; t < spawned; ++t)
        pthread_join(ids[t], NULL);
}
"""

#: ``op`` codes shared with the C kernels.
OP_AND = 0
OP_XOR = 1

_lock = threading.Lock()
_native_lib: Optional[ctypes.CDLL] = None
_native_attempted = False
_forced_backend: Optional[str] = None
_build_info: Optional[Dict[str, str]] = None


def _env_backend() -> str:
    value = os.environ.get("REPRO_PACKED_BACKEND", "auto").strip().lower()
    if value not in ("auto", "native", "numpy"):
        raise ValueError(
            f"REPRO_PACKED_BACKEND must be auto, native or numpy, got {value!r}"
        )
    return value


def _env_tier() -> str:
    value = os.environ.get("REPRO_PACKED_TIER", "auto").strip().lower()
    if value != "auto" and value not in TIERS:
        choices = ", ".join(("auto",) + TIERS)
        raise ValueError(f"REPRO_PACKED_TIER must be one of {choices}, got {value!r}")
    return value


def _env_threads() -> int:
    value = os.environ.get("REPRO_PACKED_THREADS", "").strip().lower()
    if value in ("", "1"):
        return 1
    if value in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        threads = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_PACKED_THREADS must be a positive integer or 'auto', got {value!r}"
        ) from None
    if threads < 1:
        raise ValueError(f"REPRO_PACKED_THREADS must be >= 1, got {threads}")
    return threads


def set_backend(backend: Optional[str]) -> None:
    """Pin the kernel backend (``"native"`` / ``"numpy"``) or reset with None.

    Pinning ``"native"`` raises :class:`RuntimeError` when no native kernel
    can be built on this machine; ``"numpy"`` always succeeds.
    """
    global _forced_backend
    if backend is None:
        _forced_backend = None
        return
    if backend not in ("native", "numpy"):
        raise ValueError(f"backend must be 'native' or 'numpy', got {backend!r}")
    if backend == "native" and _load_native() is None:
        raise RuntimeError("native popcount kernel is unavailable on this machine")
    _forced_backend = backend


def backend_name() -> str:
    """Name of the backend the next kernel call will use."""
    if _forced_backend is not None:
        return _forced_backend
    env = _env_backend()
    if env == "numpy":
        return "numpy"
    lib = _load_native()
    if lib is None:
        if env == "native":
            raise RuntimeError("REPRO_PACKED_BACKEND=native but no C compiler works")
        return "numpy"
    return "native"


def native_build_info() -> Optional[Dict[str, str]]:
    """Tier / compiler / library of the loaded native kernel (None if absent).

    Triggers a build attempt if none has happened yet, so callers see the
    same answer the next kernel call would.
    """
    if _load_native() is None:
        return None
    assert _build_info is not None
    return dict(_build_info)


def reset_native_cache() -> None:
    """Forget the loaded native library so the next call re-probes.

    The on-disk compile cache is content-addressed and survives; this only
    clears the in-process state, letting tests (and operators) change
    ``CC`` / ``REPRO_PACKED_TIER`` and have it take effect.
    """
    global _native_lib, _native_attempted, _build_info
    with _lock:
        _native_lib = None
        _native_attempted = False
        _build_info = None


# --------------------------------------------------------------- native build
def _cache_dir(digest: str) -> str:
    tag = f"repro-packed-{digest[:16]}-py{sys.version_info[0]}{sys.version_info[1]}"
    return os.path.join(tempfile.gettempdir(), tag)


def _compile_tier(compiler: str, tier: str) -> Optional[str]:
    """Compile one flag tier into its cached shared object; None on failure."""
    digest = hashlib.sha256((_C_SOURCE + compiler + tier).encode()).hexdigest()
    directory = _cache_dir(digest)
    library = os.path.join(directory, "kernels.so")
    if os.path.exists(library):
        return library
    try:
        os.makedirs(directory, exist_ok=True)
        source = os.path.join(directory, "kernels.c")
        with open(source, "w") as handle:
            handle.write(_C_SOURCE)
        scratch = library + f".tmp{os.getpid()}"
        command = [
            compiler,
            "-O3",
            "-funroll-loops",
            "-shared",
            "-fPIC",
            "-pthread",
            *_TIER_FLAGS[tier],
            "-o",
            scratch,
            source,
        ]
        result = subprocess.run(command, capture_output=True, timeout=120, check=False)
        if result.returncode == 0:
            os.replace(scratch, library)  # atomic against concurrent builds
            return library
        return None
    except (OSError, subprocess.SubprocessError):
        return None


def _compile_native() -> Optional[Dict[str, str]]:
    """Compile the first tier that works; returns build info or None."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    env_tier = _env_tier()
    tiers = TIERS if env_tier == "auto" else (env_tier,)
    for tier in tiers:
        library = _compile_tier(compiler, tier)
        if library is not None:
            return {"tier": tier, "compiler": compiler, "library": library}
    return None


def _load_native() -> Optional[ctypes.CDLL]:
    """Load (building if needed) the native kernel library; None on failure."""
    global _native_lib, _native_attempted, _build_info
    if _native_lib is not None:
        return _native_lib
    if _native_attempted:
        return None
    with _lock:
        if _native_lib is not None or _native_attempted:
            return _native_lib
        _native_attempted = True
        info = _compile_native()
        if info is None:
            return None
        try:
            lib = ctypes.CDLL(info["library"])
        except OSError:
            return None
        u64 = ctypes.POINTER(ctypes.c_uint64)
        i64 = ctypes.POINTER(ctypes.c_int64)
        size_t = ctypes.c_size_t
        fn = lib.pair_popcount
        fn.argtypes = [
            u64, u64, i64, size_t, size_t, size_t, ctypes.c_int, ctypes.c_int
        ]
        fn.restype = None
        fn = lib.sparse_scan
        fn.argtypes = [
            u64,
            u64,
            i64,
            i64,
            i64,
            i64,
            i64,
            i64,
            size_t,
            size_t,
            ctypes.c_int,
            ctypes.c_int,
        ]
        fn.restype = None
        _build_info = info
        _native_lib = lib
    return _native_lib


# -------------------------------------------------------------------- kernels
def _check_operands(queries: np.ndarray, references: np.ndarray) -> None:
    if queries.ndim != 2 or references.ndim != 2:
        raise ValueError("packed kernels expect 2-D (count, words) operands")
    if queries.dtype != np.uint64 or references.dtype != np.uint64:
        raise ValueError("packed kernels expect uint64 words")
    if queries.shape[1] != references.shape[1]:
        raise ValueError(
            f"word-count mismatch: {queries.shape[1]} vs {references.shape[1]}"
        )


def _native_pair_popcount(
    queries: np.ndarray, references: np.ndarray, op: int, threads: int
) -> np.ndarray:
    lib = _load_native()
    assert lib is not None
    q = np.ascontiguousarray(queries)
    r = np.ascontiguousarray(references)
    out = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    u64 = ctypes.POINTER(ctypes.c_uint64)
    i64 = ctypes.POINTER(ctypes.c_int64)
    lib.pair_popcount(
        q.ctypes.data_as(u64),
        r.ctypes.data_as(u64),
        out.ctypes.data_as(i64),
        q.shape[0],
        r.shape[0],
        q.shape[1],
        op,
        threads,
    )
    return out


def _numpy_pair_popcount(
    queries: np.ndarray, references: np.ndarray, op: Callable
) -> np.ndarray:
    n = queries.shape[0]
    out = np.empty((n, references.shape[0]), dtype=np.int64)
    # Block over queries so the (block, m, W) intermediate stays in cache.
    for start in range(0, n, _NUMPY_BLOCK_ROWS):
        stop = min(start + _NUMPY_BLOCK_ROWS, n)
        combined = op(queries[start:stop, None, :], references[None, :, :])
        out[start:stop] = np.bitwise_count(combined).sum(axis=-1, dtype=np.int64)
    return out


def and_popcount(
    queries: np.ndarray, references: np.ndarray, threads: Optional[int] = None
) -> np.ndarray:
    """``out[i, j] = popcount(queries[i] AND references[j])`` over words."""
    _check_operands(queries, references)
    if backend_name() == "native":
        resolved = _env_threads() if threads is None else max(1, int(threads))
        return _native_pair_popcount(queries, references, OP_AND, resolved)
    return _numpy_pair_popcount(queries, references, np.bitwise_and)


def xor_popcount(
    queries: np.ndarray, references: np.ndarray, threads: Optional[int] = None
) -> np.ndarray:
    """``out[i, j] = popcount(queries[i] XOR references[j])`` over words."""
    _check_operands(queries, references)
    if backend_name() == "native":
        resolved = _env_threads() if threads is None else max(1, int(threads))
        return _native_pair_popcount(queries, references, OP_XOR, resolved)
    return _numpy_pair_popcount(queries, references, np.bitwise_xor)


def sparse_scan_available() -> bool:
    """Whether the native CSR shortlist kernel will be used."""
    return backend_name() == "native"


def sparse_scan(
    queries: np.ndarray,
    references: np.ndarray,
    group_start: np.ndarray,
    orig_row: np.ndarray,
    list_start: np.ndarray,
    list_groups: np.ndarray,
    best_metric: np.ndarray,
    best_row: np.ndarray,
    op: int,
    threads: Optional[int] = None,
) -> None:
    """CSR shortlist re-rank (native backend only; see the C kernel).

    Query ``i`` exactly scores the rows of every group in
    ``list_groups[list_start[i]:list_start[i + 1]]`` (rows of group ``g``
    are ``references[group_start[g]:group_start[g + 1]]``, with original
    row ids in ``orig_row``) and folds the result into the running
    ``(best_metric, best_row)`` pair in place.  The metric is
    ``popcount(q AND r)`` for ``op`` :data:`OP_AND` and
    ``-popcount(q XOR r)`` for :data:`OP_XOR`, so higher metric -- equal
    metric, lower original row -- matches the full scan's argmax.

    Callers must check :func:`sparse_scan_available` first; the numpy
    backend has no CSR kernel (the pruned engine keeps a pure-numpy
    re-rank loop as its correctness reference).
    """
    lib = _load_native()
    if lib is None or backend_name() != "native":
        raise RuntimeError("sparse_scan requires the native kernel backend")
    _check_operands(queries, references)
    resolved = _env_threads() if threads is None else max(1, int(threads))
    u64 = ctypes.POINTER(ctypes.c_uint64)
    i64 = ctypes.POINTER(ctypes.c_int64)
    lib.sparse_scan(
        np.ascontiguousarray(queries).ctypes.data_as(u64),
        np.ascontiguousarray(references).ctypes.data_as(u64),
        np.ascontiguousarray(group_start, dtype=np.int64).ctypes.data_as(i64),
        np.ascontiguousarray(orig_row, dtype=np.int64).ctypes.data_as(i64),
        np.ascontiguousarray(list_start, dtype=np.int64).ctypes.data_as(i64),
        np.ascontiguousarray(list_groups, dtype=np.int64).ctypes.data_as(i64),
        best_metric.ctypes.data_as(i64),
        best_row.ctypes.data_as(i64),
        queries.shape[0],
        queries.shape[1],
        op,
        resolved,
    )
