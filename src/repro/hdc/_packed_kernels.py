"""Popcount kernels behind the bit-packed similarity engine.

Two interchangeable backends compute the ``(n, m)`` pair matrix of
``popcount(q AND r)`` (binary dot similarity) or ``popcount(q XOR r)``
(Hamming distance) over ``uint64``-packed hypervectors:

``numpy``
    A cache-blocked pure-numpy kernel built on :func:`numpy.bitwise_count`.
    Always available; used as the correctness reference.

``native``
    A ~30-line C kernel compiled on first use with the system C compiler
    (``cc``/``gcc``) and loaded through :mod:`ctypes`.  On a typical x86-64
    host the hardware ``popcnt`` path is an order of magnitude faster than
    the blocked numpy kernel because the ``(n, m, W)`` AND/XOR intermediate
    never materializes.  Compilation happens once per machine into a
    content-addressed cache directory under the system temp dir; any
    failure (no compiler, sandboxed filesystem, exotic platform) silently
    falls back to the numpy backend.

The active backend is chosen automatically, can be pinned with the
``REPRO_PACKED_BACKEND`` environment variable (``auto`` / ``native`` /
``numpy``) and can be switched at runtime with :func:`set_backend` (used by
the equivalence tests to compare both backends).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Callable, Optional

import numpy as np

#: Rows per query block of the numpy kernel; sized so the blocked AND/XOR
#: intermediate (block * m * W words) stays cache-resident for typical AMs.
_NUMPY_BLOCK_ROWS = 16

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

void and_popcount(const uint64_t* q, const uint64_t* r, int64_t* out,
                  size_t n, size_t m, size_t words) {
    for (size_t i = 0; i < n; ++i) {
        const uint64_t* qi = q + i * words;
        for (size_t j = 0; j < m; ++j) {
            const uint64_t* rj = r + j * words;
            uint64_t acc = 0;
            for (size_t w = 0; w < words; ++w)
                acc += (uint64_t)__builtin_popcountll(qi[w] & rj[w]);
            out[i * m + j] = (int64_t)acc;
        }
    }
}

void xor_popcount(const uint64_t* q, const uint64_t* r, int64_t* out,
                  size_t n, size_t m, size_t words) {
    for (size_t i = 0; i < n; ++i) {
        const uint64_t* qi = q + i * words;
        for (size_t j = 0; j < m; ++j) {
            const uint64_t* rj = r + j * words;
            uint64_t acc = 0;
            for (size_t w = 0; w < words; ++w)
                acc += (uint64_t)__builtin_popcountll(qi[w] ^ rj[w]);
            out[i * m + j] = (int64_t)acc;
        }
    }
}
"""

_lock = threading.Lock()
_native_lib: Optional[ctypes.CDLL] = None
_native_attempted = False
_forced_backend: Optional[str] = None


def _env_backend() -> str:
    value = os.environ.get("REPRO_PACKED_BACKEND", "auto").strip().lower()
    if value not in ("auto", "native", "numpy"):
        raise ValueError(
            f"REPRO_PACKED_BACKEND must be auto, native or numpy, got {value!r}"
        )
    return value


def set_backend(backend: Optional[str]) -> None:
    """Pin the kernel backend (``"native"`` / ``"numpy"``) or reset with None.

    Pinning ``"native"`` raises :class:`RuntimeError` when no native kernel
    can be built on this machine; ``"numpy"`` always succeeds.
    """
    global _forced_backend
    if backend is None:
        _forced_backend = None
        return
    if backend not in ("native", "numpy"):
        raise ValueError(f"backend must be 'native' or 'numpy', got {backend!r}")
    if backend == "native" and _load_native() is None:
        raise RuntimeError("native popcount kernel is unavailable on this machine")
    _forced_backend = backend


def backend_name() -> str:
    """Name of the backend the next kernel call will use."""
    if _forced_backend is not None:
        return _forced_backend
    env = _env_backend()
    if env == "numpy":
        return "numpy"
    lib = _load_native()
    if lib is None:
        if env == "native":
            raise RuntimeError("REPRO_PACKED_BACKEND=native but no C compiler works")
        return "numpy"
    return "native"


# --------------------------------------------------------------- native build
def _cache_dir(digest: str) -> str:
    tag = f"repro-packed-{digest[:16]}-py{sys.version_info[0]}{sys.version_info[1]}"
    return os.path.join(tempfile.gettempdir(), tag)


def _compile_native() -> Optional[str]:
    """Compile the C kernels into a cached shared object; None on failure."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    digest = hashlib.sha256((_C_SOURCE + compiler).encode()).hexdigest()
    directory = _cache_dir(digest)
    library = os.path.join(directory, "kernels.so")
    if os.path.exists(library):
        return library
    try:
        os.makedirs(directory, exist_ok=True)
        source = os.path.join(directory, "kernels.c")
        with open(source, "w") as handle:
            handle.write(_C_SOURCE)
        for extra in (["-march=native"], []):  # fall back if -march is rejected
            scratch = library + f".tmp{os.getpid()}"
            command = [
                compiler,
                "-O3",
                "-funroll-loops",
                "-shared",
                "-fPIC",
                *extra,
                "-o",
                scratch,
                source,
            ]
            result = subprocess.run(
                command, capture_output=True, timeout=120, check=False
            )
            if result.returncode == 0:
                os.replace(scratch, library)  # atomic against concurrent builds
                return library
        return None
    except (OSError, subprocess.SubprocessError):
        return None


def _load_native() -> Optional[ctypes.CDLL]:
    """Load (building if needed) the native kernel library; None on failure."""
    global _native_lib, _native_attempted
    if _native_lib is not None:
        return _native_lib
    if _native_attempted:
        return None
    with _lock:
        if _native_lib is not None or _native_attempted:
            return _native_lib
        _native_attempted = True
        library = _compile_native()
        if library is None:
            return None
        try:
            lib = ctypes.CDLL(library)
        except OSError:
            return None
        u64 = ctypes.POINTER(ctypes.c_uint64)
        i64 = ctypes.POINTER(ctypes.c_int64)
        size_t = ctypes.c_size_t
        for name in ("and_popcount", "xor_popcount"):
            fn = getattr(lib, name)
            fn.argtypes = [u64, u64, i64, size_t, size_t, size_t]
            fn.restype = None
        _native_lib = lib
    return _native_lib


# -------------------------------------------------------------------- kernels
def _check_operands(queries: np.ndarray, references: np.ndarray) -> None:
    if queries.ndim != 2 or references.ndim != 2:
        raise ValueError("packed kernels expect 2-D (count, words) operands")
    if queries.dtype != np.uint64 or references.dtype != np.uint64:
        raise ValueError("packed kernels expect uint64 words")
    if queries.shape[1] != references.shape[1]:
        raise ValueError(
            f"word-count mismatch: {queries.shape[1]} vs {references.shape[1]}"
        )


def _native_pair_popcount(
    queries: np.ndarray, references: np.ndarray, symbol: str
) -> np.ndarray:
    lib = _load_native()
    assert lib is not None
    q = np.ascontiguousarray(queries)
    r = np.ascontiguousarray(references)
    out = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    u64 = ctypes.POINTER(ctypes.c_uint64)
    i64 = ctypes.POINTER(ctypes.c_int64)
    getattr(lib, symbol)(
        q.ctypes.data_as(u64),
        r.ctypes.data_as(u64),
        out.ctypes.data_as(i64),
        q.shape[0],
        r.shape[0],
        q.shape[1],
    )
    return out


def _numpy_pair_popcount(
    queries: np.ndarray, references: np.ndarray, op: Callable
) -> np.ndarray:
    n = queries.shape[0]
    out = np.empty((n, references.shape[0]), dtype=np.int64)
    # Block over queries so the (block, m, W) intermediate stays in cache.
    for start in range(0, n, _NUMPY_BLOCK_ROWS):
        stop = min(start + _NUMPY_BLOCK_ROWS, n)
        combined = op(queries[start:stop, None, :], references[None, :, :])
        out[start:stop] = np.bitwise_count(combined).sum(axis=-1, dtype=np.int64)
    return out


def and_popcount(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """``out[i, j] = popcount(queries[i] AND references[j])`` over words."""
    _check_operands(queries, references)
    if backend_name() == "native":
        return _native_pair_popcount(queries, references, "and_popcount")
    return _numpy_pair_popcount(queries, references, np.bitwise_and)


def xor_popcount(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """``out[i, j] = popcount(queries[i] XOR references[j])`` over words."""
    _check_operands(queries, references)
    if backend_name() == "native":
        return _native_pair_popcount(queries, references, "xor_popcount")
    return _numpy_pair_popcount(queries, references, np.bitwise_xor)
