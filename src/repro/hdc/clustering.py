"""K-means clustering under the dot-similarity metric.

MEMHD's clustering-based initialization (Sec. III-A) runs K-means *per
class* over the encoded sample hypervectors.  The paper is explicit that the
distance metric used by the clustering must be the same dot similarity later
used for associative search, so that the resulting centroids are optimized
for the search operation the IMC array actually performs.

For unit-norm (or equal-norm bipolar) vectors, maximizing dot similarity is
equivalent to classical Euclidean K-means, but encoded hypervectors after
bundling are not equal-norm in general, so the assignment step here uses the
dot product directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.hdc.hypervector import _as_generator
from repro.hdc.similarity import dot_similarity


@dataclass
class KMeansResult:
    """Outcome of a :func:`dot_kmeans` run.

    Attributes
    ----------
    centroids:
        ``(k, D)`` float64 centroid matrix.
    assignments:
        ``(n,)`` integer cluster index per input sample.
    inertia:
        Sum over samples of the (negative) dot similarity to the assigned
        centroid; lower is better.  Kept for convergence diagnostics.
    iterations:
        Number of Lloyd iterations actually executed.
    converged:
        True when the assignment vector stopped changing before
        ``max_iterations`` was reached.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of samples assigned to each cluster."""
        return np.bincount(self.assignments, minlength=self.num_clusters)


def _init_centroids_kmeanspp(
    samples: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """K-means++ style seeding adapted to the dot-similarity metric.

    The first centroid is a uniformly random sample; each subsequent
    centroid is drawn with probability proportional to the sample's
    "dissimilarity gap" to the closest already-chosen centroid, which spreads
    the initial centroids across the point cloud.
    """
    n = samples.shape[0]
    chosen = [int(rng.integers(0, n))]
    for _ in range(1, k):
        sims = dot_similarity(samples, samples[chosen])
        sims = np.atleast_2d(sims)
        if sims.shape[0] != n:
            sims = sims.reshape(n, -1)
        best = sims.max(axis=1)
        # Convert "most similar" into a non-negative dissimilarity weight.
        weights = best.max() - best
        total = float(weights.sum())
        if total <= 0.0:
            # All samples equally similar to the chosen set: pick uniformly.
            candidate = int(rng.integers(0, n))
        else:
            candidate = int(rng.choice(n, p=weights / total))
        chosen.append(candidate)
    return samples[chosen].astype(np.float64).copy()


def dot_kmeans(
    samples: np.ndarray,
    num_clusters: int,
    max_iterations: int = 50,
    rng: Optional[Union[int, np.random.Generator]] = None,
    init: str = "kmeans++",
) -> KMeansResult:
    """Lloyd-style K-means using dot similarity for the assignment step.

    Parameters
    ----------
    samples:
        ``(n, D)`` array of (encoded) sample hypervectors.
    num_clusters:
        Number of clusters ``k``; must satisfy ``1 <= k <= n``.
    max_iterations:
        Maximum number of Lloyd iterations.
    rng:
        Seed or generator controlling the initialization and empty-cluster
        re-seeding.
    init:
        ``"kmeans++"`` (default) or ``"random"`` (uniform sample choice).

    Returns
    -------
    KMeansResult
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("samples must be a 2-D array")
    n = arr.shape[0]
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if num_clusters > n:
        raise ValueError(
            f"num_clusters ({num_clusters}) cannot exceed the number of "
            f"samples ({n})"
        )
    gen = _as_generator(rng)

    if num_clusters == 1:
        centroid = arr.mean(axis=0, keepdims=True)
        assignments = np.zeros(n, dtype=np.int64)
        inertia = -float(dot_similarity(arr, centroid).sum())
        return KMeansResult(centroid, assignments, inertia, 0, True)

    if init == "kmeans++":
        centroids = _init_centroids_kmeanspp(arr, num_clusters, gen)
    elif init == "random":
        indices = gen.choice(n, size=num_clusters, replace=False)
        centroids = arr[indices].astype(np.float64).copy()
    else:
        raise ValueError(f"unknown init method: {init!r}")

    assignments = np.full(n, -1, dtype=np.int64)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        sims = dot_similarity(arr, centroids)  # (n, k)
        new_assignments = np.argmax(sims, axis=1)
        # Re-seed empty clusters from the least-well-represented samples so
        # that every initial class vector covers part of the point cloud.
        counts = np.bincount(new_assignments, minlength=num_clusters)
        empty = np.flatnonzero(counts == 0)
        if empty.size:
            best = sims[np.arange(n), new_assignments]
            worst_samples = np.argsort(best)[: empty.size]
            for cluster, sample in zip(empty, worst_samples):
                new_assignments[sample] = cluster
        if np.array_equal(new_assignments, assignments):
            converged = True
            break
        assignments = new_assignments
        for cluster in range(num_clusters):
            members = arr[assignments == cluster]
            if members.size:
                centroids[cluster] = members.mean(axis=0)

    sims = dot_similarity(arr, centroids)
    inertia = -float(sims[np.arange(n), assignments].sum())
    return KMeansResult(centroids, assignments, inertia, iterations, converged)


def classwise_clustering(
    samples: np.ndarray,
    labels: np.ndarray,
    clusters_per_class: Union[int, Sequence[int], Dict[int, int]],
    max_iterations: int = 50,
    rng: Optional[Union[int, np.random.Generator]] = None,
    init: str = "kmeans++",
) -> Dict[int, KMeansResult]:
    """Run :func:`dot_kmeans` independently on each class.

    Parameters
    ----------
    samples:
        ``(n, D)`` encoded sample hypervectors.
    labels:
        ``(n,)`` integer class labels.
    clusters_per_class:
        Either a single integer applied to every class, a sequence indexed
        by class id, or an explicit ``{class: k}`` mapping.  A requested
        cluster count larger than the number of class samples is clipped.
    rng:
        Seed or generator; each class gets an independent child stream.

    Returns
    -------
    dict
        ``{class_label: KMeansResult}`` for every class present in
        ``labels``.
    """
    arr = np.asarray(samples, dtype=np.float64)
    lab = np.asarray(labels)
    if arr.shape[0] != lab.shape[0]:
        raise ValueError("samples and labels must have the same length")
    gen = _as_generator(rng)
    classes = np.unique(lab)

    def clusters_for(class_label: int) -> int:
        if isinstance(clusters_per_class, dict):
            return int(clusters_per_class[class_label])
        if isinstance(clusters_per_class, (list, tuple, np.ndarray)):
            return int(clusters_per_class[int(class_label)])
        return int(clusters_per_class)

    results: Dict[int, KMeansResult] = {}
    for class_label in classes:
        class_samples = arr[lab == class_label]
        requested = clusters_for(int(class_label))
        k = max(1, min(requested, class_samples.shape[0]))
        child = np.random.default_rng(gen.integers(0, 2**63 - 1))
        results[int(class_label)] = dot_kmeans(
            class_samples, k, max_iterations=max_iterations, rng=child, init=init
        )
    return results
