"""Feature-vector to hypervector encoders.

Two encoder families appear in the paper (Sec. II-B):

``RandomProjectionEncoder``
    ``H = M^T F`` -- a matrix-vector multiplication between a fixed random
    ``f x D`` projection matrix ``M`` and the ``f``-dimensional input ``F``.
    This encoder maps directly onto an IMC array (the projection matrix is
    stored in the array, the input drives the rows), which is why BasicHDC
    and MEMHD use it.

``IDLevelEncoder``
    ``H = sum_i ID_i * L_{x_i}`` -- each feature position gets a random
    *ID* hypervector and each quantized feature value a correlated *level*
    hypervector; the encoding binds them per position and bundles across
    positions.  SearcHD, QuantHD and LeHDC use this encoder (with
    ``L = 256`` levels in the paper's evaluation).

Both encoders expose the same small interface (:class:`Encoder`) so that the
classifiers and the evaluation harness can treat them interchangeably.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from repro.hdc.hypervector import (
    _as_generator,
    bipolarize,
    level_hypervectors,
    random_bipolar_hypervectors,
    random_gaussian_hypervectors,
    to_binary,
)


class Encoder(abc.ABC):
    """Common interface for feature-to-hypervector encoders.

    Attributes
    ----------
    num_features:
        Expected input feature dimensionality ``f``.
    dimension:
        Output hypervector dimensionality ``D``.
    """

    def __init__(self, num_features: int, dimension: int) -> None:
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.num_features = int(num_features)
        self.dimension = int(dimension)

    @abc.abstractmethod
    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode a ``(n, f)`` batch (or single ``(f,)`` vector) of features.

        Returns a ``(n, D)`` (or ``(D,)``) array of encoded hypervectors.
        The output alphabet depends on the encoder configuration (bipolar by
        default).
        """

    @abc.abstractmethod
    def memory_bits(self) -> int:
        """Number of bits needed to store the encoder parameters."""

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.encode(features)

    def _validate(self, features: np.ndarray) -> np.ndarray:
        arr = np.asarray(features, dtype=np.float64)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[None, :]
        if arr.ndim != 2:
            raise ValueError(f"expected 1-D or 2-D features, got ndim={arr.ndim}")
        if arr.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {arr.shape[1]}"
            )
        self._squeeze_output = squeeze
        return arr

    def _maybe_squeeze(self, encoded: np.ndarray) -> np.ndarray:
        if getattr(self, "_squeeze_output", False):
            return encoded[0]
        return encoded


def check_encoder_shape(encoder: Encoder, num_features: int, dimension: int) -> Encoder:
    """Validate that an adopted encoder matches a model's expected shape.

    Models accept a pre-built ``encoder`` (checkpoint restoration, encoder
    sharing) instead of drawing fresh random codebooks; this guards the
    hand-off.

    Parameters
    ----------
    encoder:
        The encoder being adopted.
    num_features / dimension:
        The input width ``f`` and hypervector dimensionality ``D`` the
        model was configured for.

    Returns
    -------
    Encoder
        ``encoder``, unchanged.

    Raises
    ------
    ValueError
        When the encoder's shape disagrees with the model's configuration.
    """
    if (encoder.num_features, encoder.dimension) != (num_features, dimension):
        raise ValueError(
            f"encoder shape ({encoder.num_features}, {encoder.dimension}) does "
            f"not match the model configuration ({num_features}, {dimension})"
        )
    return encoder


class RandomProjectionEncoder(Encoder):
    """Random-projection (MVM) encoder: ``H = sign(M^T F)``.

    Parameters
    ----------
    num_features:
        Input feature dimensionality ``f``.
    dimension:
        Output hypervector dimensionality ``D``.
    binary_projection:
        When ``True`` (default, matching the paper's IMC mapping) the
        projection matrix entries are drawn from ``{-1, +1}`` and are stored
        in the IMC array as single bits.  When ``False`` a dense Gaussian
        matrix is used (the floating-point variant of the paper's Ref. [12]).
    quantize_output:
        When ``True`` (default) the projected vector is passed through the
        sign function, producing a bipolar hypervector; when ``False`` the
        raw real-valued projection is returned.
    rng:
        Seed or generator for the projection matrix.
    """

    def __init__(
        self,
        num_features: int,
        dimension: int,
        binary_projection: bool = True,
        quantize_output: bool = True,
        rng: Optional[Union[int, np.random.Generator]] = None,
    ) -> None:
        super().__init__(num_features, dimension)
        gen = _as_generator(rng)
        self.binary_projection = bool(binary_projection)
        self.quantize_output = bool(quantize_output)
        if binary_projection:
            # (f, D) bipolar matrix; column d is the base hypervector B_d.
            self.projection = random_bipolar_hypervectors(
                num_features, dimension, gen
            ).astype(np.int8)
        else:
            self.projection = random_gaussian_hypervectors(
                num_features, dimension, gen, scale=1.0 / np.sqrt(num_features)
            )

    @classmethod
    def from_projection(
        cls,
        projection: np.ndarray,
        binary_projection: bool = True,
        quantize_output: bool = True,
    ) -> "RandomProjectionEncoder":
        """Rebuild an encoder around an existing projection matrix.

        Used by checkpoint restoration (:mod:`repro.io.checkpoint`): the
        saved ``(f, D)`` projection matrix is adopted verbatim instead of
        drawing a fresh random one, so a restored encoder produces
        bit-identical hypervectors.

        Parameters
        ----------
        projection:
            ``(f, D)`` projection matrix (bipolar ``int8`` entries when
            ``binary_projection`` is true, ``float64`` otherwise).
        binary_projection:
            Whether ``projection`` holds ``{-1, +1}`` single-bit entries.
        quantize_output:
            Whether :meth:`encode` sign-quantizes its output.

        Returns
        -------
        RandomProjectionEncoder
            An encoder whose :meth:`encode` matches the saved one bit for
            bit.
        """
        matrix = np.asarray(projection)
        if matrix.ndim != 2:
            raise ValueError("projection must be a 2-D (f, D) matrix")
        self = object.__new__(cls)
        Encoder.__init__(self, matrix.shape[0], matrix.shape[1])
        self.binary_projection = bool(binary_projection)
        self.quantize_output = bool(quantize_output)
        if binary_projection:
            self.projection = matrix.astype(np.int8)
        else:
            self.projection = matrix.astype(np.float64)
        return self

    def encode(self, features: np.ndarray) -> np.ndarray:
        arr = self._validate(features)
        projected = arr @ self.projection.astype(np.float64)
        if self.quantize_output:
            encoded = bipolarize(projected)
        else:
            encoded = projected.astype(np.float32)
        return self._maybe_squeeze(encoded)

    def encode_binary(self, features: np.ndarray) -> np.ndarray:
        """Encode and return the ``{0, 1}`` representation of the result."""
        encoded = self.encode(features)
        if not self.quantize_output:
            raise ValueError("encode_binary requires quantize_output=True")
        return to_binary(encoded)

    def memory_bits(self) -> int:
        """Encoder storage: ``f * D`` cells (1 bit binary, 32 bits FP)."""
        bits_per_entry = 1 if self.binary_projection else 32
        return self.num_features * self.dimension * bits_per_entry

    @property
    def projection_binary(self) -> np.ndarray:
        """The projection matrix in ``{0, 1}`` form, as mapped into the array."""
        if not self.binary_projection:
            raise ValueError("projection_binary requires binary_projection=True")
        return to_binary(self.projection)


class IDLevelEncoder(Encoder):
    """ID-Level encoder: ``H = sign(sum_i ID_i * L_{x_i})``.

    Each of the ``f`` feature positions owns a random bipolar *ID*
    hypervector; feature values are linearly quantized into ``num_levels``
    buckets, each associated with a correlated *level* hypervector.  The
    encoding binds ID and level per position and bundles over positions.

    Parameters
    ----------
    num_features:
        Input feature dimensionality ``f``.
    dimension:
        Output hypervector dimensionality ``D``.
    num_levels:
        Number of quantization levels ``L`` (256 in the paper's baselines).
    value_range:
        ``(low, high)`` range used to quantize feature values.  Values
        outside the range are clipped.  Defaults to ``(0, 1)``, matching the
        library's normalized dataset preprocessing.
    quantize_output:
        When ``True`` (default) the bundled sum is sign-quantized to a
        bipolar hypervector.
    rng:
        Seed or generator for ID and level hypervector creation.
    """

    def __init__(
        self,
        num_features: int,
        dimension: int,
        num_levels: int = 256,
        value_range: tuple = (0.0, 1.0),
        quantize_output: bool = True,
        rng: Optional[Union[int, np.random.Generator]] = None,
    ) -> None:
        super().__init__(num_features, dimension)
        if num_levels < 2:
            raise ValueError(f"num_levels must be >= 2, got {num_levels}")
        low, high = float(value_range[0]), float(value_range[1])
        if not high > low:
            raise ValueError("value_range must satisfy high > low")
        gen = _as_generator(rng)
        self.num_levels = int(num_levels)
        self.value_low = low
        self.value_high = high
        self.quantize_output = bool(quantize_output)
        self.id_vectors = random_bipolar_hypervectors(num_features, dimension, gen)
        self.level_vectors = level_hypervectors(num_levels, dimension, gen)

    @classmethod
    def from_vectors(
        cls,
        id_vectors: np.ndarray,
        level_vectors: np.ndarray,
        value_range: tuple = (0.0, 1.0),
        quantize_output: bool = True,
    ) -> "IDLevelEncoder":
        """Rebuild an encoder around existing ID and level hypervectors.

        Used by checkpoint restoration (:mod:`repro.io.checkpoint`): the
        saved ID / level codebooks are adopted verbatim instead of drawing
        fresh random ones, so a restored encoder produces bit-identical
        hypervectors.

        Parameters
        ----------
        id_vectors:
            ``(f, D)`` bipolar per-position ID hypervectors.
        level_vectors:
            ``(L, D)`` correlated level hypervectors.
        value_range:
            ``(low, high)`` quantization range of the original encoder.
        quantize_output:
            Whether :meth:`encode` sign-quantizes its output.

        Returns
        -------
        IDLevelEncoder
            An encoder whose :meth:`encode` matches the saved one bit for
            bit.
        """
        ids = np.asarray(id_vectors)
        levels = np.asarray(level_vectors)
        if ids.ndim != 2 or levels.ndim != 2:
            raise ValueError("id_vectors and level_vectors must be 2-D")
        if ids.shape[1] != levels.shape[1]:
            raise ValueError("id_vectors and level_vectors dimension mismatch")
        if levels.shape[0] < 2:
            raise ValueError("need at least 2 level hypervectors")
        low, high = float(value_range[0]), float(value_range[1])
        if not high > low:
            raise ValueError("value_range must satisfy high > low")
        self = object.__new__(cls)
        Encoder.__init__(self, ids.shape[0], ids.shape[1])
        self.num_levels = int(levels.shape[0])
        self.value_low = low
        self.value_high = high
        self.quantize_output = bool(quantize_output)
        self.id_vectors = ids
        self.level_vectors = levels
        return self

    def quantize_values(self, features: np.ndarray) -> np.ndarray:
        """Map raw feature values to integer level indices in ``[0, L-1]``."""
        arr = np.asarray(features, dtype=np.float64)
        scaled = (arr - self.value_low) / (self.value_high - self.value_low)
        clipped = np.clip(scaled, 0.0, 1.0)
        return np.minimum(
            (clipped * self.num_levels).astype(np.int64), self.num_levels - 1
        )

    def encode(self, features: np.ndarray) -> np.ndarray:
        arr = self._validate(features)
        levels = self.quantize_values(arr)  # (n, f) integer level indices
        n = arr.shape[0]
        accumulated = np.zeros((n, self.dimension), dtype=np.int64)
        # Bind each position's ID with the level hypervector of its value,
        # then bundle over positions.  Vectorized per sample batch over
        # feature positions to keep memory bounded for wide inputs.
        id_vectors = self.id_vectors.astype(np.int64)
        level_vectors = self.level_vectors.astype(np.int64)
        for position in range(self.num_features):
            level_rows = level_vectors[levels[:, position]]  # (n, D)
            accumulated += id_vectors[position][None, :] * level_rows
        if self.quantize_output:
            encoded = bipolarize(accumulated)
        else:
            encoded = accumulated.astype(np.float32)
        return self._maybe_squeeze(encoded)

    def memory_bits(self) -> int:
        """Encoder storage: ``(f + L) * D`` single-bit cells (Table I)."""
        return (self.num_features + self.num_levels) * self.dimension
