"""Hypervector creation and elementary HDC algebra.

Hypervectors are represented as numpy arrays.  Two discrete alphabets are
used throughout the library:

``BINARY``
    Values in ``{0, 1}``.  This is the representation that is physically
    stored in an IMC array cell (one SRAM/ReRAM cell per element) and the
    representation MEMHD's binary associative memory uses.

``BIPOLAR``
    Values in ``{-1, +1}``.  This is the algebraically convenient
    representation: binding is element-wise multiplication and the dot
    product directly measures agreement.  The mapping between the two is the
    affine map ``bipolar = 2 * binary - 1``.

All random generation routines take an explicit ``numpy.random.Generator``
so that every experiment in the repository is reproducible from a single
seed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: Marker for the {0, 1} alphabet.
BINARY = "binary"
#: Marker for the {-1, +1} alphabet.
BIPOLAR = "bipolar"

ArrayLike = Union[np.ndarray, Sequence[float]]


def _as_generator(rng: Optional[Union[int, np.random.Generator]]) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` creates a fresh non-deterministic generator, an ``int`` is used
    as a seed, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_binary_hypervectors(
    count: int,
    dimension: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
    density: float = 0.5,
) -> np.ndarray:
    """Draw ``count`` i.i.d. binary hypervectors of length ``dimension``.

    Parameters
    ----------
    count:
        Number of hypervectors (rows of the returned matrix).
    dimension:
        Hypervector dimensionality ``D``.
    rng:
        Seed or generator controlling the draw.
    density:
        Probability that an element equals 1.  The HDC default of 0.5 gives
        maximally distant random vectors (expected normalized Hamming
        distance 0.5).

    Returns
    -------
    numpy.ndarray
        ``(count, dimension)`` array with dtype ``int8`` and values in
        ``{0, 1}``.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    gen = _as_generator(rng)
    return (gen.random((count, dimension)) < density).astype(np.int8)


def random_bipolar_hypervectors(
    count: int,
    dimension: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """Draw ``count`` i.i.d. bipolar hypervectors of length ``dimension``.

    Returns
    -------
    numpy.ndarray
        ``(count, dimension)`` array with dtype ``int8`` and values in
        ``{-1, +1}``.
    """
    binary = random_binary_hypervectors(count, dimension, rng)
    return to_bipolar(binary)


def random_gaussian_hypervectors(
    count: int,
    dimension: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Draw ``count`` dense Gaussian hypervectors (float32).

    Floating-point base vectors are used by the floating-point variant of
    random-projection encoding referenced in the paper (Thomas et al. 2021).
    """
    if count <= 0 or dimension <= 0:
        raise ValueError("count and dimension must be positive")
    gen = _as_generator(rng)
    return gen.normal(0.0, scale, size=(count, dimension)).astype(np.float32)


def level_hypervectors(
    levels: int,
    dimension: int,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """Create a family of correlated *level* hypervectors.

    Level hypervectors encode scalar magnitudes for ID-Level encoding.  The
    standard construction starts from a random bipolar vector for the lowest
    level and flips a fresh block of ``dimension / (2 * (levels - 1))``
    positions for every subsequent level, so that nearby levels stay similar
    while the lowest and highest levels end up (nearly) orthogonal (half of
    the positions flipped in total).

    Returns
    -------
    numpy.ndarray
        ``(levels, dimension)`` bipolar ``int8`` matrix.
    """
    if levels < 2:
        raise ValueError(f"levels must be >= 2, got {levels}")
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    gen = _as_generator(rng)
    base = random_bipolar_hypervectors(1, dimension, gen)[0]
    out = np.empty((levels, dimension), dtype=np.int8)
    out[0] = base
    # Half of the positions are flipped exactly once over the whole sweep, in
    # a random order, so level i and level j differ in
    # ~|i - j| / (2 * (levels - 1)) of the dimensions and the two extreme
    # levels are nearly orthogonal.
    flip_order = gen.permutation(dimension)
    per_step = dimension / (2 * (levels - 1))
    current = base.copy()
    flipped_so_far = 0
    for level in range(1, levels):
        target = int(round(level * per_step))
        positions = flip_order[flipped_so_far:target]
        current[positions] = -current[positions]
        flipped_so_far = target
        out[level] = current
    return out


def bundle(hypervectors: ArrayLike, axis: int = 0) -> np.ndarray:
    """Bundle (superpose) hypervectors by element-wise summation.

    Bundling is the HDC analogue of set union: the sum of bipolar vectors is
    most similar (under dot similarity) to each of its constituents.  The
    result is an integer-valued vector; callers typically re-binarize it with
    :func:`binarize` or :func:`bipolarize`.
    """
    arr = np.asarray(hypervectors)
    if arr.ndim == 0:
        raise ValueError("cannot bundle a scalar")
    return arr.sum(axis=axis)


def bind(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Bind two hypervectors.

    For bipolar vectors binding is element-wise multiplication (XOR in the
    binary domain); it produces a vector dissimilar to both operands while
    preserving distances, which is how ID-Level encoding attaches a value to
    a position.
    """
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {a_arr.shape[-1]} vs {b_arr.shape[-1]}"
        )
    return a_arr * b_arr


def permute(hypervector: ArrayLike, shifts: int = 1) -> np.ndarray:
    """Cyclically permute a hypervector (or batch) by ``shifts`` positions.

    Permutation encodes sequence/order information; it is included for
    completeness of the HDC substrate even though MEMHD itself only needs
    projection encoding.
    """
    arr = np.asarray(hypervector)
    return np.roll(arr, shifts, axis=-1)


def binarize(values: ArrayLike, threshold: Optional[float] = None) -> np.ndarray:
    """Quantize real values to the ``{0, 1}`` alphabet.

    Values strictly greater than ``threshold`` map to 1, the rest to 0.  When
    ``threshold`` is ``None`` the mean of ``values`` is used, which is the
    1-bit quantization rule MEMHD applies to its associative memory
    (Sec. III-B of the paper).
    """
    arr = np.asarray(values, dtype=np.float64)
    if threshold is None:
        threshold = float(arr.mean())
    return (arr > threshold).astype(np.int8)


def bipolarize(values: ArrayLike, threshold: float = 0.0) -> np.ndarray:
    """Quantize real values to the ``{-1, +1}`` alphabet.

    Values greater than or equal to ``threshold`` map to +1, the rest to -1
    (the sign function with ties broken upward).
    """
    arr = np.asarray(values, dtype=np.float64)
    return np.where(arr >= threshold, 1, -1).astype(np.int8)


def to_bipolar(binary: ArrayLike) -> np.ndarray:
    """Map ``{0, 1}`` values to ``{-1, +1}`` via ``2 * x - 1``."""
    arr = np.asarray(binary)
    unique = np.unique(arr)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError("to_bipolar expects values in {0, 1}")
    return (2 * arr.astype(np.int8) - 1).astype(np.int8)


def to_binary(bipolar: ArrayLike) -> np.ndarray:
    """Map ``{-1, +1}`` values to ``{0, 1}`` via ``(x + 1) / 2``."""
    arr = np.asarray(bipolar)
    unique = np.unique(arr)
    if not np.all(np.isin(unique, (-1, 1))):
        raise ValueError("to_binary expects values in {-1, +1}")
    return ((arr.astype(np.int8) + 1) // 2).astype(np.int8)


def majority_bundle(
    hypervectors: ArrayLike,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """Bundle bipolar hypervectors and re-binarize with random tie breaking.

    This is the classical "majority rule" used when a single-pass binary
    class vector is wanted directly.  Ties (possible when the number of
    bundled vectors is even) are broken by independent fair coin flips drawn
    from ``rng``.
    """
    arr = np.asarray(hypervectors)
    summed = bundle(arr, axis=0)
    gen = _as_generator(rng)
    ties = summed == 0
    result = np.where(summed > 0, 1, -1).astype(np.int8)
    if np.any(ties):
        coin = gen.integers(0, 2, size=int(ties.sum())) * 2 - 1
        result[ties] = coin.astype(np.int8)
    return result


def hypervector_counts(hypervectors: Iterable[np.ndarray]) -> np.ndarray:
    """Accumulate an integer count vector from an iterable of hypervectors.

    Useful for streaming single-pass training where keeping the whole
    training set in memory is undesirable.
    """
    total: Optional[np.ndarray] = None
    for hv in hypervectors:
        arr = np.asarray(hv, dtype=np.int64)
        if total is None:
            total = arr.copy()
        else:
            if arr.shape != total.shape:
                raise ValueError("all hypervectors must share the same shape")
            total += arr
    if total is None:
        raise ValueError("hypervector_counts received an empty iterable")
    return total
