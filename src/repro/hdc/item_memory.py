"""Item memory and associative cleanup.

Classical HDC systems keep, besides the class-vector associative memory, an
*item memory*: a codebook of named atomic hypervectors (symbols, feature
ids, level values) together with a *cleanup* operation that maps a noisy
hypervector back to the nearest stored item.  The MEMHD paper's encoders use
item memories implicitly (the ID and level tables of ID-Level encoding); the
explicit structure here completes the HDC substrate so downstream users can
build the compositional applications (n-gram language identification,
sequence processing, symbolic reasoning) that the HDC literature builds on
the same primitives.

The cleanup operation is exactly an associative search, so
:class:`ItemMemory` can also be mapped onto an IMC array via
``repro.imc.mapping.tile_matrix`` -- its :meth:`as_binary_matrix` view
exists for that purpose.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.hdc.hypervector import _as_generator, random_bipolar_hypervectors, to_binary
from repro.hdc.similarity import dot_similarity


class ItemMemory:
    """A named codebook of bipolar hypervectors with cleanup search.

    Parameters
    ----------
    dimension:
        Hypervector dimensionality of every stored item.
    rng:
        Seed or generator used when items are created with :meth:`add_random`.
    """

    def __init__(
        self,
        dimension: int,
        rng: Optional[Union[int, np.random.Generator]] = None,
    ) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)
        self._rng = _as_generator(rng)
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._vectors = np.empty((0, self.dimension), dtype=np.int8)

    # ----------------------------------------------------------- container
    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> Tuple[str, ...]:
        """Stored item names, in insertion order."""
        return tuple(self._names)

    def vector(self, name: str) -> np.ndarray:
        """The stored bipolar hypervector of ``name`` (a copy)."""
        if name not in self._index:
            raise KeyError(f"unknown item {name!r}")
        return self._vectors[self._index[name]].copy()

    def __getitem__(self, name: str) -> np.ndarray:
        return self.vector(name)

    # ------------------------------------------------------------ mutation
    def add(self, name: str, vector: np.ndarray) -> np.ndarray:
        """Store an explicit bipolar hypervector under ``name``."""
        if name in self._index:
            raise ValueError(f"item {name!r} already exists")
        arr = np.asarray(vector)
        if arr.shape != (self.dimension,):
            raise ValueError(
                f"vector must have shape ({self.dimension},), got {arr.shape}"
            )
        if not np.all(np.isin(arr, (-1, 1))):
            raise ValueError("item memory stores bipolar (+/-1) hypervectors")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._vectors = np.vstack([self._vectors, arr.astype(np.int8)[None, :]])
        return self.vector(name)

    def add_random(self, name: str) -> np.ndarray:
        """Create, store and return a fresh random hypervector for ``name``."""
        vector = random_bipolar_hypervectors(1, self.dimension, self._rng)[0]
        return self.add(name, vector)

    def get_or_create(self, name: str) -> np.ndarray:
        """Return the item for ``name``, creating a random one if missing."""
        if name in self._index:
            return self.vector(name)
        return self.add_random(name)

    def encode_sequence(self, names: Iterable[str]) -> np.ndarray:
        """Bundle the items of a sequence of names (creating missing ones).

        Returns the integer-valued bundled vector; callers typically
        re-binarize it before storing or searching.
        """
        total = np.zeros(self.dimension, dtype=np.int64)
        count = 0
        for name in names:
            total += self.get_or_create(name).astype(np.int64)
            count += 1
        if count == 0:
            raise ValueError("encode_sequence needs at least one name")
        return total

    # ------------------------------------------------------------- cleanup
    def cleanup(self, query: np.ndarray) -> Tuple[str, float]:
        """Return the stored item most similar to ``query`` (dot similarity).

        The similarity is normalized by the dimension so it is comparable
        across item memories of different sizes.
        """
        if not self._names:
            raise ValueError("item memory is empty")
        arr = np.asarray(query, dtype=np.float64)
        if arr.shape != (self.dimension,):
            raise ValueError(
                f"query must have shape ({self.dimension},), got {arr.shape}"
            )
        sims = dot_similarity(arr, self._vectors.astype(np.float64))
        best = int(np.argmax(sims))
        return self._names[best], float(sims[best]) / self.dimension

    def cleanup_batch(self, queries: np.ndarray) -> List[str]:
        """Cleanup every row of a ``(n, D)`` query batch."""
        arr = np.asarray(queries, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise ValueError(f"queries must have shape (n, {self.dimension})")
        sims = dot_similarity(arr, self._vectors.astype(np.float64))
        winners = np.argmax(np.atleast_2d(sims), axis=1)
        return [self._names[int(index)] for index in winners]

    # ------------------------------------------------------------- exports
    def as_matrix(self) -> np.ndarray:
        """All stored items as a ``(num_items, D)`` bipolar matrix (copy)."""
        return self._vectors.copy()

    def as_binary_matrix(self) -> np.ndarray:
        """The codebook in ``{0, 1}`` form, transposed to ``(D, num_items)``.

        This is the layout an IMC array stores for cleanup-by-MVM: one item
        per column, queries drive the rows.
        """
        if not self._names:
            raise ValueError("item memory is empty")
        return to_binary(self._vectors).T.copy()

    def memory_bits(self) -> int:
        """Storage of the codebook in single-bit cells."""
        return len(self._names) * self.dimension
