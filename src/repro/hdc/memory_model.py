"""Memory-requirement model (paper Table I).

Table I of the paper expresses the storage needed by each model family as a
number of single-bit cells:

==============  ==========================  =====================
Model           Encoding module             Associative memory
==============  ==========================  =====================
SearcHD         ``(f + L) * D``             ``k * D * N``
QuantHD         ``(f + L) * D``             ``k * D``
LeHDC           ``(f + L) * D``             ``k * D``
BasicHDC        ``f * D``                   ``k * D``
MEMHD           ``f * D``                   ``C * D``
==============  ==========================  =====================

where ``f`` is the number of input features, ``L`` the number of levels of
ID-Level encoding, ``D`` the hypervector dimensionality, ``k`` the number of
classes, ``C`` the number of IMC columns used by MEMHD's multi-centroid AM
and ``N`` SearcHD's vector-quantization factor.

These formulas drive the x-axis of Fig. 3 (memory in KB) and the Table I
benchmark.  The classifiers in :mod:`repro.baselines` and
:mod:`repro.core.model` report their own memory through this module so that
Fig. 3 is generated from the same code path that defines the models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Bits per kibibyte, used to express Table I / Fig. 3 memory in KB.
BITS_PER_KIB = 8 * 1024


def bits_to_kib(bits: int) -> float:
    """Convert a bit count to kibibytes (the KB unit used in Fig. 3)."""
    if bits < 0:
        raise ValueError(f"bits must be non-negative, got {bits}")
    return bits / BITS_PER_KIB


def projection_encoder_bits(num_features: int, dimension: int) -> int:
    """Encoding-module bits for projection encoding: ``f * D``."""
    _check_positive(num_features=num_features, dimension=dimension)
    return num_features * dimension


def id_level_encoder_bits(num_features: int, num_levels: int, dimension: int) -> int:
    """Encoding-module bits for ID-Level encoding: ``(f + L) * D``."""
    _check_positive(
        num_features=num_features, num_levels=num_levels, dimension=dimension
    )
    return (num_features + num_levels) * dimension


def associative_memory_bits(
    rows: int, dimension: int, quantization_factor: int = 1
) -> int:
    """Associative-memory bits for ``rows`` binary class vectors.

    ``rows`` is ``k`` for single-vector-per-class models, ``C`` for MEMHD's
    multi-centroid AM, and the ``quantization_factor`` is SearcHD's ``N``
    (each class keeps ``N`` binary vectors).
    """
    _check_positive(rows=rows, dimension=dimension)
    if quantization_factor < 1:
        raise ValueError(
            f"quantization_factor must be >= 1, got {quantization_factor}"
        )
    return rows * dimension * quantization_factor


@dataclass(frozen=True)
class MemoryReport:
    """Breakdown of a model's storage footprint in bits.

    Attributes
    ----------
    model:
        Human-readable model family name (e.g. ``"MEMHD"``).
    encoder_bits:
        Bits of the encoding module (projection matrix, or ID + level
        hypervectors).
    am_bits:
        Bits of the associative memory.
    """

    model: str
    encoder_bits: int
    am_bits: int

    @property
    def total_bits(self) -> int:
        return self.encoder_bits + self.am_bits

    @property
    def encoder_kib(self) -> float:
        return bits_to_kib(self.encoder_bits)

    @property
    def am_kib(self) -> float:
        return bits_to_kib(self.am_bits)

    @property
    def total_kib(self) -> float:
        return bits_to_kib(self.total_bits)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary representation used by the benchmark reporters."""
        return {
            "model": self.model,
            "encoder_bits": self.encoder_bits,
            "am_bits": self.am_bits,
            "total_bits": self.total_bits,
            "encoder_kib": self.encoder_kib,
            "am_kib": self.am_kib,
            "total_kib": self.total_kib,
        }


#: Model families covered by Table I, with the encoder family each uses.
TABLE1_MODEL_FAMILIES = {
    "SearcHD": "id-level",
    "QuantHD": "id-level",
    "LeHDC": "id-level",
    "BasicHDC": "projection",
    "MEMHD": "projection",
}


def model_memory_report(
    model: str,
    num_features: int,
    dimension: int,
    num_classes: int,
    num_levels: int = 256,
    num_columns: Optional[int] = None,
    quantization_factor: int = 64,
) -> MemoryReport:
    """Compute the Table I memory breakdown for a named model family.

    Parameters
    ----------
    model:
        One of ``TABLE1_MODEL_FAMILIES`` (case-insensitive).
    num_features, dimension, num_classes:
        The ``f``, ``D`` and ``k`` of Table I.
    num_levels:
        ``L`` for ID-Level models (paper uses 256).
    num_columns:
        ``C`` for MEMHD (required when ``model == "MEMHD"``).
    quantization_factor:
        ``N`` for SearcHD (paper fixes 64).
    """
    key = _canonical_model_name(model)
    if key in ("SearcHD", "QuantHD", "LeHDC"):
        encoder_bits = id_level_encoder_bits(num_features, num_levels, dimension)
    else:
        encoder_bits = projection_encoder_bits(num_features, dimension)

    if key == "SearcHD":
        am_bits = associative_memory_bits(
            num_classes, dimension, quantization_factor=quantization_factor
        )
    elif key == "MEMHD":
        if num_columns is None:
            raise ValueError("MEMHD memory report requires num_columns (C)")
        am_bits = associative_memory_bits(num_columns, dimension)
    else:
        am_bits = associative_memory_bits(num_classes, dimension)

    return MemoryReport(model=key, encoder_bits=encoder_bits, am_bits=am_bits)


def _canonical_model_name(model: str) -> str:
    lookup = {name.lower(): name for name in TABLE1_MODEL_FAMILIES}
    key = lookup.get(model.lower())
    if key is None:
        raise ValueError(
            f"unknown model {model!r}; expected one of "
            f"{sorted(TABLE1_MODEL_FAMILIES)}"
        )
    return key


def _check_positive(**named_values: int) -> None:
    for name, value in named_values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
