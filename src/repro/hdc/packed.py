"""Bit-packed binary hypervectors and the popcount similarity engine.

The paper's whole premise is that 1-bit associative memories make
classification cheap, yet the reference float path evaluates every
similarity as a float64 matmul over ±1 (or {0, 1}) arrays -- 64x the memory
traffic the algorithm needs.  This module stores hypervectors as ``uint64``
words (64 elements per word, via :func:`numpy.packbits`) and evaluates
similarities with popcount kernels:

* binary ``{0, 1}`` dot similarity: ``popcount(q AND r)``,
* bipolar ``{-1, +1}`` dot similarity: ``D - 2 * popcount(q XOR r)``
  (the classical dot/Hamming identity),
* Hamming distance (either alphabet): ``popcount(q XOR r)``.

All three are exact integer computations, so the packed engine is
**bit-exact** with the float64 path -- an invariant enforced by the
property tests in ``tests/test_properties.py`` and
``tests/test_hdc_packed.py``.

Dimensions that are not multiples of 64 are zero-padded into the last
("tail") word.  Zero tail bits are AND/XOR-neutral, so no masking is needed
at query time; :func:`PackedVectors.unpack` slices the padding back off.

:class:`PackedAM` mirrors :class:`repro.core.associative_memory.MultiCentroidAM`
for inference: same scores / predict / class_scores surface, 8x smaller
storage than the ``int8`` binary memory (64x smaller than a float64 AM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.hdc import _packed_kernels as _kernels

#: Elements packed into one storage word.
WORD_BITS = 64

#: The two packable alphabets.
BINARY_ALPHABET = "binary"
BIPOLAR_ALPHABET = "bipolar"


def words_per_vector(dimension: int) -> int:
    """Number of ``uint64`` words needed to store ``dimension`` elements."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return (dimension + WORD_BITS - 1) // WORD_BITS


@dataclass(frozen=True)
class PackedVectors:
    """A batch of hypervectors packed 64 elements per ``uint64`` word.

    Attributes
    ----------
    words:
        ``(n, W)`` ``uint64`` array with ``W = ceil(dimension / 64)``.
        Bit ``d`` of a row (little-endian within each word) holds element
        ``d`` of the vector; tail bits past ``dimension`` are zero.
    dimension:
        Original element count ``D`` of each vector.
    alphabet:
        ``"binary"`` when bit 1 means element value 1 (and 0 means 0), or
        ``"bipolar"`` when bit 1 means +1 (and 0 means -1).
    """

    words: np.ndarray
    dimension: int
    alphabet: str

    def __post_init__(self) -> None:
        if self.words.ndim != 2 or self.words.dtype != np.uint64:
            raise ValueError("words must be a 2-D uint64 array")
        if self.alphabet not in (BINARY_ALPHABET, BIPOLAR_ALPHABET):
            raise ValueError(f"unknown alphabet {self.alphabet!r}")
        if self.words.shape[1] != words_per_vector(self.dimension):
            raise ValueError(
                f"expected {words_per_vector(self.dimension)} words for "
                f"D={self.dimension}, got {self.words.shape[1]}"
            )

    def __len__(self) -> int:
        return int(self.words.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of packed storage."""
        return int(self.words.nbytes)

    def unpack(self) -> np.ndarray:
        """Restore the ``(n, D)`` ``int8`` array in the original alphabet."""
        bits = np.unpackbits(self.words.view(np.uint8), axis=-1, bitorder="little")
        bits = bits[:, : self.dimension]
        if self.alphabet == BIPOLAR_ALPHABET:
            return (2 * bits.astype(np.int8) - 1).astype(np.int8)
        return bits.astype(np.int8)


def _pack_bits(bits: np.ndarray, dimension: int, alphabet: str) -> PackedVectors:
    """Pack a ``(n, D)`` 0/1 array into little-endian uint64 words."""
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    pad = (-packed_bytes.shape[1]) % 8
    if pad:
        packed_bytes = np.concatenate(
            [
                packed_bytes,
                np.zeros((packed_bytes.shape[0], pad), dtype=np.uint8),
            ],
            axis=1,
        )
    words = np.ascontiguousarray(packed_bytes).view(np.uint64)
    return PackedVectors(words=words, dimension=dimension, alphabet=alphabet)


def _as_matrix(vectors: np.ndarray) -> np.ndarray:
    arr = np.asarray(vectors)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got ndim={arr.ndim}")
    if arr.shape[1] == 0:
        raise ValueError("cannot pack zero-dimensional vectors")
    return arr


def pack_binary(vectors: np.ndarray, validate: bool = True) -> PackedVectors:
    """Pack ``{0, 1}`` vectors (any integer or float dtype) bitwise.

    Accepts a ``(n, D)`` batch or a single ``(D,)`` vector (stored as one
    row).  Raises :class:`ValueError` on values outside ``{0, 1}`` unless
    the caller has already validated the alphabet (``validate=False``).
    """
    arr = _as_matrix(vectors)
    if validate and not ((arr == 0) | (arr == 1)).all():
        raise ValueError("pack_binary expects values in {0, 1}")
    bits = arr.astype(np.uint8, copy=False)
    return _pack_bits(bits, arr.shape[1], BINARY_ALPHABET)


def pack_bipolar(vectors: np.ndarray, validate: bool = True) -> PackedVectors:
    """Pack ``{-1, +1}`` vectors bitwise (+1 -> bit 1, -1 -> bit 0)."""
    arr = _as_matrix(vectors)
    if validate and not ((arr == -1) | (arr == 1)).all():
        raise ValueError("pack_bipolar expects values in {-1, +1}")
    bits = (arr > 0).astype(np.uint8)
    return _pack_bits(bits, arr.shape[1], BIPOLAR_ALPHABET)


def _check_pair(queries: PackedVectors, references: PackedVectors) -> None:
    if queries.dimension != references.dimension:
        raise ValueError(
            f"dimension mismatch: queries have D={queries.dimension}, "
            f"references have D={references.dimension}"
        )
    if queries.alphabet != references.alphabet:
        raise ValueError(
            f"alphabet mismatch: {queries.alphabet} vs {references.alphabet}"
        )


def packed_hamming_distance(
    queries: PackedVectors, references: PackedVectors
) -> np.ndarray:
    """``(n, m)`` element-count Hamming distances between packed batches."""
    _check_pair(queries, references)
    return _kernels.xor_popcount(queries.words, references.words)


def packed_dot_similarity(
    queries: PackedVectors, references: PackedVectors
) -> np.ndarray:
    """``(n, m)`` exact integer dot similarities between packed batches.

    For the bipolar alphabet this uses the identity
    ``dot = D - 2 * hamming``; for the binary alphabet the dot product
    counts common ones, i.e. ``popcount(q AND r)``.
    """
    _check_pair(queries, references)
    if queries.alphabet == BIPOLAR_ALPHABET:
        hamming = _kernels.xor_popcount(queries.words, references.words)
        return queries.dimension - 2 * hamming
    return _kernels.and_popcount(queries.words, references.words)


def kernel_backend() -> str:
    """Name of the active popcount backend (``"native"`` or ``"numpy"``)."""
    return _kernels.backend_name()


class PackedAM:
    """Bit-packed inference mirror of the multi-centroid associative memory.

    Stores the 1-bit AM as ``uint64`` words (8x smaller than the ``int8``
    ``binary_memory``) and answers associative searches with popcount
    kernels while remaining bit-exact with the float64 dot-similarity path.

    Parameters
    ----------
    memory:
        Packed ``(C, W)`` class-vector batch (binary or bipolar alphabet).
    column_classes:
        ``(C,)`` integer array giving the class of each stored row.
    num_classes:
        Total number of classes; defaults to ``column_classes.max() + 1``.
    """

    def __init__(
        self,
        memory: PackedVectors,
        column_classes: np.ndarray,
        num_classes: Optional[int] = None,
    ) -> None:
        classes = np.asarray(column_classes, dtype=np.int64)
        if classes.ndim != 1 or classes.shape[0] != len(memory):
            raise ValueError("column_classes must be 1-D with one entry per row")
        if classes.size and classes.min() < 0:
            raise ValueError("column_classes must be non-negative")
        inferred = int(classes.max()) + 1 if classes.size else 0
        self.memory = memory
        self.column_classes = classes
        self.num_classes = int(num_classes) if num_classes is not None else inferred
        if self.num_classes < inferred:
            raise ValueError(
                "num_classes is smaller than the largest label in column_classes"
            )

    @classmethod
    def from_binary_memory(
        cls,
        binary_memory: np.ndarray,
        column_classes: np.ndarray,
        num_classes: Optional[int] = None,
    ) -> "PackedAM":
        """Pack an ``(C, D)`` ``{0, 1}`` binary memory (the AM's storage)."""
        return cls(pack_binary(binary_memory), column_classes, num_classes)

    @classmethod
    def from_bipolar_memory(
        cls,
        bipolar_memory: np.ndarray,
        column_classes: np.ndarray,
        num_classes: Optional[int] = None,
    ) -> "PackedAM":
        """Pack an ``(C, D)`` ``{-1, +1}`` class-vector matrix."""
        return cls(pack_bipolar(bipolar_memory), column_classes, num_classes)

    # ---------------------------------------------------------- persistence
    def checkpoint_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays that fully describe this packed AM for checkpointing.

        Returns
        -------
        dict
            ``words`` (the raw ``(C, W)`` ``uint64`` payload, saved as-is
            so restore needs no re-packing) and ``column_classes``.
        """
        return {"words": self.memory.words, "column_classes": self.column_classes}

    @classmethod
    def from_checkpoint(
        cls,
        arrays: Dict[str, np.ndarray],
        dimension: int,
        alphabet: str,
        num_classes: int,
    ) -> "PackedAM":
        """Rebuild a packed AM from :meth:`checkpoint_arrays` output.

        Parameters
        ----------
        arrays:
            Mapping with ``words`` and ``column_classes`` entries.
        dimension:
            Original element count ``D`` of each stored vector.
        alphabet:
            ``"binary"`` or ``"bipolar"`` (see :class:`PackedVectors`).
        num_classes:
            Total number of classes ``k``.
        """
        words = np.ascontiguousarray(np.asarray(arrays["words"], dtype=np.uint64))
        memory = PackedVectors(words=words, dimension=int(dimension), alphabet=alphabet)
        return cls(memory, arrays["column_classes"], num_classes)

    # ----------------------------------------------------------- properties
    @property
    def num_columns(self) -> int:
        """Number of stored class vectors ``C``."""
        return len(self.memory)

    @property
    def dimension(self) -> int:
        """Hypervector dimensionality ``D``."""
        return self.memory.dimension

    def memory_bytes(self) -> int:
        """Bytes of packed AM storage (``C * ceil(D / 64) * 8``)."""
        return self.memory.nbytes

    # ------------------------------------------------------------ inference
    def _pack_queries(self, queries: Union[np.ndarray, PackedVectors]):
        if isinstance(queries, PackedVectors):
            if queries.dimension != self.dimension:
                raise ValueError(
                    f"query dimension {queries.dimension} does not match AM "
                    f"dimension {self.dimension}"
                )
            return queries, False
        arr = np.asarray(queries)
        squeeze = arr.ndim == 1
        matrix = _as_matrix(arr)
        if matrix.shape[1] != self.dimension:
            raise ValueError(
                f"query dimension {matrix.shape[1]} does not match AM "
                f"dimension {self.dimension}"
            )
        if self.memory.alphabet == BIPOLAR_ALPHABET:
            return pack_bipolar(matrix), squeeze
        return pack_binary(matrix), squeeze

    def scores(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Exact integer dot similarities of queries against every AM row.

        Accepts unpacked ``(n, D)`` / ``(D,)`` arrays in the AM's alphabet
        or an already-packed batch; returns ``(n, C)`` (``(C,)`` squeezed
        for a single unpacked query), bit-exact with the float path.
        """
        packed, squeeze = self._pack_queries(queries)
        sims = packed_dot_similarity(packed, self.memory)
        return sims[0] if squeeze else sims

    def predict_columns(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Index of the winning AM row for each query (lowest-index ties)."""
        return np.argmax(np.atleast_2d(self.scores(queries)), axis=1)

    def predict(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Predicted class labels (the class of the winning row)."""
        return self.column_classes[self.predict_columns(queries)]

    def class_scores(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Per-class score: the best similarity among each class's rows."""
        scores = np.atleast_2d(self.scores(queries))
        result = np.full((scores.shape[0], self.num_classes), -np.inf)
        for class_label in range(self.num_classes):
            columns = np.flatnonzero(self.column_classes == class_label)
            if columns.size:
                result[:, class_label] = scores[:, columns].max(axis=1)
        return result

    def columns_per_class(self) -> Dict[int, int]:
        """Number of stored rows per class."""
        counts = np.bincount(self.column_classes, minlength=self.num_classes)
        return {label: int(count) for label, count in enumerate(counts)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedAM(shape={self.dimension}x{self.num_columns}, "
            f"classes={self.num_classes}, alphabet={self.memory.alphabet})"
        )
