"""Centroid-pruned associative search: coarse screen, exact re-rank.

Full-scan associative search scores every stored row of the AM for every
query.  :class:`PrunedAM` wraps a :class:`~repro.hdc.packed.PackedAM` with
a coarse-to-fine scorer that is **argmax-identical** to the full scan --
including the full scan's lowest-row-index tie-break -- while scoring only
a shortlist of candidate classes on most queries:

1. **Screen.**  Each query is compared (one packed XOR/popcount call)
   against a per-class *sketch*: the bitwise majority vote of the class's
   stored rows.  The triangle inequality on Hamming distance turns each
   sketch distance into a certified upper bound on the best dot score any
   row of that class can achieve:

   * bipolar: ``dot(q, r) = D - 2 * ham(q, r)`` and
     ``ham(q, r) >= ham(q, c) - radius_c`` with
     ``radius_c = max_r ham(c, r)``, so
     ``dot <= D - 2 * max(0, ham(q, c) - radius_c)``;
   * binary: ``dot(q, r) = (pop(q) + pop(r) - ham(q, r)) / 2``, so
     ``dot <= floor((pop(q) - ham(q, c) + slack_c) / 2)`` with
     ``slack_c = max_r (pop(r) + ham(c, r))``.

2. **Shortlist.**  The ``prune_topk`` classes with the highest upper
   bounds are re-ranked *exactly* with the packed kernels, maintaining the
   running best ``(score, row)`` under the same tie rule as
   ``np.argmax`` (higher score wins; equal score, lower row index wins).

3. **Escape hatch.**  Any class left out of the shortlist whose upper
   bound still reaches the running best (``bound >= best``, ``>=`` so
   exact ties can never be lost) is ambiguous: those classes are scored
   exactly in a second pass, unless they cover so much of the AM that a
   plain full scan is cheaper -- then the query falls back to the full
   scan.  Either way, a class is skipped only when its certified bound is
   *strictly below* an exactly-achieved score, so the winner (and the
   tie-break) is identical to the full scan by construction.

The screen is one ``(n, k)`` popcount against ``k`` sketches instead of an
``(n, C)`` scan over ``C`` rows, so with ``C >> k`` (multi-centroid AMs)
the hot path does a fraction of the full-scan work.  Degenerate layouts
(one row per class, a single class) stay exact -- the shortlist simply
covers everything.

Per-instance counters (queries, shortlist hits, widened queries, full-scan
fallbacks, rows scored) feed the serving ``/stats`` endpoint; see
:meth:`PrunedAM.stats`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

import numpy as np

from repro.hdc import _packed_kernels as _kernels
from repro.hdc.packed import (
    BIPOLAR_ALPHABET,
    PackedAM,
    PackedVectors,
    _pack_bits,
)

#: Queries whose ambiguous classes cover at least this fraction of the AM's
#: rows fall back to a plain full scan (default; per-instance override).
DEFAULT_FALLBACK_FRACTION = 0.5


def default_prune_topk(num_groups: int) -> int:
    """Shortlist width used when the caller does not pin ``prune_topk``.

    ``ceil(sqrt(k))`` balances screen cost (k sketches) against re-rank
    cost for typical multi-centroid layouts; tiny ``k`` degrades to a full
    shortlist, which is simply the exact full scan.
    """
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    return max(1, int(np.ceil(np.sqrt(num_groups))))


class PrunedAM:
    """Exact coarse-to-fine search over a :class:`PackedAM`.

    Parameters
    ----------
    base:
        The packed AM to accelerate.  Its ``column_classes`` define the
        pruning groups (one sketch per distinct class).
    prune_topk:
        Shortlist width (classes re-ranked exactly per query).  ``None``
        uses :func:`default_prune_topk`; values above the class count are
        clamped (and make the search an exact full re-rank).
    fallback_fraction:
        Queries whose ambiguous classes cover at least this fraction of
        the AM's rows are answered by a plain full scan instead of a
        second shortlist pass.
    """

    def __init__(
        self,
        base: PackedAM,
        prune_topk: Optional[int] = None,
        fallback_fraction: float = DEFAULT_FALLBACK_FRACTION,
    ) -> None:
        if base.num_columns == 0:
            raise ValueError("cannot build a pruned index over an empty AM")
        if not 0.0 < fallback_fraction <= 1.0:
            raise ValueError(
                f"fallback_fraction must be in (0, 1], got {fallback_fraction}"
            )
        self.base = base
        self.fallback_fraction = float(fallback_fraction)
        self._labels = np.unique(base.column_classes)
        self._group_rows: List[np.ndarray] = [
            np.flatnonzero(base.column_classes == label) for label in self._labels
        ]
        self.prune_topk = prune_topk
        self._stats_lock = threading.Lock()
        self._counters = {
            "queries": 0,
            "shortlist_hits": 0,
            "widened": 0,
            "fallbacks": 0,
            "rows_scored": 0,
            "rows_full_scan": 0,
        }
        self._build_sketches()

    # ------------------------------------------------------------- building
    def _build_sketches(self) -> None:
        memory = self.base.memory
        dimension = memory.dimension
        bits = np.unpackbits(memory.words.view(np.uint8), axis=-1, bitorder="little")
        bits = bits[:, :dimension]
        sketch_bits = np.empty((self.num_groups, dimension), dtype=np.uint8)
        for index, rows in enumerate(self._group_rows):
            ones = bits[rows].sum(axis=0, dtype=np.int64)
            # Majority vote; even splits round to bit 1.  The tie rule only
            # affects bound tightness, never correctness.
            sketch_bits[index] = (2 * ones >= rows.size).astype(np.uint8)
        self._sketch_words = np.ascontiguousarray(
            _pack_bits(sketch_bits, dimension, memory.alphabet).words
        )
        # Certified per-class slacks, computed with the packed kernels.
        hamming = _kernels.xor_popcount(self._sketch_words, memory.words)
        pop_rows = np.bitwise_count(memory.words).sum(axis=1).astype(np.int64)
        self._radius = np.empty(self.num_groups, dtype=np.int64)
        self._slack = np.empty(self.num_groups, dtype=np.int64)
        for index, rows in enumerate(self._group_rows):
            self._radius[index] = hamming[index, rows].max()
            self._slack[index] = (pop_rows[rows] + hamming[index, rows]).max()
        self._group_sizes = np.array(
            [rows.size for rows in self._group_rows], dtype=np.int64
        )
        # Contiguous per-class row blocks so the re-rank kernels read each
        # class without re-gathering strided rows on every query batch,
        # plus the CSR layout the native shortlist kernel walks: rows
        # sorted by class with offsets and original row ids alongside.
        self._group_words = [
            np.ascontiguousarray(memory.words[rows]) for rows in self._group_rows
        ]
        self._sorted_words = np.ascontiguousarray(np.concatenate(self._group_words))
        self._group_start = np.zeros(self.num_groups + 1, dtype=np.int64)
        np.cumsum(self._group_sizes, out=self._group_start[1:])
        self._orig_row = np.concatenate(self._group_rows).astype(np.int64)

    # ----------------------------------------------------------- properties
    @property
    def num_groups(self) -> int:
        """Number of distinct classes (= sketches) in the index."""
        return len(self._group_rows)

    @property
    def num_columns(self) -> int:
        """Number of stored rows ``C`` of the underlying AM."""
        return self.base.num_columns

    @property
    def dimension(self) -> int:
        """Hypervector dimensionality ``D``."""
        return self.base.dimension

    @property
    def column_classes(self) -> np.ndarray:
        """Class of each stored row (shared with the base AM)."""
        return self.base.column_classes

    @property
    def num_classes(self) -> int:
        """Total class count of the underlying AM."""
        return self.base.num_classes

    def effective_topk(self) -> int:
        """The shortlist width the next query will use."""
        if self.prune_topk is not None:
            if self.prune_topk < 1:
                raise ValueError(f"prune_topk must be >= 1, got {self.prune_topk}")
            return min(int(self.prune_topk), self.num_groups)
        return min(default_prune_topk(self.num_groups), self.num_groups)

    def memory_bytes(self) -> int:
        """Extra bytes of pruning metadata (sketches + per-class slacks)."""
        return int(
            self._sketch_words.nbytes
            + self._radius.nbytes
            + self._slack.nbytes
            + self._group_sizes.nbytes
        )

    # -------------------------------------------------------------- scoring
    #
    # All comparisons happen in *metric* space: popcount(q AND r) for the
    # binary alphabet and -popcount(q XOR r) for bipolar.  Both are
    # monotone images of the dot score (binary: dot = metric; bipolar:
    # dot = D + 2 * metric), so "higher metric wins, equal metric and
    # lower original row wins" is exactly the full scan's argmax.
    @property
    def _op(self) -> int:
        if self.base.memory.alphabet == BIPOLAR_ALPHABET:
            return _kernels.OP_XOR
        return _kernels.OP_AND

    def _metric_bounds(self, qwords: np.ndarray) -> np.ndarray:
        """``(n, k)`` certified upper bounds on each class's best metric."""
        hamming = _kernels.xor_popcount(qwords, self._sketch_words)
        if self.base.memory.alphabet == BIPOLAR_ALPHABET:
            return -np.maximum(hamming - self._radius[None, :], 0)
        pop_q = np.bitwise_count(qwords).sum(axis=1).astype(np.int64)
        return (pop_q[:, None] - hamming + self._slack[None, :]) // 2

    def _scan_shortlists(
        self,
        qwords: np.ndarray,
        candidates: np.ndarray,
        best_metric: np.ndarray,
        best_row: np.ndarray,
    ) -> None:
        """Exactly score each query's candidate classes; update running best.

        ``candidates`` is an ``(n, k)`` boolean mask.  The native backend
        runs the whole pass in one CSR kernel call; the numpy backend keeps
        a per-class re-rank loop as the correctness reference.
        """
        if _kernels.sparse_scan_available():
            counts = candidates.sum(axis=1, dtype=np.int64)
            list_start = np.zeros(candidates.shape[0] + 1, dtype=np.int64)
            np.cumsum(counts, out=list_start[1:])
            list_groups = np.nonzero(candidates)[1].astype(np.int64)
            _kernels.sparse_scan(
                qwords,
                self._sorted_words,
                self._group_start,
                self._orig_row,
                list_start,
                list_groups,
                best_metric,
                best_row,
                self._op,
            )
            return
        op = self._op
        for group in range(self.num_groups):
            selected = np.flatnonzero(candidates[:, group])
            if not selected.size:
                continue
            rows = self._group_rows[group]
            if op == _kernels.OP_AND:
                sims = _kernels.and_popcount(
                    qwords[selected], self._group_words[group]
                )
            else:
                sims = -_kernels.xor_popcount(
                    qwords[selected], self._group_words[group]
                )
            local = np.argmax(sims, axis=1)  # lowest row index in the class
            metrics = sims[np.arange(selected.size), local]
            winners = rows[local]
            current_metric = best_metric[selected]
            current_row = best_row[selected]
            better = (metrics > current_metric) | (
                (metrics == current_metric) & (winners < current_row)
            )
            updated = selected[better]
            best_metric[updated] = metrics[better]
            best_row[updated] = winners[better]

    def _predict_rows(self, qwords: np.ndarray) -> np.ndarray:
        """Winning AM row per query; argmax-identical to the full scan."""
        n = qwords.shape[0]
        total_rows = self.num_columns
        if n == 0:
            return np.empty(0, dtype=np.int64)
        bounds = self._metric_bounds(qwords)
        groups = self.num_groups
        topk = self.effective_topk()

        if topk >= groups:
            shortlisted = np.ones((n, groups), dtype=bool)
        else:
            order = np.argpartition(bounds, groups - topk, axis=1)[:, groups - topk :]
            shortlisted = np.zeros((n, groups), dtype=bool)
            shortlisted[np.arange(n)[:, None], order] = True

        best_metric = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        best_row = np.full(n, total_rows, dtype=np.int64)
        self._scan_shortlists(qwords, shortlisted, best_metric, best_row)
        rows_scored = int((shortlisted @ self._group_sizes).sum())

        # Escape hatch: >= keeps exact ties (a skipped class could hide an
        # equal-metric row with a lower index); strict < is the only safe
        # skip, so the argmax (and its tie-break) matches the full scan.
        ambiguous = (~shortlisted) & (bounds >= best_metric[:, None])
        ambiguous_rows = ambiguous @ self._group_sizes
        full_scan = ambiguous_rows >= self.fallback_fraction * total_rows
        widened = (~full_scan) & ambiguous.any(axis=1)

        rescue = ambiguous & widened[:, None]
        if rescue.any():
            self._scan_shortlists(qwords, rescue, best_metric, best_row)
            rows_scored += int((rescue @ self._group_sizes).sum())

        fallback_indices = np.flatnonzero(full_scan)
        if fallback_indices.size:
            memory_words = self.base.memory.words
            if self._op == _kernels.OP_AND:
                sims = _kernels.and_popcount(qwords[fallback_indices], memory_words)
                best_row[fallback_indices] = np.argmax(sims, axis=1)
            else:
                hamming = _kernels.xor_popcount(qwords[fallback_indices], memory_words)
                best_row[fallback_indices] = np.argmin(hamming, axis=1)
            rows_scored += int(fallback_indices.size) * total_rows

        widened_count = int(widened.sum())
        fallback_count = int(fallback_indices.size)
        with self._stats_lock:
            self._counters["queries"] += n
            self._counters["shortlist_hits"] += n - widened_count - fallback_count
            self._counters["widened"] += widened_count
            self._counters["fallbacks"] += fallback_count
            self._counters["rows_scored"] += rows_scored
            self._counters["rows_full_scan"] += n * total_rows
        return best_row

    # ------------------------------------------------------------ inference
    def predict_columns(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Index of the winning AM row per query (lowest-index ties).

        Bit-identical to ``PackedAM.predict_columns`` / the float path.
        """
        packed, _ = self.base._pack_queries(queries)
        return self._predict_rows(np.ascontiguousarray(packed.words))

    def predict(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Predicted class labels (the class of the winning row)."""
        return self.base.column_classes[self.predict_columns(queries)]

    def scores(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Full ``(n, C)`` score matrix (delegates to the exact full scan).

        Pruning accelerates the argmax only; callers that need every score
        get the base AM's full scan.
        """
        return self.base.scores(queries)

    def class_scores(self, queries: Union[np.ndarray, PackedVectors]) -> np.ndarray:
        """Per-class best scores (delegates to the exact full scan)."""
        return self.base.class_scores(queries)

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, float]:
        """Snapshot of the prune counters (plus the derived prune ratio)."""
        with self._stats_lock:
            snapshot = dict(self._counters)
        full = snapshot["rows_full_scan"]
        snapshot["prune_ratio"] = 1.0 - snapshot["rows_scored"] / full if full else 0.0
        snapshot["prune_topk"] = self.effective_topk()
        return snapshot

    def reset_stats(self) -> None:
        """Zero the prune counters (e.g. between benchmark phases)."""
        with self._stats_lock:
            for key in self._counters:
                self._counters[key] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrunedAM(shape={self.dimension}x{self.num_columns}, "
            f"classes={self.num_groups}, topk={self.effective_topk()}, "
            f"alphabet={self.base.memory.alphabet})"
        )
