"""Similarity metrics for associative search.

The paper performs associative search with the *dot similarity* (Eq. 3),
because a dot product is exactly the operation an IMC crossbar computes in a
single matrix-vector multiplication.  Cosine and Hamming similarity are
provided for completeness (they are the metrics used by several of the
baseline models' original papers) and for the test suite, which checks the
well-known equivalences between them for binary/bipolar data.

Every pairwise metric accepts ``packed=True`` to route 1-bit inputs through
the bit-packed popcount engine (:mod:`repro.hdc.packed`), which is bit-exact
with the unpacked path while moving 64x less memory.  Integer inputs are
evaluated in exact integer arithmetic on the unpacked path as well (no more
silent ``float64`` round-trips).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _atleast_2d(x: np.ndarray) -> Tuple[np.ndarray, bool]:
    """Promote a 1-D vector to a single-row matrix, remembering the squeeze."""
    arr = np.asarray(x)
    if arr.ndim == 1:
        return arr[None, :], True
    if arr.ndim == 2:
        return arr, False
    raise ValueError(f"expected a 1-D or 2-D array, got ndim={arr.ndim}")


def _int_magnitude_bound(arr: np.ndarray) -> int:
    """Largest absolute value in an integer array (overflow-safe, 0 if empty)."""
    if arr.size == 0:
        return 0
    # int() before abs(): np.abs(int8(-128)) overflows back to -128.
    return max(abs(int(arr.max())), abs(int(arr.min())))


def _matmul_sims(q: np.ndarray, r: np.ndarray) -> np.ndarray:
    """``q @ r.T`` without wasteful dtype round-trips.

    Float inputs are used as-is (no ``astype(np.float64)`` copies).  Integer
    inputs return exact ``int64`` counts rather than the historical float64:
    whenever every accumulated product fits a float64 mantissa the matmul
    runs through BLAS (an order of magnitude faster than numpy's integer
    matmul) and the exactly-integral result is cast back; otherwise exact
    ``int64`` accumulation is used.
    """
    if np.issubdtype(q.dtype, np.integer) and np.issubdtype(r.dtype, np.integer):
        bound = _int_magnitude_bound(q) * _int_magnitude_bound(r) * q.shape[1]
        if bound < 2**53:
            sims = q.astype(np.float64) @ r.astype(np.float64).T
            return sims.astype(np.int64)
        return q.astype(np.int64, copy=False) @ r.astype(np.int64, copy=False).T
    common = np.result_type(q.dtype, r.dtype)
    if not np.issubdtype(common, np.floating):
        common = np.float64
    return q.astype(common, copy=False) @ r.astype(common, copy=False).T


def _packed_alphabet(q: np.ndarray, r: np.ndarray) -> str:
    """Classify a pair of operands for the packed kernels.

    Returns ``"binary"`` when every value is in ``{0, 1}`` and ``"bipolar"``
    for ``{-1, +1}``.  Degenerate all-ones inputs fit both alphabets and are
    treated as binary, which yields the same dot similarity.
    """
    if ((q == 0) | (q == 1)).all() and ((r == 0) | (r == 1)).all():
        return "binary"
    if ((q == -1) | (q == 1)).all() and ((r == -1) | (r == 1)).all():
        return "bipolar"
    raise ValueError(
        "packed=True requires binary {0, 1} or bipolar {-1, +1} inputs "
        "(with both operands drawn from the same alphabet)"
    )


def _pack_pair(q: np.ndarray, r: np.ndarray):
    from repro.hdc.packed import pack_binary, pack_bipolar

    # _packed_alphabet already proved membership; skip the packers' rescan.
    if _packed_alphabet(q, r) == "binary":
        return pack_binary(q, validate=False), pack_binary(r, validate=False)
    return pack_bipolar(q, validate=False), pack_bipolar(r, validate=False)


def dot_similarity(
    queries: np.ndarray, references: np.ndarray, packed: bool = False
) -> np.ndarray:
    """Dot-product similarity between query and reference hypervectors.

    Parameters
    ----------
    queries:
        ``(n, D)`` or ``(D,)`` array of query hypervectors.
    references:
        ``(m, D)`` or ``(D,)`` array of reference (class) hypervectors.
    packed:
        When ``True``, route binary/bipolar inputs through the bit-packed
        popcount engine (:mod:`repro.hdc.packed`).  The result is bit-exact
        with the unpacked path; inputs outside the two 1-bit alphabets
        raise :class:`ValueError`.

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` similarity matrix (squeezed when either input was 1-D).
        Exact ``int64`` for integer (or packed) inputs, floating point
        otherwise.
    """
    q, q_squeeze = _atleast_2d(queries)
    r, r_squeeze = _atleast_2d(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries have D={q.shape[1]}, "
            f"references have D={r.shape[1]}"
        )
    if packed:
        from repro.hdc.packed import packed_dot_similarity

        q_packed, r_packed = _pack_pair(q, r)
        sims = packed_dot_similarity(q_packed, r_packed)
    else:
        sims = _matmul_sims(q, r)
    if q_squeeze and r_squeeze:
        return sims[0, 0]
    if q_squeeze:
        return sims[0]
    if r_squeeze:
        return sims[:, 0]
    return sims


def cosine_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Cosine similarity (dot similarity of L2-normalized vectors)."""
    q, q_squeeze = _atleast_2d(queries)
    r, r_squeeze = _atleast_2d(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError("dimension mismatch between queries and references")
    # Norms need floating point, but float inputs are used without a copy.
    qf = q if np.issubdtype(q.dtype, np.floating) else q.astype(np.float64)
    rf = r if np.issubdtype(r.dtype, np.floating) else r.astype(np.float64)
    q_norm = np.linalg.norm(qf, axis=1, keepdims=True)
    r_norm = np.linalg.norm(rf, axis=1, keepdims=True)
    q_norm[q_norm == 0.0] = 1.0
    r_norm[r_norm == 0.0] = 1.0
    sims = (qf / q_norm) @ (rf / r_norm).T
    # Rounding (and denormal underflow in the norms) can push the result a
    # hair outside [-1, 1]; clamp so callers can rely on the cosine bound.
    sims = np.clip(sims, -1.0, 1.0)
    if q_squeeze and r_squeeze:
        return sims[0, 0]
    if q_squeeze:
        return sims[0]
    if r_squeeze:
        return sims[:, 0]
    return sims


def hamming_distance(
    queries: np.ndarray, references: np.ndarray, packed: bool = False
) -> np.ndarray:
    """Element-count Hamming distance between binary (or bipolar) vectors.

    With ``packed=True`` the distance is computed as an XOR-popcount over
    bit-packed words (bit-exact, but restricted to the ``{0, 1}`` and
    ``{-1, +1}`` alphabets).
    """
    q, q_squeeze = _atleast_2d(queries)
    r, r_squeeze = _atleast_2d(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError("dimension mismatch between queries and references")
    if packed:
        from repro.hdc.packed import packed_hamming_distance

        q_packed, r_packed = _pack_pair(q, r)
        dist = packed_hamming_distance(q_packed, r_packed)
    else:
        dist = (q[:, None, :] != r[None, :, :]).sum(axis=-1).astype(np.int64)
    if q_squeeze and r_squeeze:
        return dist[0, 0]
    if q_squeeze:
        return dist[0]
    if r_squeeze:
        return dist[:, 0]
    return dist


def hamming_similarity(
    queries: np.ndarray, references: np.ndarray, packed: bool = False
) -> np.ndarray:
    """Normalized Hamming *similarity*: fraction of matching positions."""
    q, _ = _atleast_2d(queries)
    dimension = q.shape[1]
    dist = hamming_distance(queries, references, packed=packed)
    return 1.0 - np.asarray(dist, dtype=np.float64) / dimension


def pairwise_dot(vectors: np.ndarray) -> np.ndarray:
    """Symmetric pairwise dot-similarity matrix of a set of vectors."""
    arr = np.asarray(vectors)
    if arr.ndim != 2:
        raise ValueError("pairwise_dot expects a 2-D array")
    return _matmul_sims(arr, arr)


def top1(similarities: np.ndarray) -> np.ndarray:
    """Index of the most similar reference for each query row.

    Ties are resolved in favour of the lowest index (numpy argmax semantics),
    which matches deterministic hardware comparator behaviour.
    """
    sims = np.asarray(similarities)
    if sims.ndim == 1:
        return int(np.argmax(sims))
    if sims.ndim == 2:
        return np.argmax(sims, axis=1)
    raise ValueError("top1 expects a 1-D or 2-D similarity array")


def pruned_top1(
    queries: np.ndarray,
    references: np.ndarray,
    groups: Optional[np.ndarray] = None,
    prune_topk: Optional[int] = None,
) -> np.ndarray:
    """Index of the most similar reference via centroid-pruned search.

    Bit-identical to ``top1(dot_similarity(queries, references))`` for
    binary/bipolar inputs, but screens each query against per-group
    centroid sketches and exactly re-ranks only a shortlist of groups
    (:class:`repro.hdc.pruned.PrunedAM`), which is sublinear in the number
    of reference rows when ``groups`` carves them into many clusters.

    Parameters
    ----------
    queries / references:
        ``(n, D)`` / ``(m, D)`` binary ``{0, 1}`` or bipolar ``{-1, +1}``
        hypervectors (both drawn from the same alphabet).
    groups:
        Optional ``(m,)`` row-to-group map; rows sharing a group share a
        screening sketch.  Defaults to singleton groups, which keeps the
        result exact but yields no pruning benefit -- pass the natural
        clustering (e.g. class labels) to actually prune.
    prune_topk:
        Shortlist width (groups exactly re-ranked per query); ``None``
        uses the ``ceil(sqrt(num_groups))`` heuristic.
    """
    from repro.hdc.packed import PackedAM
    from repro.hdc.pruned import PrunedAM

    q, q_squeeze = _atleast_2d(np.asarray(queries))
    r, _ = _atleast_2d(np.asarray(references))
    if q.shape[1] != r.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries have D={q.shape[1]}, "
            f"references have D={r.shape[1]}"
        )
    if groups is None:
        group_map = np.arange(r.shape[0], dtype=np.int64)
    else:
        raw = np.asarray(groups)
        if raw.shape != (r.shape[0],):
            raise ValueError(
                f"groups must be a ({r.shape[0]},) row-to-group map, "
                f"got shape {raw.shape}"
            )
        # Compact arbitrary group ids to 0..G-1 (group identity only
        # controls pruning granularity, never the returned row).
        _, group_map = np.unique(raw, return_inverse=True)
    q_packed, r_packed = _pack_pair(q, r)
    index = PrunedAM(PackedAM(r_packed, group_map), prune_topk=prune_topk)
    rows = index.predict_columns(q_packed)
    if q_squeeze:
        return int(rows[0])
    return rows
