"""Similarity metrics for associative search.

The paper performs associative search with the *dot similarity* (Eq. 3),
because a dot product is exactly the operation an IMC crossbar computes in a
single matrix-vector multiplication.  Cosine and Hamming similarity are
provided for completeness (they are the metrics used by several of the
baseline models' original papers) and for the test suite, which checks the
well-known equivalences between them for binary/bipolar data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _atleast_2d(x: np.ndarray) -> Tuple[np.ndarray, bool]:
    """Promote a 1-D vector to a single-row matrix, remembering the squeeze."""
    arr = np.asarray(x)
    if arr.ndim == 1:
        return arr[None, :], True
    if arr.ndim == 2:
        return arr, False
    raise ValueError(f"expected a 1-D or 2-D array, got ndim={arr.ndim}")


def dot_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Dot-product similarity between query and reference hypervectors.

    Parameters
    ----------
    queries:
        ``(n, D)`` or ``(D,)`` array of query hypervectors.
    references:
        ``(m, D)`` or ``(D,)`` array of reference (class) hypervectors.

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` similarity matrix (squeezed when either input was 1-D).
    """
    q, q_squeeze = _atleast_2d(queries)
    r, r_squeeze = _atleast_2d(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries have D={q.shape[1]}, "
            f"references have D={r.shape[1]}"
        )
    sims = q.astype(np.float64) @ r.astype(np.float64).T
    if q_squeeze and r_squeeze:
        return sims[0, 0]
    if q_squeeze:
        return sims[0]
    if r_squeeze:
        return sims[:, 0]
    return sims


def cosine_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Cosine similarity (dot similarity of L2-normalized vectors)."""
    q, q_squeeze = _atleast_2d(queries)
    r, r_squeeze = _atleast_2d(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError("dimension mismatch between queries and references")
    qf = q.astype(np.float64)
    rf = r.astype(np.float64)
    q_norm = np.linalg.norm(qf, axis=1, keepdims=True)
    r_norm = np.linalg.norm(rf, axis=1, keepdims=True)
    q_norm[q_norm == 0.0] = 1.0
    r_norm[r_norm == 0.0] = 1.0
    sims = (qf / q_norm) @ (rf / r_norm).T
    # Rounding (and denormal underflow in the norms) can push the result a
    # hair outside [-1, 1]; clamp so callers can rely on the cosine bound.
    sims = np.clip(sims, -1.0, 1.0)
    if q_squeeze and r_squeeze:
        return sims[0, 0]
    if q_squeeze:
        return sims[0]
    if r_squeeze:
        return sims[:, 0]
    return sims


def hamming_distance(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Element-count Hamming distance between binary (or bipolar) vectors."""
    q, q_squeeze = _atleast_2d(queries)
    r, r_squeeze = _atleast_2d(references)
    if q.shape[1] != r.shape[1]:
        raise ValueError("dimension mismatch between queries and references")
    dist = (q[:, None, :] != r[None, :, :]).sum(axis=-1).astype(np.int64)
    if q_squeeze and r_squeeze:
        return dist[0, 0]
    if q_squeeze:
        return dist[0]
    if r_squeeze:
        return dist[:, 0]
    return dist


def hamming_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Normalized Hamming *similarity*: fraction of matching positions."""
    q, _ = _atleast_2d(queries)
    dimension = q.shape[1]
    dist = hamming_distance(queries, references)
    return 1.0 - np.asarray(dist, dtype=np.float64) / dimension


def pairwise_dot(vectors: np.ndarray) -> np.ndarray:
    """Symmetric pairwise dot-similarity matrix of a set of vectors."""
    arr = np.asarray(vectors, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("pairwise_dot expects a 2-D array")
    return arr @ arr.T


def top1(similarities: np.ndarray) -> np.ndarray:
    """Index of the most similar reference for each query row.

    Ties are resolved in favour of the lowest index (numpy argmax semantics),
    which matches deterministic hardware comparator behaviour.
    """
    sims = np.asarray(similarities)
    if sims.ndim == 1:
        return int(np.argmax(sims))
    if sims.ndim == 2:
        return np.argmax(sims, axis=1)
    raise ValueError("top1 expects a 1-D or 2-D similarity array")
