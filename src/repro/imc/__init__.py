"""In-memory computing (IMC) architecture substrate.

This package models the hardware side of the paper:

* :mod:`repro.imc.array` -- a single IMC array (``rows x cols`` of 1-bit
  cells) with programming, binary-input MVM and utilization accounting.
* :mod:`repro.imc.mapping` -- analytical mapping of encoding-module and
  associative-memory matrices onto fixed-size arrays for the three schemes
  of Fig. 1 (basic, partitioned, MEMHD fully-utilized), producing the
  cycle / array / utilization numbers of Table II.
* :mod:`repro.imc.cost_model` -- SRAM-IMC energy and latency cost model
  (the NeuroSim-derived constants substitute) behind Fig. 7.
* :mod:`repro.imc.simulator` -- a functional, tile-accurate simulator that
  maps a trained MEMHD model into arrays and reproduces the software
  model's predictions bit-exactly while counting cycles.
* :mod:`repro.imc.noise` -- device non-ideality injection (bit flips,
  stuck-at faults, analog read noise) for robustness studies.
* :mod:`repro.imc.analysis` -- Table II / Fig. 7 report generation.
"""

from repro.imc.array import IMCArrayConfig, IMCArray
from repro.imc.adc import ADCConfig, adc_energy_scale, evaluate_adc_sweep
from repro.imc.scheduler import AcceleratorScheduler, ScheduleReport
from repro.imc.mapping import (
    AMStructure,
    MappingAnalysis,
    basic_am_structure,
    partitioned_am_structure,
    memhd_am_structure,
    analyze_am_mapping,
    analyze_em_mapping,
    tile_matrix,
    TiledMatrix,
)
from repro.imc.cost_model import IMCCostParameters, CostModel, EnergyBreakdown
from repro.imc.simulator import InMemoryInference, SimulatedInferenceStats
from repro.imc.noise import NoiseModel, flip_bits, apply_stuck_at_faults
from repro.imc.analysis import (
    MappingReport,
    full_mapping_report,
    table2_rows,
    energy_comparison,
)

__all__ = [
    "IMCArrayConfig",
    "IMCArray",
    "ADCConfig",
    "adc_energy_scale",
    "evaluate_adc_sweep",
    "AcceleratorScheduler",
    "ScheduleReport",
    "AMStructure",
    "MappingAnalysis",
    "basic_am_structure",
    "partitioned_am_structure",
    "memhd_am_structure",
    "analyze_am_mapping",
    "analyze_em_mapping",
    "tile_matrix",
    "TiledMatrix",
    "IMCCostParameters",
    "CostModel",
    "EnergyBreakdown",
    "InMemoryInference",
    "SimulatedInferenceStats",
    "NoiseModel",
    "flip_bits",
    "apply_stuck_at_faults",
    "MappingReport",
    "full_mapping_report",
    "table2_rows",
    "energy_comparison",
]
