"""ADC / DAC precision modelling for IMC readout and drive.

The functional simulator in :mod:`repro.imc.simulator` assumes ideal
peripherals: row drivers apply the exact (real-valued) inputs and column
ADCs return exact integer sums.  Real IMC macros quantize both:

* the **input DAC** drives each word line with a ``input_bits``-bit version
  of the feature value (binary queries need only 1 bit, but the encoding
  module's inputs are analog features in ``[0, 1]``);
* the **column ADC** digitizes each column's accumulated sum with
  ``output_bits`` of resolution over a fixed full-scale range.

Low ADC resolution is the dominant accuracy/energy trade-off in published
IMC macros, so this module provides a small, composable model of both
effects plus a helper that evaluates the accuracy of a mapped MEMHD model as
a function of ADC resolution (used by the ``bench_adc_precision`` ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ADCConfig:
    """Peripheral quantization settings for one IMC array.

    Attributes
    ----------
    output_bits:
        Column ADC resolution in bits.  ``None`` models an ideal (infinite
        resolution) readout.
    full_scale:
        The column-sum value mapped to the ADC's top code.  For a binary
        ``rows x cols`` array the natural full scale is the number of rows
        (every cell on and every input high); callers mapping sub-matrices
        may use the actually-used row count for a tighter range.
    input_bits:
        Input DAC resolution in bits.  ``None`` models ideal (real-valued)
        row drive.  Inputs are assumed to lie in ``[0, 1]``.
    signed:
        When True, the ADC range covers ``[-full_scale, +full_scale]``
        (needed if the digital periphery pre-subtracts an offset before the
        ADC); when False (default) it covers ``[0, full_scale]``.
    """

    output_bits: Optional[int] = 8
    full_scale: float = 128.0
    input_bits: Optional[int] = None
    signed: bool = False

    def __post_init__(self) -> None:
        if self.output_bits is not None and self.output_bits < 1:
            raise ValueError("output_bits must be >= 1 or None")
        if self.input_bits is not None and self.input_bits < 1:
            raise ValueError("input_bits must be >= 1 or None")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")

    @property
    def output_levels(self) -> Optional[int]:
        """Number of distinct ADC output codes (``None`` when ideal)."""
        if self.output_bits is None:
            return None
        return 2 ** self.output_bits

    @property
    def lsb(self) -> Optional[float]:
        """Size of one ADC step in column-sum units (``None`` when ideal)."""
        levels = self.output_levels
        if levels is None:
            return None
        span = 2 * self.full_scale if self.signed else self.full_scale
        return span / (levels - 1)

    def quantize_inputs(self, inputs: np.ndarray) -> np.ndarray:
        """Quantize row-drive values in ``[0, 1]`` to the DAC resolution."""
        arr = np.asarray(inputs, dtype=np.float64)
        if self.input_bits is None:
            return arr.copy()
        levels = 2 ** self.input_bits - 1
        return np.round(np.clip(arr, 0.0, 1.0) * levels) / levels

    def quantize_outputs(self, sums: np.ndarray) -> np.ndarray:
        """Quantize column sums to the ADC resolution (with clipping)."""
        arr = np.asarray(sums, dtype=np.float64)
        if self.output_bits is None:
            return arr.copy()
        low = -self.full_scale if self.signed else 0.0
        clipped = np.clip(arr, low, self.full_scale)
        lsb = self.lsb
        return np.round((clipped - low) / lsb) * lsb + low


def adc_energy_scale(output_bits: Optional[int], reference_bits: int = 8) -> float:
    """Relative ADC energy versus a reference resolution.

    ADC energy grows roughly 4x per additional 2 bits (the usual
    Walden-figure-of-merit scaling, i.e. proportional to ``2**bits``);
    this helper exposes that scaling so cost studies can trade accuracy
    against readout energy.  Ideal readout (``None``) is treated as the
    reference.
    """
    if reference_bits < 1:
        raise ValueError("reference_bits must be >= 1")
    if output_bits is None:
        return 1.0
    if output_bits < 1:
        raise ValueError("output_bits must be >= 1 or None")
    return 2.0 ** (output_bits - reference_bits)


def evaluate_adc_sweep(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    bit_settings,
    array_config=None,
) -> dict:
    """Accuracy of a mapped MEMHD model across ADC resolutions.

    Parameters
    ----------
    model:
        A fitted :class:`repro.core.model.MEMHDModel`.
    features, labels:
        Evaluation split.
    bit_settings:
        Iterable of ADC resolutions (ints or ``None`` for ideal readout).
    array_config:
        IMC array geometry; defaults to 128x128.

    Returns
    -------
    dict
        ``{bits: accuracy}`` for every requested setting.  The associative
        search is evaluated with the ADC applied to the AM column sums
        (full scale = the model's dimension, the maximum possible binary
        dot product).
    """
    from repro.imc.array import IMCArrayConfig
    from repro.imc.simulator import InMemoryInference

    array = array_config or IMCArrayConfig(128, 128)
    engine = InMemoryInference(model, array)
    queries = engine.encode(np.asarray(features, dtype=np.float64))
    if queries.ndim == 1:
        queries = queries[None, :]
    scores = np.atleast_2d(engine.associative_search(queries))
    y = np.asarray(labels)

    results = {}
    for bits in bit_settings:
        adc = ADCConfig(output_bits=bits, full_scale=float(model.config.dimension))
        quantized = adc.quantize_outputs(scores)
        predictions = engine.column_classes[np.argmax(quantized, axis=1)]
        results[bits] = float(np.mean(predictions == y))
    return results
