"""Table II / Fig. 7 style mapping and energy analysis.

This module turns the analytical mapping layer into the exact report
structures the paper presents:

* :func:`full_mapping_report` / :func:`table2_rows` -- computation cycles,
  array usage and AM utilization of the basic, partitioned and MEMHD
  mappings for a given dataset profile and IMC array size (Table II),
  including the "Improv." factors of the last column.
* :func:`energy_comparison` -- normalized AM energy consumption, cycle
  count and array usage across iso-accuracy model configurations (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.imc.array import IMCArrayConfig
from repro.imc.cost_model import CostModel
from repro.imc.mapping import (
    AMStructure,
    MappingAnalysis,
    analyze_am_mapping,
    analyze_em_mapping,
    basic_am_structure,
    memhd_am_structure,
    partitioned_am_structure,
)


@dataclass(frozen=True)
class MappingReport:
    """One column of Table II: a mapping method's full accounting."""

    method: str
    am_structure: str
    em_cycles: int
    am_cycles: int
    em_arrays: int
    am_arrays: int
    am_utilization: float

    @property
    def total_cycles(self) -> int:
        return self.em_cycles + self.am_cycles

    @property
    def total_arrays(self) -> int:
        return self.em_arrays + self.am_arrays

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "am_structure": self.am_structure,
            "em_cycles": self.em_cycles,
            "am_cycles": self.am_cycles,
            "total_cycles": self.total_cycles,
            "em_arrays": self.em_arrays,
            "am_arrays": self.am_arrays,
            "total_arrays": self.total_arrays,
            "am_utilization": self.am_utilization,
        }


def _report_for(
    num_features: int,
    encoding_dimension: int,
    am_structure: AMStructure,
    array: IMCArrayConfig,
) -> MappingReport:
    """Assemble one MappingReport from the EM and AM analytical mappings."""
    em = analyze_em_mapping(num_features, encoding_dimension, array)
    am = analyze_am_mapping(am_structure, array)
    return MappingReport(
        method=am_structure.label,
        am_structure=am_structure.structure_label,
        em_cycles=em.cycles,
        am_cycles=am.cycles,
        em_arrays=em.arrays,
        am_arrays=am.arrays,
        am_utilization=am.utilization,
    )


def full_mapping_report(
    num_features: int,
    num_classes: int,
    baseline_dimension: int,
    memhd_dimension: int,
    memhd_columns: int,
    partition_counts: Sequence[int],
    array: Optional[IMCArrayConfig] = None,
) -> List[MappingReport]:
    """Table II accounting for one dataset.

    Parameters
    ----------
    num_features:
        Input feature count ``f`` (784 for MNIST/FMNIST, 617 for ISOLET).
    num_classes:
        Number of classes ``k``.
    baseline_dimension:
        Dimensionality of the Basic/Partitioning baselines (10240 in the
        paper).
    memhd_dimension / memhd_columns:
        MEMHD's ``D`` and ``C`` (128x128 for MNIST/FMNIST, 512x128 for
        ISOLET in Table II).
    partition_counts:
        Partition counts ``P`` to report for the partitioning baseline
        ((5, 10) and (2, 4) in the paper).
    array:
        IMC array geometry; defaults to 128x128.
    """
    array = array or IMCArrayConfig(128, 128)
    reports = [
        _report_for(
            num_features,
            baseline_dimension,
            basic_am_structure(baseline_dimension, num_classes),
            array,
        )
    ]
    for partitions in partition_counts:
        reports.append(
            _report_for(
                num_features,
                baseline_dimension,
                partitioned_am_structure(baseline_dimension, num_classes, partitions),
                array,
            )
        )
    reports.append(
        _report_for(
            num_features,
            memhd_dimension,
            memhd_am_structure(memhd_dimension, memhd_columns),
            array,
        )
    )
    return reports


def improvement_factors(reports: Sequence[MappingReport]) -> Dict[str, float]:
    """The "Improv." column of Table II: baseline vs. MEMHD ratios.

    The baseline is the first report (Basic mapping) and MEMHD is the last;
    utilization improvement is reported as the difference between MEMHD's
    utilization (always 1.0) and the best baseline utilization, matching
    the paper's "percentage-point increase" convention.
    """
    if len(reports) < 2:
        raise ValueError("need at least a baseline and a MEMHD report")
    baseline = reports[0]
    memhd = reports[-1]
    best_baseline_utilization = max(r.am_utilization for r in reports[:-1])
    return {
        "cycle_reduction": baseline.total_cycles / memhd.total_cycles,
        "array_reduction": baseline.total_arrays / memhd.total_arrays,
        "utilization_gain": memhd.am_utilization - best_baseline_utilization,
    }


def table2_rows(
    reports: Sequence[MappingReport],
) -> List[Dict[str, object]]:
    """Flatten MappingReports into printable Table II rows."""
    rows = []
    for report in reports:
        row = report.as_dict()
        row["am_utilization"] = f"{report.am_utilization * 100:.2f}%"
        rows.append(row)
    return rows


@dataclass(frozen=True)
class EnergyComparisonEntry:
    """One bar group of Fig. 7: a model's AM arrays, cycles and energy."""

    model: str
    am_structure: str
    arrays: int
    cycles: int
    energy_pj: float
    normalized_energy: float
    normalized_cycles: float
    normalized_arrays: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "am_structure": self.am_structure,
            "arrays": self.arrays,
            "cycles": self.cycles,
            "energy_pj": self.energy_pj,
            "normalized_energy": self.normalized_energy,
            "normalized_cycles": self.normalized_cycles,
            "normalized_arrays": self.normalized_arrays,
        }


def energy_comparison(
    model_structures: Sequence[Dict[str, object]],
    array: Optional[IMCArrayConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> List[EnergyComparisonEntry]:
    """Fig. 7: normalized AM energy, cycles and array usage per model.

    Parameters
    ----------
    model_structures:
        Sequence of dictionaries with keys ``name``, ``dimension`` (AM
        dimensionality per partition), ``num_vectors`` (stored columns) and
        optionally ``partitions`` (default 1).  These describe the AM
        structures of the iso-accuracy configurations compared in Fig. 7.
    array:
        IMC array geometry (default 128x128).
    cost_model:
        Cost model mapping cycles to energy; defaults to the library's
        SRAM-IMC constants.
    """
    array = array or IMCArrayConfig(128, 128)
    model = cost_model or CostModel(array=array)

    analyses: List[MappingAnalysis] = []
    labels: List[str] = []
    for spec in model_structures:
        structure = AMStructure(
            dimension=int(spec["dimension"]),
            num_vectors=int(spec["num_vectors"]),
            partitions=int(spec.get("partitions", 1)),
            label=str(spec["name"]),
        )
        analyses.append(analyze_am_mapping(structure, array))
        labels.append(str(spec["name"]))

    costs = [model.inference_cost(analysis) for analysis in analyses]
    max_energy = max(cost.energy_pj for cost in costs)
    max_cycles = max(cost.cycles for cost in costs)
    max_arrays = max(cost.arrays for cost in costs)

    entries = []
    for label, analysis, cost in zip(labels, analyses, costs):
        entries.append(
            EnergyComparisonEntry(
                model=label,
                am_structure=analysis.structure_label,
                arrays=cost.arrays,
                cycles=cost.cycles,
                energy_pj=cost.energy_pj,
                normalized_energy=100.0 * cost.energy_pj / max_energy,
                normalized_cycles=100.0 * cost.cycles / max_cycles,
                normalized_arrays=100.0 * cost.arrays / max_arrays,
            )
        )
    return entries
