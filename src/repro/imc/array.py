"""Single in-memory-computing array model.

An IMC array is a grid of ``rows x cols`` single-bit cells (SRAM 8T/10T,
ReRAM, FeFET, ...).  Programming writes a binary matrix into a rectangular
region of the grid; an MVM activation drives a binary (or multi-bit) input
vector onto the rows and reads, per column, the accumulated sum of
``input[i] * cell[i, j]`` -- the ideal, noise-free digital abstraction of
the analog column current plus ADC.

The array also keeps simple usage counters (programmed rows/columns, number
of MVM activations) that the analysis layer aggregates into the utilization
and cycle numbers of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class IMCArrayConfig:
    """Geometry of a single IMC array.

    Attributes
    ----------
    rows:
        Number of word lines (input dimension of one MVM).  The paper's
        hardware target is 128.
    cols:
        Number of bit lines (output dimension of one MVM).  128 in the
        paper.
    """

    rows: int = 128
    cols: int = 128

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")

    @property
    def cells(self) -> int:
        """Total number of 1-bit cells."""
        return self.rows * self.cols

    @property
    def label(self) -> str:
        """Human-readable ``RxC`` label (e.g. ``"128x128"``)."""
        return f"{self.rows}x{self.cols}"


class IMCArray:
    """A single programmable IMC array with MVM readout.

    Parameters
    ----------
    config:
        Array geometry.
    name:
        Optional identifier used in simulator traces.
    """

    def __init__(self, config: IMCArrayConfig, name: Optional[str] = None) -> None:
        self.config = config
        self.name = name or "array"
        self.cells = np.zeros((config.rows, config.cols), dtype=np.int8)
        self._programmed = np.zeros((config.rows, config.cols), dtype=bool)
        self.activations = 0
        self.writes = 0

    # ---------------------------------------------------------- programming
    def program(
        self, matrix: np.ndarray, row_offset: int = 0, col_offset: int = 0
    ) -> None:
        """Write a binary sub-matrix into the array at the given offset.

        Raises if the matrix does not fit or contains values outside
        ``{0, 1}``.
        """
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise ValueError("matrix must be 2-D")
        if not np.all(np.isin(arr, (0, 1))):
            raise ValueError("IMC cells store binary values; matrix must be in {0, 1}")
        rows, cols = arr.shape
        if row_offset < 0 or col_offset < 0:
            raise ValueError("offsets must be non-negative")
        if row_offset + rows > self.config.rows or col_offset + cols > self.config.cols:
            raise ValueError(
                f"matrix of shape {arr.shape} does not fit at offset "
                f"({row_offset}, {col_offset}) in a {self.config.label} array"
            )
        self.cells[row_offset : row_offset + rows, col_offset : col_offset + cols] = (
            arr.astype(np.int8)
        )
        self._programmed[
            row_offset : row_offset + rows, col_offset : col_offset + cols
        ] = True
        self.writes += rows * cols

    # -------------------------------------------------------------- compute
    def mvm(self, inputs: np.ndarray) -> np.ndarray:
        """One MVM activation: column-wise accumulate of ``inputs @ cells``.

        ``inputs`` must have length ``rows``; entries may be binary (word
        line on/off) or real-valued (multi-bit DAC drive, used for the
        encoding module whose inputs are normalized features).  Returns a
        float vector of length ``cols``.
        """
        vec = np.asarray(inputs, dtype=np.float64)
        if vec.ndim != 1 or vec.shape[0] != self.config.rows:
            raise ValueError(
                f"inputs must be a vector of length {self.config.rows}, "
                f"got shape {vec.shape}"
            )
        self.activations += 1
        return vec @ self.cells.astype(np.float64)

    def mvm_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Batch of MVM activations (one activation counted per row)."""
        arr = np.asarray(inputs, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.config.rows:
            raise ValueError(
                f"inputs must have shape (n, {self.config.rows}), got {arr.shape}"
            )
        self.activations += arr.shape[0]
        return arr @ self.cells.astype(np.float64)

    # ------------------------------------------------------------- counters
    @property
    def used_rows(self) -> int:
        """Number of rows containing at least one programmed cell."""
        return int(self._programmed.any(axis=1).sum())

    @property
    def used_cols(self) -> int:
        """Number of columns containing at least one programmed cell."""
        return int(self._programmed.any(axis=0).sum())

    @property
    def column_utilization(self) -> float:
        """Fraction of columns in use -- the paper's "AM utilization"."""
        return self.used_cols / self.config.cols

    @property
    def cell_utilization(self) -> float:
        """Fraction of cells programmed (a stricter utilization measure)."""
        return float(self._programmed.mean())

    def reset_counters(self) -> None:
        """Zero the activation/write counters without erasing the cells."""
        self.activations = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IMCArray({self.name!r}, {self.config.label}, "
            f"used={self.used_rows}x{self.used_cols})"
        )
