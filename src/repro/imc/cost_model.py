"""SRAM-IMC energy and latency cost model.

The paper takes read/write energies and cycle times of an SRAM-based IMC
macro from NeuroSim simulations (its Refs. [19], [20]).  NeuroSim itself is
not shippable here, so this module provides a parameterized analytical cost
model with defaults in the range published for 128x128 SRAM compute-in-
memory macros.  Everything the paper actually reports (Fig. 7, the Table II
"improvement" factors) is *normalized*, so the absolute constants cancel;
they are nevertheless exposed so users can calibrate the model against their
own technology data.

Accounting rules, matching Sec. IV-F of the paper:

* Each MVM activation of one array costs ``mvm_energy_pj`` and one cycle of
  ``cycle_latency_ns``.
* Arrays holding a structure cost ``write_energy_pj_per_cell`` once, at
  programming time (not part of inference energy).
* Partitioning schemes use fewer arrays but proportionally more cycles, so
  their inference energy is constant across partition counts -- exactly the
  observation Fig. 7 makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.imc.array import IMCArrayConfig
from repro.imc.mapping import MappingAnalysis


@dataclass(frozen=True)
class IMCCostParameters:
    """Technology constants of one IMC array.

    The defaults describe a 128x128 SRAM compute-in-memory macro in a
    28--65nm class process; they are order-of-magnitude figures intended for
    *relative* comparisons (the paper's normalized plots), not sign-off.

    Attributes
    ----------
    mvm_energy_pj:
        Energy of one full-array MVM activation (row drivers + bit-line
        discharge + ADC), in picojoules.
    cycle_latency_ns:
        Latency of one MVM activation, in nanoseconds.
    write_energy_pj_per_cell:
        Energy to program one cell, in picojoules.
    leakage_power_uw:
        Static leakage power of one array, in microwatts (used for
        energy-per-inference at a given throughput if desired).
    reference_array:
        Geometry the constants were calibrated for.  Costs scale linearly
        with cell count when a different geometry is analyzed.
    """

    mvm_energy_pj: float = 18.0
    cycle_latency_ns: float = 5.2
    write_energy_pj_per_cell: float = 0.35
    leakage_power_uw: float = 1.1
    reference_array: IMCArrayConfig = IMCArrayConfig(128, 128)

    def __post_init__(self) -> None:
        for name in (
            "mvm_energy_pj",
            "cycle_latency_ns",
            "write_energy_pj_per_cell",
            "leakage_power_uw",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def scaled_mvm_energy(self, array: IMCArrayConfig) -> float:
        """MVM energy scaled linearly with the array's cell count."""
        return self.mvm_energy_pj * array.cells / self.reference_array.cells

    def scaled_latency(self, array: IMCArrayConfig) -> float:
        """Cycle latency scaled with the array's row count (bit-line depth)."""
        return self.cycle_latency_ns * array.rows / self.reference_array.rows


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-inference cost of one mapped structure."""

    label: str
    cycles: int
    arrays: int
    energy_pj: float
    latency_ns: float
    programming_energy_pj: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "cycles": self.cycles,
            "arrays": self.arrays,
            "energy_pj": self.energy_pj,
            "latency_ns": self.latency_ns,
            "programming_energy_pj": self.programming_energy_pj,
        }


class CostModel:
    """Maps cycle/array counts to energy and latency."""

    def __init__(
        self,
        parameters: Optional[IMCCostParameters] = None,
        array: Optional[IMCArrayConfig] = None,
    ) -> None:
        self.parameters = parameters or IMCCostParameters()
        self.array = array or self.parameters.reference_array

    def inference_cost(self, analysis: MappingAnalysis) -> EnergyBreakdown:
        """Energy/latency of one inference pass over a mapped structure.

        Every cycle is one array activation; activations are serialized on a
        single macro, so latency is ``cycles * cycle_latency``.  Programming
        energy covers writing all mapped cells once.
        """
        mvm_energy = self.parameters.scaled_mvm_energy(self.array)
        latency = self.parameters.scaled_latency(self.array)
        energy = analysis.cycles * mvm_energy
        programming = (
            analysis.arrays
            * self.array.cells
            * self.parameters.write_energy_pj_per_cell
        )
        return EnergyBreakdown(
            label=analysis.label,
            cycles=analysis.cycles,
            arrays=analysis.arrays,
            energy_pj=energy,
            latency_ns=analysis.cycles * latency,
            programming_energy_pj=programming,
        )

    def total_inference_cost(
        self, em: MappingAnalysis, am: MappingAnalysis, label: str = "total"
    ) -> EnergyBreakdown:
        """Combined encoding + associative-search cost of one inference."""
        em_cost = self.inference_cost(em)
        am_cost = self.inference_cost(am)
        return EnergyBreakdown(
            label=label,
            cycles=em_cost.cycles + am_cost.cycles,
            arrays=em_cost.arrays + am_cost.arrays,
            energy_pj=em_cost.energy_pj + am_cost.energy_pj,
            latency_ns=em_cost.latency_ns + am_cost.latency_ns,
            programming_energy_pj=em_cost.programming_energy_pj
            + am_cost.programming_energy_pj,
        )
