"""Mapping of HDC structures onto fixed-size IMC arrays.

Two layers live here:

1. **Analytical mapping** (:class:`AMStructure`, :func:`analyze_am_mapping`,
   :func:`analyze_em_mapping`): closed-form cycle / array / utilization
   accounting for the three mapping schemes of Fig. 1 --

   * *basic*: one class vector per class, full dimensionality ``D`` -- many
     row tiles, almost all columns idle;
   * *partitioning* [9]: the ``D``-dimensional class vectors are cut into
     ``P`` segments placed in additional columns of fewer arrays -- array
     count drops but the cycle count does not, because segments belonging to
     different partitions need different row inputs and therefore separate
     activations;
   * *MEMHD*: dimensionality equals the array's rows and the multi-centroid
     AM occupies every column, so associative search is a single activation
     of a single array.

   These formulas generate Table II.

2. **Physical tiling** (:func:`tile_matrix`, :class:`TiledMatrix`): splits an
   arbitrary binary matrix into array-sized tiles backed by real
   :class:`repro.imc.array.IMCArray` instances, used by the functional
   simulator to run bit-exact in-memory inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.imc.array import IMCArray, IMCArrayConfig


# --------------------------------------------------------------------------
# Analytical mapping (Table II)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class AMStructure:
    """Logical structure of an associative memory to be mapped.

    Attributes
    ----------
    dimension:
        Row dimension of the stored structure *per partition* (``D / P``).
    num_vectors:
        Number of stored columns (class vectors x partitions, or MEMHD's
        ``C``).
    partitions:
        Number of partitions ``P`` the original hypervector was split into
        (1 for basic and MEMHD mappings).
    label:
        Mapping-scheme label used in reports ("Basic", "Partitioning (P=5)",
        "MEMHD", ...).
    """

    dimension: int
    num_vectors: int
    partitions: int = 1
    label: str = "AM"

    def __post_init__(self) -> None:
        if self.dimension <= 0 or self.num_vectors <= 0:
            raise ValueError("dimension and num_vectors must be positive")
        if self.partitions < 1:
            raise ValueError("partitions must be >= 1")

    @property
    def original_dimension(self) -> int:
        """Dimensionality of the unpartitioned hypervector (``D``)."""
        return self.dimension * self.partitions

    @property
    def structure_label(self) -> str:
        """The paper's ``<rows>x<cols>`` AM-structure label (e.g. 2048x50)."""
        return f"{self.dimension}x{self.num_vectors}"


def basic_am_structure(dimension: int, num_classes: int) -> AMStructure:
    """Basic mapping: one ``D``-dimensional class vector per class."""
    return AMStructure(dimension, num_classes, partitions=1, label="Basic")


def partitioned_am_structure(
    dimension: int, num_classes: int, partitions: int
) -> AMStructure:
    """Partitioned mapping [9]: ``P`` segments of ``D/P`` rows, ``k*P`` columns."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if dimension % partitions != 0:
        raise ValueError(
            f"dimension ({dimension}) must be divisible by partitions ({partitions})"
        )
    return AMStructure(
        dimension // partitions,
        num_classes * partitions,
        partitions=partitions,
        label=f"Partitioning (P={partitions})",
    )


def memhd_am_structure(dimension: int, columns: int) -> AMStructure:
    """MEMHD mapping: ``D`` rows (array rows) and ``C`` columns, fully used."""
    return AMStructure(dimension, columns, partitions=1, label="MEMHD")


@dataclass(frozen=True)
class MappingAnalysis:
    """Cycle / array / utilization accounting of one mapped structure.

    ``cycles`` is the number of MVM activations needed to complete one
    associative search (or one encoding) when the structure is processed on
    a *single* physical array; ``arrays`` is the number of array instances
    needed to hold the whole structure at once; ``utilization`` is the
    fraction of columns of the occupied arrays that hold mapped data (the
    paper's "AM utilization").
    """

    label: str
    structure_label: str
    row_tiles: int
    col_tiles: int
    cycles: int
    arrays: int
    utilization: float

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "structure": self.structure_label,
            "row_tiles": self.row_tiles,
            "col_tiles": self.col_tiles,
            "cycles": self.cycles,
            "arrays": self.arrays,
            "utilization": self.utilization,
        }


def analyze_am_mapping(
    structure: AMStructure, array: IMCArrayConfig
) -> MappingAnalysis:
    """Analytical Table II accounting for an associative memory structure.

    * ``arrays = ceil(D/P / rows) * ceil(cols / array_cols)`` -- tiles needed
      to store the structure.
    * ``cycles = ceil(D / rows) * ceil(cols / array_cols)`` where ``D`` is
      the *original* (unpartitioned) dimensionality -- partitioning does not
      reduce cycles because each partition requires its own row input.
    * ``utilization = cols / (ceil(cols / array_cols) * array_cols)``.
    """
    row_tiles = math.ceil(structure.dimension / array.rows)
    col_tiles = math.ceil(structure.num_vectors / array.cols)
    arrays = row_tiles * col_tiles
    cycles = math.ceil(structure.original_dimension / array.rows) * col_tiles
    utilization = structure.num_vectors / (col_tiles * array.cols)
    return MappingAnalysis(
        label=structure.label,
        structure_label=structure.structure_label,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        cycles=cycles,
        arrays=arrays,
        utilization=utilization,
    )


def analyze_em_mapping(
    num_features: int,
    dimension: int,
    array: IMCArrayConfig,
    label: str = "EM",
) -> MappingAnalysis:
    """Analytical accounting for the encoding module's ``f x D`` projection.

    Every tile holds a ``rows x cols`` slice of the projection matrix and
    needs one activation per inference, so cycles equal arrays.
    """
    if num_features <= 0 or dimension <= 0:
        raise ValueError("num_features and dimension must be positive")
    row_tiles = math.ceil(num_features / array.rows)
    col_tiles = math.ceil(dimension / array.cols)
    arrays = row_tiles * col_tiles
    utilization = dimension / (col_tiles * array.cols)
    return MappingAnalysis(
        label=label,
        structure_label=f"{num_features}x{dimension}",
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        cycles=arrays,
        arrays=arrays,
        utilization=utilization,
    )


# --------------------------------------------------------------------------
# Physical tiling (functional simulation)
# --------------------------------------------------------------------------
@dataclass
class _Tile:
    """One physical tile: an array plus the matrix region it holds."""

    array: IMCArray
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int


@dataclass
class TiledMatrix:
    """A binary matrix physically distributed over IMC arrays.

    Created by :func:`tile_matrix`.  :meth:`mvm` reproduces the exact
    integer result of ``inputs @ matrix`` by accumulating per-tile partial
    sums, while counting one cycle per tile activation (the quantity the
    analytical model calls "computation cycles").
    """

    shape: tuple
    array_config: IMCArrayConfig
    tiles: List[_Tile] = field(default_factory=list)
    cycles_executed: int = 0

    @property
    def num_arrays(self) -> int:
        return len(self.tiles)

    @property
    def cycles_per_mvm(self) -> int:
        """Tile activations needed for one full matrix-vector product."""
        return len(self.tiles)

    def mvm(self, inputs: np.ndarray) -> np.ndarray:
        """Full-matrix MVM via tile-wise activations and digital accumulation."""
        vec = np.asarray(inputs, dtype=np.float64)
        if vec.ndim != 1 or vec.shape[0] != self.shape[0]:
            raise ValueError(
                f"inputs must be a vector of length {self.shape[0]}, got {vec.shape}"
            )
        result = np.zeros(self.shape[1], dtype=np.float64)
        for tile in self.tiles:
            segment = np.zeros(self.array_config.rows, dtype=np.float64)
            segment[: tile.row_stop - tile.row_start] = vec[tile.row_start : tile.row_stop]
            partial = tile.array.mvm(segment)
            result[tile.col_start : tile.col_stop] += partial[
                : tile.col_stop - tile.col_start
            ]
            self.cycles_executed += 1
        return result

    def mvm_batch(self, inputs: np.ndarray) -> np.ndarray:
        """Batched MVM (counts ``n * cycles_per_mvm`` cycles)."""
        arr = np.asarray(inputs, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.shape[0]:
            raise ValueError(
                f"inputs must have shape (n, {self.shape[0]}), got {arr.shape}"
            )
        result = np.zeros((arr.shape[0], self.shape[1]), dtype=np.float64)
        for tile in self.tiles:
            segment = np.zeros((arr.shape[0], self.array_config.rows), dtype=np.float64)
            segment[:, : tile.row_stop - tile.row_start] = arr[
                :, tile.row_start : tile.row_stop
            ]
            partial = tile.array.mvm_batch(segment)
            result[:, tile.col_start : tile.col_stop] += partial[
                :, : tile.col_stop - tile.col_start
            ]
            self.cycles_executed += arr.shape[0]
        return result

    def column_utilization(self) -> float:
        """Mapped-column fraction over the occupied arrays (paper metric)."""
        col_tiles = math.ceil(self.shape[1] / self.array_config.cols)
        return self.shape[1] / (col_tiles * self.array_config.cols)

    def stored_matrix(self) -> np.ndarray:
        """Reassemble the stored binary matrix from the tiles (for checks)."""
        matrix = np.zeros(self.shape, dtype=np.int8)
        for tile in self.tiles:
            rows = tile.row_stop - tile.row_start
            cols = tile.col_stop - tile.col_start
            matrix[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop] = (
                tile.array.cells[:rows, :cols]
            )
        return matrix


def tile_matrix(
    matrix: np.ndarray,
    array_config: IMCArrayConfig,
    name: str = "matrix",
) -> TiledMatrix:
    """Distribute a binary matrix over as many IMC arrays as needed.

    The matrix is cut into ``rows x cols`` blocks in row-major tile order;
    each block is programmed into a fresh :class:`IMCArray`.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if not np.all(np.isin(arr, (0, 1))):
        raise ValueError("matrix must be binary ({0, 1}) to map onto IMC cells")
    tiled = TiledMatrix(shape=arr.shape, array_config=array_config)
    index = 0
    for row_start in range(0, arr.shape[0], array_config.rows):
        row_stop = min(row_start + array_config.rows, arr.shape[0])
        for col_start in range(0, arr.shape[1], array_config.cols):
            col_stop = min(col_start + array_config.cols, arr.shape[1])
            array = IMCArray(array_config, name=f"{name}[{index}]")
            array.program(arr[row_start:row_stop, col_start:col_stop])
            tiled.tiles.append(
                _Tile(
                    array=array,
                    row_start=row_start,
                    row_stop=row_stop,
                    col_start=col_start,
                    col_stop=col_stop,
                )
            )
            index += 1
    return tiled
