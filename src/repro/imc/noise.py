"""Device non-ideality injection for robustness studies.

HDC's selling point on emerging-memory IMC substrates is robustness to bit
errors and analog noise; this module provides the fault models used by the
extension benchmark (E9 in DESIGN.md):

* random bit flips in the programmed cells (retention / write errors),
* stuck-at-0 / stuck-at-1 cells (fabrication defects),
* Gaussian read noise on the analog column sums (ADC / thermal noise).

The functions operate on plain binary matrices so they compose with both
the analytical mapping layer and the functional simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.hdc.hypervector import _as_generator


@dataclass(frozen=True)
class NoiseModel:
    """Aggregate description of the injected non-idealities.

    Attributes
    ----------
    bit_flip_probability:
        Probability that a stored cell reads back inverted.
    stuck_at_zero_probability / stuck_at_one_probability:
        Probability that a cell is permanently stuck at 0 / 1.
    read_noise_sigma:
        Standard deviation of additive Gaussian noise on each column's
        accumulated MVM sum, expressed in absolute counts (one count = one
        fully-on cell).
    """

    bit_flip_probability: float = 0.0
    stuck_at_zero_probability: float = 0.0
    stuck_at_one_probability: float = 0.0
    read_noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "bit_flip_probability",
            "stuck_at_zero_probability",
            "stuck_at_one_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.read_noise_sigma < 0:
            raise ValueError("read_noise_sigma must be non-negative")
        total_stuck = self.stuck_at_zero_probability + self.stuck_at_one_probability
        if total_stuck > 1.0:
            raise ValueError("stuck-at probabilities must sum to at most 1")

    @property
    def is_ideal(self) -> bool:
        """True when no non-ideality is configured."""
        return (
            self.bit_flip_probability == 0.0
            and self.stuck_at_zero_probability == 0.0
            and self.stuck_at_one_probability == 0.0
            and self.read_noise_sigma == 0.0
        )

    def corrupt_memory(
        self,
        matrix: np.ndarray,
        rng: Optional[Union[int, np.random.Generator]] = None,
    ) -> np.ndarray:
        """Apply the storage-related faults (flips, stuck-at) to a matrix."""
        gen = _as_generator(rng)
        result = np.asarray(matrix).astype(np.int8).copy()
        if self.bit_flip_probability > 0:
            result = flip_bits(result, self.bit_flip_probability, gen)
        if self.stuck_at_zero_probability > 0 or self.stuck_at_one_probability > 0:
            result = apply_stuck_at_faults(
                result,
                self.stuck_at_zero_probability,
                self.stuck_at_one_probability,
                gen,
            )
        return result

    def corrupt_readout(
        self,
        sums: np.ndarray,
        rng: Optional[Union[int, np.random.Generator]] = None,
    ) -> np.ndarray:
        """Apply analog read noise to MVM column sums."""
        if self.read_noise_sigma == 0:
            return np.asarray(sums, dtype=np.float64)
        gen = _as_generator(rng)
        arr = np.asarray(sums, dtype=np.float64)
        return arr + gen.normal(0.0, self.read_noise_sigma, size=arr.shape)


def flip_bits(
    matrix: np.ndarray,
    probability: float,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """Independently invert each binary cell with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    arr = np.asarray(matrix)
    if not np.all(np.isin(arr, (0, 1))):
        raise ValueError("flip_bits expects a binary matrix")
    gen = _as_generator(rng)
    flips = gen.random(arr.shape) < probability
    return np.where(flips, 1 - arr, arr).astype(np.int8)


def apply_stuck_at_faults(
    matrix: np.ndarray,
    stuck_at_zero: float,
    stuck_at_one: float,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> np.ndarray:
    """Force random cells to 0 or 1, modelling fabrication defects."""
    if stuck_at_zero < 0 or stuck_at_one < 0 or stuck_at_zero + stuck_at_one > 1.0:
        raise ValueError("stuck-at probabilities must be non-negative and sum <= 1")
    arr = np.asarray(matrix)
    if not np.all(np.isin(arr, (0, 1))):
        raise ValueError("apply_stuck_at_faults expects a binary matrix")
    gen = _as_generator(rng)
    draw = gen.random(arr.shape)
    result = arr.astype(np.int8).copy()
    result[draw < stuck_at_zero] = 0
    result[(draw >= stuck_at_zero) & (draw < stuck_at_zero + stuck_at_one)] = 1
    return result
