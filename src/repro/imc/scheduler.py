"""Multi-array accelerator scheduling.

Table II counts cycles under the assumption that a *single* physical array
executes every tile activation sequentially, and arrays under the assumption
that the whole structure is resident at once.  A real accelerator sits
between these extremes: it owns a pool of ``num_arrays`` physical macros and
must schedule the encoding-module and associative-memory tiles of each
inference onto them.

:class:`AcceleratorScheduler` models that middle ground with a simple,
deterministic list schedule:

* every mapped tile is one unit of work taking one array-cycle;
* tiles of the encoding module must all complete before the associative
  search tiles start (the query hypervector is their input);
* within a stage, tiles are independent and are greedily assigned to the
  least-loaded array (LPT list scheduling, optimal here because all tiles
  take one cycle);
* batches pipeline: a new inference's EM tiles can start as soon as arrays
  free up.

The resulting latency / throughput numbers let users answer the questions
the paper's fixed single-array accounting cannot: *how many macros do I need
to hit a target throughput?* and *what does MEMHD's single-tile AM buy me
once the encoder is the bottleneck?*
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.imc.array import IMCArrayConfig
from repro.imc.cost_model import CostModel
from repro.imc.mapping import MappingAnalysis, analyze_am_mapping, analyze_em_mapping


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of scheduling one model's inference onto an array pool.

    Attributes
    ----------
    num_arrays:
        Physical arrays in the pool.
    em_tiles / am_tiles:
        Tile counts of the encoding module and associative memory.
    latency_cycles:
        Array-cycles from the start of one inference to its prediction
        (EM stage followed by AM stage, each list-scheduled on the pool).
    throughput_per_kcycle:
        Steady-state inferences completed per 1000 array-cycles when
        back-to-back inferences are pipelined through the pool.
    bottleneck:
        ``"encoding"`` or ``"associative-search"`` -- the stage that limits
        steady-state throughput.
    energy_pj_per_inference:
        Total MVM energy of one inference under the supplied cost model.
    """

    num_arrays: int
    em_tiles: int
    am_tiles: int
    latency_cycles: int
    throughput_per_kcycle: float
    bottleneck: str
    energy_pj_per_inference: float

    def as_dict(self) -> dict:
        return {
            "num_arrays": self.num_arrays,
            "em_tiles": self.em_tiles,
            "am_tiles": self.am_tiles,
            "latency_cycles": self.latency_cycles,
            "throughput_per_kcycle": self.throughput_per_kcycle,
            "bottleneck": self.bottleneck,
            "energy_pj_per_inference": self.energy_pj_per_inference,
        }


class AcceleratorScheduler:
    """Schedules a model's EM + AM tiles onto a pool of IMC arrays.

    Parameters
    ----------
    num_arrays:
        Number of physical arrays available.
    array_config:
        Geometry of each array (default 128x128).
    cost_model:
        Optional cost model used for the per-inference energy figure.
    """

    def __init__(
        self,
        num_arrays: int,
        array_config: Optional[IMCArrayConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        self.num_arrays = int(num_arrays)
        self.array_config = array_config or IMCArrayConfig(128, 128)
        self.cost_model = cost_model or CostModel(array=self.array_config)

    # ------------------------------------------------------------------ API
    def stage_cycles(self, tiles: int) -> int:
        """Cycles to run ``tiles`` independent one-cycle tiles on the pool."""
        if tiles < 0:
            raise ValueError("tiles must be non-negative")
        if tiles == 0:
            return 0
        return math.ceil(tiles / self.num_arrays)

    def schedule(
        self, em: MappingAnalysis, am: MappingAnalysis
    ) -> ScheduleReport:
        """Schedule one inference described by its EM and AM mappings."""
        em_stage = self.stage_cycles(em.cycles)
        am_stage = self.stage_cycles(am.cycles)
        latency = em_stage + am_stage
        # Steady state: consecutive inferences are limited by the slower
        # stage (the pool alternates between stages of successive queries).
        bottleneck_cycles = max(em_stage, am_stage, 1)
        throughput = 1000.0 / bottleneck_cycles
        bottleneck = "encoding" if em_stage >= am_stage else "associative-search"
        energy = self.cost_model.total_inference_cost(em, am).energy_pj
        return ScheduleReport(
            num_arrays=self.num_arrays,
            em_tiles=em.cycles,
            am_tiles=am.cycles,
            latency_cycles=latency,
            throughput_per_kcycle=throughput,
            bottleneck=bottleneck,
            energy_pj_per_inference=energy,
        )

    def schedule_model(
        self,
        num_features: int,
        dimension: int,
        am_structure,
    ) -> ScheduleReport:
        """Convenience wrapper: analyze the EM and AM mappings, then schedule.

        ``am_structure`` is a :class:`repro.imc.mapping.AMStructure` (use the
        ``basic_am_structure`` / ``partitioned_am_structure`` /
        ``memhd_am_structure`` helpers).
        """
        em = analyze_em_mapping(num_features, dimension, self.array_config)
        am = analyze_am_mapping(am_structure, self.array_config)
        return self.schedule(em, am)

    def arrays_needed_for_latency(
        self, em: MappingAnalysis, am: MappingAnalysis, target_cycles: int
    ) -> int:
        """Smallest pool size whose scheduled latency meets ``target_cycles``.

        Returns the minimum number of arrays, or raises ``ValueError`` when
        even a pool holding every tile at once (one array per tile) cannot
        meet the target (the two-stage dependency imposes a floor of two
        cycles whenever both stages are non-empty).
        """
        if target_cycles < 1:
            raise ValueError("target_cycles must be >= 1")
        floor = (1 if em.cycles else 0) + (1 if am.cycles else 0)
        if target_cycles < floor:
            raise ValueError(
                f"target of {target_cycles} cycles is below the structural "
                f"minimum of {floor} cycles (one per dependent stage)"
            )
        for pool in range(1, max(em.cycles, am.cycles, 1) + 1):
            scheduler = AcceleratorScheduler(pool, self.array_config, self.cost_model)
            report = scheduler.schedule(em, am)
            if report.latency_cycles <= target_cycles:
                return pool
        return max(em.cycles, am.cycles, 1)
