"""Functional (bit-exact) in-memory inference simulator.

:class:`InMemoryInference` takes a trained :class:`repro.core.model.MEMHDModel`
and maps both of its binary artifacts into IMC arrays (Sec. III-D of the
paper):

* the ``f x D`` binary projection matrix of the encoding module, and
* the ``D x C`` binary multi-centroid associative memory (the AM is stored
  transposed, one class vector per array column, so an associative search
  is a single MVM).

Inference then runs tile-by-tile exactly as the hardware would:

1. the raw feature vector drives the EM tiles; the digital periphery
   rescales the binary-cell partial sums into the bipolar projection
   (``2 * (F . B) - sum(F)``) and thresholds at zero to obtain the binary
   query hypervector;
2. the query drives the AM tiles; column sums are accumulated across row
   tiles and the argmax column's class is the prediction.

In the absence of injected noise the simulator's predictions are **bit
identical** to ``MEMHDModel.predict`` -- an invariant enforced by the
integration and property tests.  A :class:`repro.imc.noise.NoiseModel` can
corrupt the stored cells and the analog readout to study robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.model import MEMHDModel
from repro.hdc.hypervector import _as_generator
from repro.hdc.packed import PackedAM
from repro.imc.array import IMCArrayConfig
from repro.imc.mapping import TiledMatrix, tile_matrix
from repro.imc.noise import NoiseModel


@dataclass(frozen=True)
class SimulatedInferenceStats:
    """Hardware accounting of the mapped model.

    ``*_per_inference`` cycle counts assume a single physical array executes
    every tile activation sequentially, which is the "computation cycles"
    definition used by Table II.
    """

    array_label: str
    em_arrays: int
    am_arrays: int
    em_cycles_per_inference: int
    am_cycles_per_inference: int
    am_column_utilization: float

    @property
    def total_arrays(self) -> int:
        return self.em_arrays + self.am_arrays

    @property
    def total_cycles_per_inference(self) -> int:
        return self.em_cycles_per_inference + self.am_cycles_per_inference

    def as_dict(self) -> dict:
        return {
            "array": self.array_label,
            "em_arrays": self.em_arrays,
            "am_arrays": self.am_arrays,
            "total_arrays": self.total_arrays,
            "em_cycles": self.em_cycles_per_inference,
            "am_cycles": self.am_cycles_per_inference,
            "total_cycles": self.total_cycles_per_inference,
            "am_utilization": self.am_column_utilization,
        }


class InMemoryInference:
    """Maps a trained MEMHD model into IMC arrays and runs inference there.

    Parameters
    ----------
    model:
        A fitted :class:`MEMHDModel`.
    array_config:
        Geometry of the IMC arrays to map onto (the paper uses 128x128).
    noise:
        Optional :class:`NoiseModel`; storage faults are applied once at
        mapping time, read noise is applied to every associative-search
        column sum.
    rng:
        Seed or generator used for the noise injection.
    """

    def __init__(
        self,
        model: MEMHDModel,
        array_config: Optional[IMCArrayConfig] = None,
        noise: Optional[NoiseModel] = None,
        rng: Optional[Union[int, np.random.Generator]] = None,
    ) -> None:
        self.model = model
        self.array_config = array_config or IMCArrayConfig(128, 128)
        self.noise = noise or NoiseModel()
        self._rng = _as_generator(rng)

        am = model.associative_memory  # raises if the model is not fitted

        projection = model.projection_matrix_binary()  # (f, D) in {0, 1}
        am_matrix = am.binary_memory.T.astype(np.int8)  # (D, C) in {0, 1}
        if not self.noise.is_ideal:
            projection = self.noise.corrupt_memory(projection, self._rng)
            am_matrix = self.noise.corrupt_memory(am_matrix, self._rng)

        self.em_tiles: TiledMatrix = tile_matrix(
            projection, self.array_config, name="em"
        )
        self.am_tiles: TiledMatrix = tile_matrix(
            am_matrix, self.array_config, name="am"
        )
        self.column_classes = am.column_classes.copy()
        self._digital_reference: Optional[PackedAM] = None

    # ------------------------------------------------------------------ API
    def encode(self, features: np.ndarray) -> np.ndarray:
        """Run the encoding module on the mapped arrays.

        Returns the binary ``{0, 1}`` query hypervectors, identical to
        ``model.encode_binary`` when no noise is injected.
        """
        arr = np.asarray(features, dtype=np.float64)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[None, :]
        if arr.shape[1] != self.model.num_features:
            raise ValueError(
                f"expected {self.model.num_features} features, got {arr.shape[1]}"
            )
        # Binary cells hold B in {0, 1}; the stored bipolar projection is
        # 2B - 1, so the periphery computes 2 * (F . B) - sum(F).
        cell_sums = self.em_tiles.mvm_batch(arr)
        bipolar_projection = 2.0 * cell_sums - arr.sum(axis=1, keepdims=True)
        binary = (bipolar_projection >= 0.0).astype(np.int8)
        return binary[0] if squeeze else binary

    def associative_search(self, queries: np.ndarray) -> np.ndarray:
        """Column scores of binary queries against the mapped AM."""
        arr = np.asarray(queries, dtype=np.float64)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[None, :]
        scores = self.am_tiles.mvm_batch(arr)
        if self.noise.read_noise_sigma > 0:
            scores = self.noise.corrupt_readout(scores, self._rng)
        return scores[0] if squeeze else scores

    def predict(self, features: np.ndarray) -> np.ndarray:
        """End-to-end in-memory inference: encode, search, argmax."""
        queries = self.encode(features)
        if queries.ndim == 1:
            queries = queries[None, :]
        scores = np.atleast_2d(self.associative_search(queries))
        winning_columns = np.argmax(scores, axis=1)
        return self.column_classes[winning_columns]

    def stats(self) -> SimulatedInferenceStats:
        """Mapping statistics consistent with the analytical Table II model."""
        return SimulatedInferenceStats(
            array_label=self.array_config.label,
            em_arrays=self.em_tiles.num_arrays,
            am_arrays=self.am_tiles.num_arrays,
            em_cycles_per_inference=self.em_tiles.cycles_per_mvm,
            am_cycles_per_inference=self.am_tiles.cycles_per_mvm,
            am_column_utilization=self.am_tiles.column_utilization(),
        )

    def digital_reference(self) -> PackedAM:
        """Bit-packed digital-reference AM (noise-free, untiled).

        The tiled analog path above simulates the hardware; this reference
        is the golden digital model a verification flow would compare
        against: the same binary AM, evaluated with exact popcount
        arithmetic instead of tile-accumulated analog sums.
        """
        if self._digital_reference is None:
            am = self.model.associative_memory
            self._digital_reference = PackedAM.from_binary_memory(
                am.binary_memory, am.column_classes, am.num_classes
            )
        return self._digital_reference

    def reference_predict(self, features: np.ndarray) -> np.ndarray:
        """Noise-free digital-reference predictions via the packed engine.

        Uses the software encoder (exact) and the bit-packed AM, so it is
        bit-identical to ``model.predict`` regardless of any noise injected
        into the mapped arrays -- which is what makes it useful as the
        golden reference when studying noise.
        """
        encoded = self.model.encode_binary(np.asarray(features, dtype=np.float64))
        if encoded.ndim == 1:
            encoded = encoded[None, :]
        return self.digital_reference().predict(encoded)

    def matches_software_model(
        self, features: np.ndarray, engine: str = "float"
    ) -> bool:
        """Check bit-exact agreement with the software model (noise-free only).

        ``engine`` selects the software path to compare against (the float
        matmul path or the bit-packed engine); both must agree with the
        tiled simulation.
        """
        if not self.noise.is_ideal:
            raise ValueError(
                "matches_software_model is only meaningful without injected noise"
            )
        return bool(
            np.array_equal(
                self.predict(features), self.model.predict(features, engine=engine)
            )
        )
