"""Model persistence: versioned checkpoints and the artifact registry.

The :mod:`repro.io` package is what turns the repository from a
train-on-every-invocation benchmark collection into a train-once /
serve-many system:

* :mod:`repro.io.checkpoint` -- save/load any fitted model (MEMHD, the
  five baselines, bare associative memories) to a single compressed,
  versioned ``.npz`` with a self-describing manifest; restores are
  bit-exact on both the float and packed engines.
* :mod:`repro.io.registry` -- a filesystem artifact store
  (``~/.cache/repro`` or ``--store DIR``) addressing checkpoints as
  ``name:tag`` with ``latest`` resolution, listing, inspection and
  pruning (surfaced as ``repro models ...`` on the CLI).
"""

from repro.io.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointManifest,
    checkpoint_path,
    dataset_fingerprint,
    load_checkpoint,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
)
from repro.io.registry import (
    ArtifactRegistry,
    RegistryEntry,
    RegistryError,
    default_store,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManifest",
    "checkpoint_path",
    "dataset_fingerprint",
    "load_checkpoint",
    "load_checkpoint_with_manifest",
    "read_manifest",
    "save_checkpoint",
    "ArtifactRegistry",
    "RegistryEntry",
    "RegistryError",
    "default_store",
]
