"""Versioned, compressed checkpoints for every trainable model.

Training an HDC model is the expensive phase; inference is a handful of
popcounts.  This module makes the repository train-once/serve-forever by
persisting any fitted model -- :class:`repro.core.model.MEMHDModel`, the
five baselines, a bare :class:`repro.core.associative_memory.MultiCentroidAM`
or a :class:`repro.hdc.packed.PackedAM` -- into a single compressed
``.npz`` file that round-trips bit-exactly:

* every array the model needs at inference time (encoder codebooks, float
  shadow memories, 1-bit memories, packed ``uint64`` words) is stored
  verbatim, so a restored model predicts identically to the saved one on
  both the float and the packed engine;
* a JSON **manifest** rides inside the archive recording the schema
  version, the model class and configuration, dataset fingerprint,
  metrics, and a dtype/shape spec of every stored array;
* loading is **strict by default**: bad magic, schema versions from a
  newer library, unknown model classes, missing/extra arrays and
  dtype/shape mismatches all raise :class:`CheckpointError` instead of
  silently producing a subtly-wrong model.

File layout (one ``numpy.savez_compressed`` archive)::

    __manifest__        uint8 array holding the UTF-8 JSON manifest
    array__<name>.npy   one entry per model array (verbatim dtype/shape)

The format specification (manifest fields, versioning policy) lives in
``docs/architecture.md``.  The on-disk *naming* of checkpoints (named +
tagged artifacts, ``latest`` resolution, pruning) is layered on top by
:mod:`repro.io.registry`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Optional, Tuple, Type

import numpy as np

from repro.baselines.base import HDCClassifier
from repro.baselines.basic_hdc import BasicHDC, BasicHDCConfig
from repro.baselines.lehdc import LeHDC, LeHDCConfig
from repro.baselines.onlinehd import OnlineHD, OnlineHDConfig
from repro.baselines.quanthd import QuantHD, QuantHDConfig
from repro.baselines.searchd import SearcHD, SearcHDConfig
from repro.core.associative_memory import MultiCentroidAM
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.hdc.encoders import IDLevelEncoder, RandomProjectionEncoder
from repro.hdc.packed import PackedAM

#: Identifies a file as one of ours (stored in the manifest).
MAGIC = "memhd-repro-checkpoint"

#: Current checkpoint schema version.  Bumped on layout changes; loaders
#: accept any version ``<= SCHEMA_VERSION`` (older layouts are upgraded in
#: place when the schema evolves) and reject newer ones.
SCHEMA_VERSION = 1

#: Archive key holding the UTF-8 JSON manifest.
MANIFEST_KEY = "__manifest__"

#: Prefix of every model-array key inside the archive.
ARRAY_PREFIX = "array__"

#: Process umask, sampled once at import (under the import lock) because
#: os.umask() is a set-and-read global and flipping it per save would race
#: across threads.  Checkpoints are chmod-ed to ``0o666 & ~_UMASK``.
_UMASK = os.umask(0)
os.umask(_UMASK)

#: Checkpointable classifier families: class name -> (class, config class).
MODEL_REGISTRY: Dict[str, Tuple[Type[HDCClassifier], type]] = {
    "MEMHDModel": (MEMHDModel, MEMHDConfig),
    "BasicHDC": (BasicHDC, BasicHDCConfig),
    "QuantHD": (QuantHD, QuantHDConfig),
    "SearcHD": (SearcHD, SearcHDConfig),
    "LeHDC": (LeHDC, LeHDCConfig),
    "OnlineHD": (OnlineHD, OnlineHDConfig),
}

#: Checkpointable non-classifier objects (bare associative memories).
_AM_CLASSES = ("MultiCentroidAM", "PackedAM")


class CheckpointError(Exception):
    """A checkpoint could not be written, read or validated."""


def checkpoint_path(path) -> str:
    """Normalize a checkpoint destination to its on-disk ``.npz`` path.

    ``numpy.savez_compressed`` silently appends ``.npz`` to paths missing
    the suffix; this helper applies the same rule up front so callers
    always know (and can print / reload) the real file name.
    """
    text = os.fspath(path)
    return text if text.endswith(".npz") else text + ".npz"


def _library_version() -> str:
    from repro import __version__

    return __version__


@dataclasses.dataclass(frozen=True)
class CheckpointManifest:
    """Self-describing metadata stored inside every checkpoint.

    Attributes
    ----------
    schema_version:
        Layout version of the archive (see :data:`SCHEMA_VERSION`).
    model_class:
        Python class name of the stored object (a key of
        :data:`MODEL_REGISTRY`, ``"MultiCentroidAM"`` or ``"PackedAM"``).
    model_name:
        Human-readable family name (e.g. ``"MEMHD"``).
    config:
        JSON-able configuration mapping.  For classifiers this is the
        ``dataclasses.asdict`` of the model's config; for bare AMs it holds
        the constructor metadata (``num_classes``, quantization modes, ...).
    num_features / num_classes:
        Input dimensionality and label count (``num_features`` is ``None``
        for bare AMs, which never see raw features).
    arrays:
        Per-array spec mapping name to ``{"dtype": ..., "shape": [...]}``,
        cross-checked against the stored arrays on strict loads.
    library_version:
        ``repro.__version__`` that wrote the checkpoint.
    created_unix:
        POSIX timestamp of the save.
    dataset:
        Optional dataset fingerprint (see :func:`dataset_fingerprint`).
    metrics:
        Optional free-form metrics mapping (e.g. train/test accuracy).
    encoder:
        Encoder hyperparameters that are not part of the model config
        (``quantize_output``, ``binary_projection``, ``value_low`` /
        ``value_high``), captured so models built around a custom adopted
        encoder still restore bit-identically.  ``None`` for bare AMs.
    lineage:
        Optional incremental-checkpoint provenance: for checkpoints
        produced by folding online feedback into a parent artifact, this
        records (at minimum) the parent's resolved ``name:tag`` spec and
        the feedback counts that separate child from parent, so a
        promotion chain can be audited and rolled back tag by tag.
        ``None`` for from-scratch training checkpoints.  An optional
        field within ``schema_version`` 1: older readers drop it, older
        checkpoints default it to ``None``.
    """

    schema_version: int
    model_class: str
    model_name: str
    config: Dict[str, Any]
    num_features: Optional[int]
    num_classes: Optional[int]
    arrays: Dict[str, Dict[str, Any]]
    library_version: str
    created_unix: float
    dataset: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    encoder: Optional[Dict[str, Any]] = None
    lineage: Optional[Dict[str, Any]] = None

    def to_json(self) -> str:
        """Serialize the manifest (plus the format magic) to JSON."""
        payload = {"magic": MAGIC}
        payload.update(dataclasses.asdict(self))
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CheckpointManifest":
        """Parse and validate a manifest JSON payload.

        Raises
        ------
        CheckpointError
            On malformed JSON, wrong magic, or a schema version newer than
            this library understands.
        """
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointError(f"corrupted checkpoint manifest: {error}") from error
        if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
            raise CheckpointError(
                "not a memhd-repro checkpoint (manifest magic mismatch)"
            )
        version = payload.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(f"invalid checkpoint schema version: {version!r}")
        if version > SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema version {version} is newer than this "
                f"library supports (max {SCHEMA_VERSION}); upgrade memhd-repro"
            )
        payload.pop("magic")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            # Forward-compatible metadata additions within one schema
            # version are tolerated (dropped), never silently persisted.
            payload = {key: payload[key] for key in payload if key in known}
        required = {
            field.name
            for field in dataclasses.fields(cls)
            if field.default is dataclasses.MISSING
            and field.default_factory is dataclasses.MISSING
        }
        missing = required - set(payload)
        if missing:
            raise CheckpointError(
                f"checkpoint manifest missing fields: {sorted(missing)}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise CheckpointError(f"malformed checkpoint manifest: {error}") from error

    def summary(self) -> Dict[str, Any]:
        """Compact single-row description (used by ``repro models list``)."""
        return {
            "model": self.model_name,
            "class": self.model_class,
            "features": self.num_features,
            "classes": self.num_classes,
            "version": self.library_version,
            "created": time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(self.created_unix)
            ),
        }


def dataset_fingerprint(dataset) -> Dict[str, Any]:
    """Fingerprint a :class:`repro.data.datasets.Dataset` for provenance.

    The fingerprint records the structural profile (name, feature/class
    counts, split sizes) plus a SHA-256 digest over the raw split arrays,
    so a checkpoint can later tell whether it is being served against the
    data it was trained on (``repro predict --load`` warns on mismatch).

    Parameters
    ----------
    dataset:
        Any object with ``train_features`` / ``train_labels`` /
        ``test_features`` / ``test_labels`` arrays and ``name`` /
        ``num_features`` / ``num_classes`` attributes.

    Returns
    -------
    dict
        JSON-able fingerprint mapping.
    """
    digest = hashlib.sha256()
    for split in (
        dataset.train_features,
        dataset.train_labels,
        dataset.test_features,
        dataset.test_labels,
    ):
        arr = np.ascontiguousarray(np.asarray(split))
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return {
        "name": str(dataset.name),
        "num_features": int(dataset.num_features),
        "num_classes": int(dataset.num_classes),
        "num_train": int(np.asarray(dataset.train_labels).shape[0]),
        "num_test": int(np.asarray(dataset.test_labels).shape[0]),
        "synthetic": bool(getattr(dataset, "synthetic", True)),
        "sha256": digest.hexdigest(),
    }


def _encoder_meta(obj) -> Optional[Dict[str, Any]]:
    """Hyperparameters of a model's encoder that live outside its config.

    A model may adopt a custom encoder (``encoder=`` constructor
    parameter), so flags like ``quantize_output`` or the ID-Level
    ``value_range`` cannot be re-derived from the model config alone;
    they are recorded here and replayed by ``from_checkpoint``.
    """
    encoder = getattr(obj, "encoder", None)
    if isinstance(encoder, RandomProjectionEncoder):
        return {
            "type": "projection",
            "binary_projection": bool(encoder.binary_projection),
            "quantize_output": bool(encoder.quantize_output),
        }
    if isinstance(encoder, IDLevelEncoder):
        return {
            "type": "id-level",
            "value_low": float(encoder.value_low),
            "value_high": float(encoder.value_high),
            "quantize_output": bool(encoder.quantize_output),
        }
    return None


def _array_spec(arrays: Dict[str, np.ndarray]) -> Dict[str, Dict[str, Any]]:
    return {
        name: {"dtype": str(np.asarray(value).dtype), "shape": list(np.shape(value))}
        for name, value in arrays.items()
    }


def _describe(obj) -> Tuple[str, str, Dict[str, Any], Optional[int], Optional[int]]:
    """Return ``(model_class, model_name, config, num_features, num_classes)``."""
    if isinstance(obj, HDCClassifier):
        class_name = type(obj).__name__
        if class_name not in MODEL_REGISTRY:
            raise CheckpointError(
                f"cannot checkpoint unregistered model class {class_name!r}; "
                f"known classes: {sorted(MODEL_REGISTRY)}"
            )
        return (
            class_name,
            obj.name,
            dataclasses.asdict(obj.config),
            int(obj.num_features),
            int(obj.num_classes),
        )
    if isinstance(obj, MultiCentroidAM):
        config = {
            "threshold_mode": obj.threshold_mode,
            "normalization": obj.normalization,
        }
        return "MultiCentroidAM", "MultiCentroidAM", config, None, int(obj.num_classes)
    if isinstance(obj, PackedAM):
        config = {
            "dimension": int(obj.dimension),
            "alphabet": obj.memory.alphabet,
        }
        return "PackedAM", "PackedAM", config, None, int(obj.num_classes)
    raise CheckpointError(
        f"cannot checkpoint objects of type {type(obj).__name__!r}; expected "
        "an HDCClassifier, MultiCentroidAM or PackedAM"
    )


def save_checkpoint(
    obj,
    path,
    dataset=None,
    metrics: Optional[Dict[str, Any]] = None,
    lineage: Optional[Dict[str, Any]] = None,
) -> CheckpointManifest:
    """Persist a fitted model (or bare AM) to a versioned ``.npz`` checkpoint.

    Parameters
    ----------
    obj:
        A fitted classifier (any :data:`MODEL_REGISTRY` class), a
        :class:`MultiCentroidAM`, or a :class:`PackedAM`.
    path:
        Destination file path (conventionally ``*.npz``).
    dataset:
        Optional provenance: a :class:`repro.data.datasets.Dataset` (it is
        fingerprinted via :func:`dataset_fingerprint`) or an
        already-computed fingerprint mapping.
    metrics:
        Optional JSON-able metrics to embed (e.g. test accuracy).
    lineage:
        Optional incremental-checkpoint provenance (parent artifact spec
        and feedback counts; see :class:`CheckpointManifest`).

    Returns
    -------
    CheckpointManifest
        The manifest that was written into the archive.  The file lands at
        :func:`checkpoint_path` of ``path`` (``.npz`` is appended when
        missing, matching numpy), with parent directories created.

    Raises
    ------
    CheckpointError
        If ``obj`` is not checkpointable.
    RuntimeError
        If ``obj`` is a classifier that has not been fitted.
    """
    model_class, model_name, config, num_features, num_classes = _describe(obj)
    arrays = obj.checkpoint_arrays()
    fingerprint: Optional[Dict[str, Any]]
    if dataset is None or isinstance(dataset, dict):
        fingerprint = dataset
    else:
        fingerprint = dataset_fingerprint(dataset)
    manifest = CheckpointManifest(
        schema_version=SCHEMA_VERSION,
        model_class=model_class,
        model_name=model_name,
        config=config,
        num_features=num_features,
        num_classes=num_classes,
        arrays=_array_spec(arrays),
        library_version=_library_version(),
        created_unix=time.time(),
        dataset=fingerprint,
        metrics=dict(metrics) if metrics is not None else None,
        encoder=_encoder_meta(obj),
        lineage=dict(lineage) if lineage is not None else None,
    )
    payload = {
        MANIFEST_KEY: np.frombuffer(manifest.to_json().encode("utf-8"), dtype=np.uint8)
    }
    for name, value in arrays.items():
        payload[ARRAY_PREFIX + name] = np.asarray(value)
    destination = checkpoint_path(path)
    parent = os.path.dirname(destination)
    if parent:
        os.makedirs(parent, exist_ok=True)
    # Write-then-rename so a crash mid-save can never leave a truncated
    # file at the final path (the registry's unit of atomicity).
    fd, scratch = tempfile.mkstemp(
        prefix=os.path.basename(destination) + ".", dir=parent or "."
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            np.savez_compressed(stream, **payload)
        # mkstemp creates 0600 files; give the checkpoint the ordinary
        # umask-derived permissions so shared/rsync-ed stores stay readable.
        os.chmod(scratch, 0o666 & ~_UMASK)
        os.replace(scratch, destination)
    except BaseException:
        if os.path.exists(scratch):
            os.unlink(scratch)
        raise
    return manifest


def read_manifest(path) -> CheckpointManifest:
    """Read and validate only the manifest of a checkpoint file.

    Cheap relative to :func:`load_checkpoint` (no model reconstruction);
    used by registry listings and ``repro models show``.
    """
    with _open_archive(path) as archive:
        return _parse_manifest(archive, path)


def content_fingerprint(path) -> str:
    """Stable SHA-256 of a checkpoint's *logical* content.

    Two checkpoints of the same model carry identical weights but are
    not byte-identical files: the manifest embeds ``created_unix`` and
    the zip container stamps entry timestamps.  Provenance (the workflow
    RunDB, and the chaos tests' "bit-identical artifacts" assertion)
    therefore hashes the content that matters instead: the manifest with
    ``created_unix`` removed, plus every array's name, dtype, shape and
    raw bytes, all in sorted order.

    Raises
    ------
    CheckpointError
        When ``path`` is not a readable checkpoint.
    """
    with _open_archive(path) as archive:
        manifest = _parse_manifest(archive, path)
        digest = hashlib.sha256()
        payload = json.loads(manifest.to_json())
        payload.pop("created_unix", None)
        digest.update(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        )
        for key in sorted(archive.files):
            if key == MANIFEST_KEY:
                continue
            array = np.asarray(archive[key])
            digest.update(key.encode("utf-8"))
            digest.update(str(array.dtype).encode("utf-8"))
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()


def load_checkpoint(
    path,
    strict: bool = True,
    expected_class: Optional[str] = None,
):
    """Load a checkpoint back into a fitted model (or bare AM).

    Parameters
    ----------
    path:
        Checkpoint file written by :func:`save_checkpoint`.
    strict:
        When true (default) the stored arrays must match the manifest's
        dtype/shape spec exactly, with no missing or extra entries, and
        the stored config must be understood in full.  ``strict=False``
        tolerates unknown config keys (dropped) and skips the array
        cross-check -- useful when migrating old checkpoints forward.
    expected_class:
        When given, the manifest's ``model_class`` must equal it.

    Returns
    -------
    object
        The restored model; ``predict`` is bit-identical to the saved one.

    Raises
    ------
    CheckpointError
        On unreadable files, magic/schema mismatches, unknown model
        classes, spec violations, or a reconstruction failure.
    """
    model, _ = load_checkpoint_with_manifest(
        path, strict=strict, expected_class=expected_class
    )
    return model


def load_checkpoint_with_manifest(
    path,
    strict: bool = True,
    expected_class: Optional[str] = None,
):
    """Like :func:`load_checkpoint`, also returning the parsed manifest.

    Opens the archive once; callers that need both the model and its
    provenance (the CLI's ``--load``, ``repro serve``) should use this
    instead of a separate :func:`read_manifest` pass.

    Returns
    -------
    tuple
        ``(model, manifest)``.
    """
    with _open_archive(path) as archive:
        manifest = _parse_manifest(archive, path)
        if expected_class is not None and manifest.model_class != expected_class:
            raise CheckpointError(
                f"expected a {expected_class} checkpoint, found "
                f"{manifest.model_class} in {path}"
            )
        arrays = {
            key[len(ARRAY_PREFIX) :]: archive[key]
            for key in archive.files
            if key.startswith(ARRAY_PREFIX)
        }
    _validate_arrays(manifest, arrays, strict=strict)
    return _reconstruct(manifest, arrays, strict=strict), manifest


def load_mapped(
    path,
    strict: bool = True,
    expected_class: Optional[str] = None,
    cache_dir=None,
):
    """Load a checkpoint with its arrays **memory-mapped**, not copied.

    ``.npz`` archives are zlib-compressed, so the arrays inside cannot be
    mapped in place.  This loader extracts each array once into a sidecar
    cache directory (``<checkpoint>.mapped/<fingerprint>/`` by default) as
    a plain ``.npy`` file, then opens every array with
    ``np.load(..., mmap_mode="r")``.  The pages live in the OS page cache,
    so N processes serving the same checkpoint share **one** physical copy
    of the model instead of N heap copies -- the memory model behind
    ``repro serve --workers N`` (see ``docs/operations.md``).

    The cache is keyed by the checkpoint's size + mtime: re-saving a
    checkpoint at the same path invalidates the old extraction
    automatically.  Extraction is crash-safe and multi-process safe
    (write-to-temp + ``os.replace`` per file, completeness marker written
    last), so concurrent workers may race to extract without corruption.

    The restored model is **bit-exact** with :func:`load_checkpoint` --
    the arrays are verbatim bytes, merely mapped read-only.  Writing into
    a mapped array raises ``ValueError`` (a worker cannot corrupt the
    shared extraction); retraining via ``fit`` still works, because
    training builds fresh private arrays instead of mutating in place.

    Parameters
    ----------
    path:
        Checkpoint file written by :func:`save_checkpoint`.
    strict / expected_class:
        As for :func:`load_checkpoint`.
    cache_dir:
        Override the extraction cache root (default: sibling directory
        ``<checkpoint>.mapped``).

    Returns
    -------
    object
        The restored model, reading its arrays through read-only memmaps.
    """
    model, _ = load_mapped_with_manifest(
        path, strict=strict, expected_class=expected_class, cache_dir=cache_dir
    )
    return model


def load_mapped_with_manifest(
    path,
    strict: bool = True,
    expected_class: Optional[str] = None,
    cache_dir=None,
):
    """Like :func:`load_mapped`, also returning the parsed manifest."""
    path = os.fspath(path)
    extraction = _ensure_extracted(path, cache_dir)
    manifest = CheckpointManifest.from_json(
        (extraction / "manifest.json").read_text("utf-8")
    )
    if expected_class is not None and manifest.model_class != expected_class:
        raise CheckpointError(
            f"expected a {expected_class} checkpoint, found "
            f"{manifest.model_class} in {path}"
        )
    arrays: Dict[str, np.ndarray] = {}
    for name in manifest.arrays:
        member = extraction / (name + ".npy")
        try:
            arrays[name] = np.load(member, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"unreadable mapped array {member}: {error}"
            ) from error
    _validate_arrays(manifest, arrays, strict=strict)
    return _reconstruct(manifest, arrays, strict=strict), manifest


# ------------------------------------------------------------------ internals
def _extraction_fingerprint(path: str) -> str:
    """Cache key tying an extraction to one version of the ``.npz`` bytes."""
    stat = os.stat(path)
    token = f"{stat.st_size}:{stat.st_mtime_ns}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]


def _ensure_extracted(path: str, cache_dir):
    """Extract ``path``'s arrays into the mapped cache (idempotent).

    Returns the extraction directory, guaranteed complete: the
    ``manifest.json`` marker is written only after every array landed, and
    every file is placed by write-to-temp + ``os.replace`` so concurrent
    extractions (N workers starting at once) interleave safely.
    """
    from pathlib import Path

    root = Path(cache_dir) if cache_dir is not None else Path(path + ".mapped")
    try:
        fingerprint = _extraction_fingerprint(path)
    except FileNotFoundError:
        raise
    except OSError as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    target = root / fingerprint
    marker = target / "manifest.json"
    if marker.exists():
        return target
    target.mkdir(parents=True, exist_ok=True)
    with _open_archive(path) as archive:
        manifest = _parse_manifest(archive, path)
        for key in archive.files:
            if not key.startswith(ARRAY_PREFIX):
                continue
            name = key[len(ARRAY_PREFIX) :]
            _atomic_write_npy(target, name + ".npy", np.asarray(archive[key]))
    _atomic_write_bytes(target, "manifest.json", manifest.to_json().encode("utf-8"))
    _prune_stale_extractions(root, keep=fingerprint)
    return target


def _atomic_write_npy(directory, filename, array: np.ndarray) -> None:
    fd, scratch = tempfile.mkstemp(prefix=filename + ".", dir=os.fspath(directory))
    try:
        with os.fdopen(fd, "wb") as stream:
            np.save(stream, array, allow_pickle=False)
        os.chmod(scratch, 0o666 & ~_UMASK)
        os.replace(scratch, os.path.join(os.fspath(directory), filename))
    except BaseException:
        if os.path.exists(scratch):
            os.unlink(scratch)
        raise


def _atomic_write_bytes(directory, filename, payload: bytes) -> None:
    fd, scratch = tempfile.mkstemp(prefix=filename + ".", dir=os.fspath(directory))
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(payload)
        os.chmod(scratch, 0o666 & ~_UMASK)
        os.replace(scratch, os.path.join(os.fspath(directory), filename))
    except BaseException:
        if os.path.exists(scratch):
            os.unlink(scratch)
        raise


def _prune_stale_extractions(root, keep: str) -> None:
    """Best-effort removal of extractions for older checkpoint versions."""
    import shutil

    try:
        entries = list(os.scandir(root))
    except OSError:
        return
    for entry in entries:
        if entry.name == keep or not entry.is_dir():
            continue
        shutil.rmtree(entry.path, ignore_errors=True)


def _open_archive(path):
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as error:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    return archive


def _parse_manifest(archive, path) -> CheckpointManifest:
    if MANIFEST_KEY not in archive.files:
        raise CheckpointError(f"{path} is not a checkpoint (no manifest entry)")
    raw = np.asarray(archive[MANIFEST_KEY], dtype=np.uint8).tobytes()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        raise CheckpointError(f"corrupted checkpoint manifest: {error}") from error
    return CheckpointManifest.from_json(text)


def _validate_arrays(
    manifest: CheckpointManifest,
    arrays: Dict[str, np.ndarray],
    strict: bool,
) -> None:
    expected = set(manifest.arrays)
    actual = set(arrays)
    missing = expected - actual
    if missing:
        raise CheckpointError(f"checkpoint is missing arrays: {sorted(missing)}")
    if not strict:
        return
    extra = actual - expected
    if extra:
        raise CheckpointError(
            f"checkpoint holds arrays absent from its manifest: {sorted(extra)}"
        )
    for name, spec in manifest.arrays.items():
        value = arrays[name]
        if str(value.dtype) != spec.get("dtype"):
            raise CheckpointError(
                f"array {name!r} dtype {value.dtype} does not match the "
                f"manifest ({spec.get('dtype')})"
            )
        if list(value.shape) != list(spec.get("shape", [])):
            raise CheckpointError(
                f"array {name!r} shape {list(value.shape)} does not match "
                f"the manifest ({spec.get('shape')})"
            )


def _build_config(config_cls: type, payload: Dict[str, Any], strict: bool):
    if not strict:
        known = {field.name for field in dataclasses.fields(config_cls)}
        payload = {key: value for key, value in payload.items() if key in known}
    try:
        return config_cls(**payload)
    except (TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint config is not a valid {config_cls.__name__}: {error}"
        ) from error


def _reconstruct(
    manifest: CheckpointManifest,
    arrays: Dict[str, np.ndarray],
    strict: bool,
):
    name = manifest.model_class
    try:
        if name == "MultiCentroidAM":
            return MultiCentroidAM.from_checkpoint(
                arrays,
                num_classes=int(manifest.num_classes),
                threshold_mode=manifest.config.get("threshold_mode", "global-mean"),
                normalization=manifest.config.get("normalization", "zscore"),
            )
        if name == "PackedAM":
            return PackedAM.from_checkpoint(
                arrays,
                dimension=int(manifest.config["dimension"]),
                alphabet=manifest.config["alphabet"],
                num_classes=int(manifest.num_classes),
            )
        if name in MODEL_REGISTRY:
            model_cls, config_cls = MODEL_REGISTRY[name]
            config = _build_config(config_cls, manifest.config, strict)
            return model_cls.from_checkpoint(
                int(manifest.num_features),
                int(manifest.num_classes),
                config,
                arrays,
                encoder_meta=manifest.encoder,
            )
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"failed to reconstruct {name} from checkpoint: {error}"
        ) from error
    raise CheckpointError(
        f"unknown model class {name!r}; known: "
        f"{sorted(MODEL_REGISTRY) + list(_AM_CLASSES)}"
    )
