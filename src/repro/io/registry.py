"""A tiny on-disk artifact registry for named, tagged checkpoints.

:mod:`repro.io.checkpoint` turns a fitted model into one ``.npz`` file;
this module gives those files a home and a naming scheme so the CLI (and
any deployment script) can refer to models symbolically instead of by
path:

* artifacts live under one **store** directory -- ``~/.cache/repro`` by
  default, overridable with the ``REPRO_STORE`` environment variable or
  the CLI's ``--store DIR`` flag;
* each artifact is addressed as ``name:tag`` (e.g. ``mnist-memhd:v3``);
  omitting the tag, or using the reserved tag ``latest``, resolves to the
  most recently saved tag of that name;
* the registry is plain files -- ``<store>/<name>/<tag>.npz`` -- with no
  index database, so it is trivially inspectable, rsync-able and robust
  against crashes (the unit of atomicity is one checkpoint file).

Operations: :meth:`ArtifactRegistry.save`, :meth:`~ArtifactRegistry.load`,
:meth:`~ArtifactRegistry.resolve`, :meth:`~ArtifactRegistry.list_entries`,
:meth:`~ArtifactRegistry.inspect`, :meth:`~ArtifactRegistry.remove` and
:meth:`~ArtifactRegistry.prune` -- everything ``repro models`` exposes.
"""

from __future__ import annotations

import dataclasses
import os
import re
import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.io.checkpoint import (
    CheckpointError,
    CheckpointManifest,
    content_fingerprint,
    read_manifest,
    save_checkpoint,
    load_checkpoint,
    load_checkpoint_with_manifest,
    load_mapped,
    load_mapped_with_manifest,
)

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_STORE"

#: Reserved tag resolving to the most recently saved tag of a name.
LATEST_TAG = "latest"

#: Allowed artifact names and tags: path-safe, no separators or colons.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Auto-assigned tags are ``v1``, ``v2``, ...; used for default-tag bumping.
_AUTO_TAG_PATTERN = re.compile(r"^v(\d+)$")


class RegistryError(Exception):
    """A registry operation failed (unknown name/tag, bad spec, ...)."""


def default_store() -> str:
    """The store directory used when none is given.

    ``$REPRO_STORE`` when set, otherwise ``~/.cache/repro``.
    """
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _check_component(value: str, kind: str) -> str:
    if not _NAME_PATTERN.match(value):
        raise RegistryError(
            f"invalid artifact {kind} {value!r}: use letters, digits, dots, "
            "underscores and dashes (must start alphanumeric)"
        )
    return value


def split_spec(spec: str) -> Tuple[str, str]:
    """Split a ``name`` / ``name:tag`` spec into ``(name, tag)``.

    A missing tag resolves to :data:`LATEST_TAG`.
    """
    if ":" in spec:
        name, _, tag = spec.partition(":")
    else:
        name, tag = spec, LATEST_TAG
    _check_component(name, "name")
    if tag != LATEST_TAG:
        _check_component(tag, "tag")
    return name, tag


@dataclasses.dataclass(frozen=True)
class RegistryEntry:
    """One stored checkpoint as seen by listings.

    Attributes
    ----------
    name / tag:
        Registry address of the artifact (``name:tag``).
    path:
        Absolute path of the checkpoint file.
    size_bytes:
        On-disk size of the (compressed) checkpoint.
    created_unix:
        File modification time, which is also the ``latest`` ordering key.
    manifest:
        The checkpoint's parsed manifest.
    """

    name: str
    tag: str
    path: str
    size_bytes: int
    created_unix: float
    manifest: CheckpointManifest

    @property
    def spec(self) -> str:
        """The ``name:tag`` address of this entry."""
        return f"{self.name}:{self.tag}"

    def summary(self) -> Dict[str, Any]:
        """Row for ``repro models list``."""
        row: Dict[str, Any] = {"artifact": self.spec}
        row.update(self.manifest.summary())
        row["size_KiB"] = self.size_bytes / 1024.0
        return row


class ArtifactRegistry:
    """Filesystem-backed registry of named + tagged model checkpoints.

    Parameters
    ----------
    root:
        Store directory.  Defaults to :func:`default_store`.  Created on
        first write; read operations on a missing store simply see an
        empty registry.
    on_save:
        Optional observer called with every :class:`RegistryEntry` this
        registry instance saves -- the provenance hook the workflow
        orchestrator (and any audit tooling) attaches to record artifact
        writes without wrapping every ``save`` call site.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        on_save: Optional[Callable[[RegistryEntry], None]] = None,
    ) -> None:
        self.root = Path(root or default_store()).expanduser()
        self.on_save = on_save

    # ------------------------------------------------------------ addressing
    def path_for(self, name: str, tag: str) -> Path:
        """The file path backing ``name:tag`` (which need not exist yet)."""
        _check_component(name, "name")
        _check_component(tag, "tag")
        return self.root / name / f"{tag}.npz"

    def names(self) -> List[str]:
        """All artifact names with at least one stored tag, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and any(entry.glob("*.npz"))
        )

    def tags(self, name: str) -> List[str]:
        """Tags stored under ``name``, newest first.

        Ordering is by file modification time; same-second saves of auto
        tags (``v1``, ``v2``, ...) are tie-broken numerically so ``v10``
        outranks ``v9``.
        """
        _check_component(name, "name")
        directory = self.root / name
        if not directory.is_dir():
            return []

        def order(path: Path):
            match = _AUTO_TAG_PATTERN.match(path.stem)
            number = int(match.group(1)) if match else 0
            return (path.stat().st_mtime, number, path.stem)

        files = sorted(directory.glob("*.npz"), key=order, reverse=True)
        return [path.stem for path in files]

    def resolve(self, spec: str) -> Path:
        """Resolve ``name`` / ``name:tag`` / ``name:latest`` to a file path.

        Raises
        ------
        RegistryError
            When the name or tag does not exist in the store.
        """
        name, tag = split_spec(spec)
        if tag == LATEST_TAG:
            stored = self.tags(name)
            if not stored:
                raise RegistryError(f"no artifact named {name!r} in store {self.root}")
            tag = stored[0]
        path = self.path_for(name, tag)
        if not path.is_file():
            raise RegistryError(f"artifact {name}:{tag} not found in store {self.root}")
        return path

    def fingerprint(self, spec: str) -> str:
        """Content hash of a stored artifact (timestamp-independent).

        Resolves ``spec`` like :meth:`resolve` and returns the logical
        :func:`repro.io.checkpoint.content_fingerprint` -- the identity
        the workflow provenance DB records for produced and consumed
        checkpoints.
        """
        return content_fingerprint(self.resolve(spec))

    # ------------------------------------------------------------- mutation
    def save(
        self,
        model,
        name: str,
        tag: Optional[str] = None,
        dataset=None,
        metrics: Optional[Dict[str, Any]] = None,
        lineage: Optional[Dict[str, Any]] = None,
    ) -> RegistryEntry:
        """Checkpoint ``model`` into the store as ``name:tag``.

        Parameters
        ----------
        model:
            Anything :func:`repro.io.checkpoint.save_checkpoint` accepts.
        name:
            Artifact name.
        tag:
            Explicit tag; omitted, the next free auto tag (``v1``, ``v2``,
            ...) is assigned.  Re-using an existing tag overwrites it.
        dataset / metrics / lineage:
            Provenance forwarded into the checkpoint manifest (``lineage``
            records the parent artifact of an incremental checkpoint).

        Returns
        -------
        RegistryEntry
            The stored entry (with its resolved tag).
        """
        _check_component(name, "name")
        if tag is None:
            tag = self._next_auto_tag(name)
        elif tag == LATEST_TAG:
            raise RegistryError(f"tag {LATEST_TAG!r} is reserved for resolution")
        else:
            _check_component(tag, "tag")
        path = self.path_for(name, tag)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_checkpoint(model, path, dataset=dataset, metrics=metrics, lineage=lineage)
        entry = self._entry(name, tag, path)
        if self.on_save is not None:
            self.on_save(entry)
        return entry

    def remove(self, spec: str) -> Path:
        """Delete one ``name:tag`` artifact; returns the removed path."""
        name, tag = split_spec(spec)
        if tag == LATEST_TAG:
            raise RegistryError("refusing to remove by 'latest'; name an exact tag")
        path = self.path_for(name, tag)
        if not path.is_file():
            raise RegistryError(f"artifact {name}:{tag} not found in store {self.root}")
        path.unlink()
        self._drop_mapped_cache(path)
        self._drop_if_empty(path.parent)
        return path

    def prune(self, name: Optional[str] = None, keep: int = 3) -> List[Path]:
        """Delete all but the newest ``keep`` tags (per name).

        Parameters
        ----------
        name:
            Prune only this artifact name; ``None`` prunes every name.
        keep:
            Number of newest tags to retain per name (``0`` removes all).

        Returns
        -------
        list of pathlib.Path
            The checkpoint files that were deleted.

        Raises
        ------
        RegistryError
            On a negative ``keep``, or when ``name`` does not exist in the
            store (so a typo'd prune cannot silently succeed).
        """
        if keep < 0:
            raise RegistryError(f"keep must be non-negative, got {keep}")
        if name is not None and not self.tags(_check_component(name, "name")):
            raise RegistryError(f"no artifact named {name!r} in store {self.root}")
        names = [name] if name is not None else self.names()
        removed: List[Path] = []
        for artifact in names:
            for tag in self.tags(artifact)[keep:]:
                path = self.path_for(artifact, tag)
                path.unlink()
                self._drop_mapped_cache(path)
                removed.append(path)
            self._drop_if_empty(self.root / artifact)
        return removed

    # ------------------------------------------------------------ inspection
    def load(self, spec: str, strict: bool = True, mapped: bool = False):
        """Resolve and load an artifact back into a fitted model.

        ``mapped=True`` uses the zero-copy
        :func:`repro.io.checkpoint.load_mapped` path: arrays are
        memory-mapped out of a sidecar extraction cache so concurrent
        worker processes share one physical copy of the model.
        """
        if mapped:
            return load_mapped(self.resolve(spec), strict=strict)
        return load_checkpoint(self.resolve(spec), strict=strict)

    def load_with_manifest(self, spec: str, strict: bool = True, mapped: bool = False):
        """Resolve and load an artifact, also returning its provenance.

        Returns
        -------
        tuple
            ``(model, manifest, resolved_spec)`` where ``resolved_spec``
            is the exact ``name:tag`` the spec resolved to (``latest``
            pinned to the concrete newest tag).  This is the loader the
            multi-model serving pool uses for cold starts and hot swaps;
            prefork workers pass ``mapped=True`` so every replica reads
            the same physical pages (see :func:`load`).
        """
        path = self.resolve(spec)
        if mapped:
            model, manifest = load_mapped_with_manifest(path, strict=strict)
        else:
            model, manifest = load_checkpoint_with_manifest(path, strict=strict)
        return model, manifest, f"{path.parent.name}:{path.stem}"

    def inspect(self, spec: str) -> CheckpointManifest:
        """Resolve an artifact and return its manifest (no model build)."""
        return read_manifest(self.resolve(spec))

    def list_entries(self, name: Optional[str] = None) -> List[RegistryEntry]:
        """All stored artifacts (optionally one name), newest first per name.

        Unreadable files are skipped (a registry listing should never die
        on one corrupt checkpoint); use :meth:`inspect` to see the error.
        """
        names = [_check_component(name, "name")] if name is not None else self.names()
        entries: List[RegistryEntry] = []
        for artifact in names:
            for tag in self.tags(artifact):
                try:
                    entries.append(
                        self._entry(artifact, tag, self.path_for(artifact, tag))
                    )
                except (CheckpointError, OSError):
                    continue
        return entries

    # ------------------------------------------------------------- internals
    def _entry(self, name: str, tag: str, path: Path) -> RegistryEntry:
        stat = path.stat()
        return RegistryEntry(
            name=name,
            tag=tag,
            path=str(path),
            size_bytes=int(stat.st_size),
            created_unix=float(stat.st_mtime),
            manifest=read_manifest(path),
        )

    def _next_auto_tag(self, name: str) -> str:
        highest = 0
        for tag in self.tags(name):
            match = _AUTO_TAG_PATTERN.match(tag)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"v{highest + 1}"

    def _drop_if_empty(self, directory: Path) -> None:
        if directory.is_dir() and not any(directory.iterdir()):
            shutil.rmtree(directory)

    def _drop_mapped_cache(self, path: Path) -> None:
        """Remove the ``load_mapped`` extraction cache of a deleted artifact."""
        shutil.rmtree(str(path) + ".mapped", ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactRegistry(root={str(self.root)!r})"
