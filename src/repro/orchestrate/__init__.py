"""Declarative run orchestration: workflow specs, provenance, QA reports.

The ``repro.orchestrate`` package is ROADMAP item 4 -- the settings-file
pipeline layer over the repo's training / sweep / bench / serving
subsystems:

* :mod:`repro.orchestrate.spec` -- the strict ``repro.yml`` parser,
  DAG validation, and canonical per-step config hashing.
* :mod:`repro.orchestrate.rundb` -- the SQLite provenance database
  recording every step execution next to the artifact store.
* :mod:`repro.orchestrate.runner` -- the scheduler with crash-safe
  resume (skip = same config hash + unchanged artifact fingerprints).
* :mod:`repro.orchestrate.report` -- ``repro status`` and the
  markdown/HTML QA report built from the RunDB and ResultStores.
"""

from repro.orchestrate.rundb import (
    ArtifactRecord,
    RunDB,
    RunRecord,
    StepRecord,
    is_volatile_metric,
)
from repro.orchestrate.report import build_report, markdown_to_html, workflow_status
from repro.orchestrate.runner import (
    StepOutcome,
    WorkflowRunResult,
    current_fingerprint,
    execute_step,
    reason_to_run,
    run_workflow,
    store_fingerprint,
    workdir_paths,
)
from repro.orchestrate.spec import (
    STEP_KINDS,
    OrchestrationError,
    WorkflowSpec,
    WorkflowStep,
    parse_workflow,
    step_config_hash,
    topological_order,
)

__all__ = [
    "ArtifactRecord",
    "OrchestrationError",
    "RunDB",
    "RunRecord",
    "STEP_KINDS",
    "StepOutcome",
    "StepRecord",
    "WorkflowRunResult",
    "WorkflowSpec",
    "WorkflowStep",
    "build_report",
    "current_fingerprint",
    "execute_step",
    "is_volatile_metric",
    "markdown_to_html",
    "parse_workflow",
    "reason_to_run",
    "run_workflow",
    "step_config_hash",
    "store_fingerprint",
    "topological_order",
    "workdir_paths",
    "workflow_status",
]
