"""Status and QA-report rendering from the run database.

``repro status`` answers "what ran, with what, and what changed since":
for every step of the workflow it compares the spec's current config
hash and the recorded artifact fingerprints against the latest completed
execution, the same check resume uses -- so ``status`` is a dry-run of
``repro run --resume``.

``repro report`` renders a full QA report (markdown, or self-contained
HTML) from the RunDB plus the sweep ResultStores: per-step metrics
(timings dropped, so reports are deterministic for golden-gating), sweep
tables and heatmaps via the PR 3 renderers, artifact provenance, and a
"what changed" section diffing each step against its previous completed
execution (config key diffs, plus :func:`format_store_diff` for sweeps).
"""

from __future__ import annotations

import html as html_module
import json
from typing import Any, Dict, List, Optional

from repro.eval.reporting import (
    format_heatmap,
    format_markdown_table,
    format_serving_records,
    format_store_diff,
    format_sweep_records,
    format_table,
    sweep_grid,
)
from repro.orchestrate.rundb import RunDB, StepRecord, is_volatile_metric
from repro.orchestrate.runner import reason_to_run, workdir_paths
from repro.orchestrate.spec import WorkflowSpec


def _deterministic_metrics(record: StepRecord) -> Dict[str, Any]:
    return {
        key: value
        for key, value in sorted(record.metrics.items())
        if not is_volatile_metric(key)
    }


def _wall(record: Optional[StepRecord]) -> str:
    if record is None or record.wall_s is None:
        return "-"
    return f"{record.wall_s:.2f}s"


# --------------------------------------------------------------------------
# status
# --------------------------------------------------------------------------
def workflow_status(spec: WorkflowSpec, workdir) -> str:
    """Render the "what ran, with what, and what changed since" view."""
    paths = workdir_paths(workdir)
    lines = [
        f"workflow: {spec.name}",
        f"workflow hash: {spec.workflow_hash}",
        f"workdir: {paths['root']}",
    ]
    if not paths["rundb"].exists():
        lines.append("no runs recorded")
        return "\n".join(lines)
    with RunDB(paths["rundb"]) as db:
        runs = db.runs()
        if not runs:
            lines.append("no runs recorded")
            return "\n".join(lines)
        last_run = runs[-1]
        lines.append(
            f"runs recorded: {len(runs)} (last outcome: {last_run.outcome}, "
            f"git {last_run.git_rev or 'unknown'})"
        )
        lines.append("")
        rows = []
        for step in spec.execution_order():
            last = db.latest_completed(step.name)
            reason = reason_to_run(db, step)
            if last is None:
                state = "never completed"
            elif reason is None:
                state = "up-to-date"
            else:
                state = f"stale: {reason}"
            rows.append(
                {
                    "step": step.name,
                    "kind": step.kind,
                    "config": step.config_hash,
                    "state": state,
                    "wall": _wall(last),
                }
            )
        lines.append(format_table(rows, title="steps"))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# report
# --------------------------------------------------------------------------
def _sweep_section(record: StepRecord, db: RunDB) -> List[str]:
    """Sweep tables + heatmap rendered from the step's result store."""
    from repro.eval.store import ResultStore
    from repro.eval.sweep import SweepSpec, spec_records

    lines: List[str] = []
    store_path = next(
        (
            artifact.path
            for artifact in db.artifacts_for(record.id)
            if artifact.direction == "produced"
            and artifact.name.startswith("results:")
        ),
        None,
    )
    if not store_path:
        return lines
    store = ResultStore(store_path)
    try:
        sweep_spec = SweepSpec.from_dict(record.config["spec"])
        records = spec_records(sweep_spec, store)
    except Exception:  # noqa: BLE001 - stale store; report what we can
        records = list(store.latest().values())
    if not records:
        lines.append("(sweep store has no records)")
        return lines
    serving = [
        record
        for record in records
        if record.config.get("kind") == "serving-load"
    ]
    accuracy_records = [
        record
        for record in records
        if record.config.get("kind") != "serving-load"
    ]
    lines.append("```")
    if accuracy_records:
        # Timing columns are dropped so reports are deterministic
        # (golden-gated).
        lines.append(
            format_sweep_records(
                accuracy_records,
                metrics=("test_accuracy", "memory_kib"),
                title="sweep results",
            )
        )
        grid = sweep_grid(accuracy_records)
        if grid:
            lines.append("")
            lines.append(format_heatmap(grid, title="test accuracy (%)"))
    if serving:
        # The capacity-planning view: p99/QPS per serving point.  These
        # columns are volatile by nature -- golden-gated workflows use
        # accuracy sweeps; serving tables are for operators.
        if accuracy_records:
            lines.append("")
        lines.append(
            format_serving_records(serving, title="serving-load results")
        )
    lines.append("```")
    return lines


def _changes_for(record: StepRecord, db: RunDB) -> List[str]:
    """Config + result diffs against the step's previous completed run."""
    from repro.eval.store import ResultStore

    previous = db.previous_completed(record.step, record.id)
    if previous is None:
        return ["first completed execution (nothing to compare against)"]
    lines: List[str] = []
    if previous.config_hash != record.config_hash:
        lines.append(
            f"config hash {previous.config_hash} -> {record.config_hash}:"
        )
        keys = sorted(set(previous.config) | set(record.config))
        for key in keys:
            old = previous.config.get(key, "<absent>")
            new = record.config.get(key, "<absent>")
            if old != new:
                lines.append(
                    f"  - {key}: {json.dumps(old, sort_keys=True)} -> "
                    f"{json.dumps(new, sort_keys=True)}"
                )
    old_metrics = _deterministic_metrics(previous)
    new_metrics = _deterministic_metrics(record)
    for key in sorted(set(old_metrics) | set(new_metrics)):
        old = old_metrics.get(key, "<absent>")
        new = new_metrics.get(key, "<absent>")
        if old != new:
            lines.append(f"  - metric {key}: {old} -> {new}")
    if record.kind == "sweep":
        old_path = next(
            (
                artifact.path
                for artifact in db.artifacts_for(previous.id)
                if artifact.name.startswith("results:")
            ),
            None,
        )
        new_path = next(
            (
                artifact.path
                for artifact in db.artifacts_for(record.id)
                if artifact.name.startswith("results:")
            ),
            None,
        )
        if old_path and new_path and old_path != new_path:
            diff = ResultStore(old_path).diff(ResultStore(new_path))
            lines.append("```")
            lines.append(format_store_diff(diff, title="sweep store diff"))
            lines.append("```")
    if not lines:
        lines.append("no changes vs previous execution")
    return lines


def build_report(spec: WorkflowSpec, workdir, fmt: str = "markdown") -> str:
    """Build the QA report for ``spec`` from the RunDB under ``workdir``.

    ``fmt`` is ``"markdown"`` or ``"html"`` (markdown converted through
    the small self-contained renderer below; no external dependencies).
    """
    if fmt not in ("markdown", "html"):
        raise ValueError(f"format must be 'markdown' or 'html', got {fmt!r}")
    markdown = _build_markdown(spec, workdir)
    if fmt == "markdown":
        return markdown
    return markdown_to_html(markdown, title=f"Workflow report: {spec.name}")


def _build_markdown(spec: WorkflowSpec, workdir) -> str:
    paths = workdir_paths(workdir)
    lines = [
        f"# Workflow report: {spec.name}",
        "",
        f"- workflow hash: `{spec.workflow_hash}`",
        f"- workdir: `{paths['root']}`",
    ]
    if not paths["rundb"].exists():
        lines.extend(["", "No runs recorded."])
        return "\n".join(lines) + "\n"
    with RunDB(paths["rundb"]) as db:
        runs = db.runs()
        if not runs:
            lines.extend(["", "No runs recorded."])
            return "\n".join(lines) + "\n"
        lines.append(f"- runs recorded: {len(runs)}")
        lines.append(f"- last run outcome: {runs[-1].outcome}")
        lines.append(f"- git rev: `{runs[-1].git_rev or 'unknown'}`")

        order = spec.execution_order()
        summary_rows = []
        for step in order:
            last = db.latest_completed(step.name)
            summary_rows.append(
                {
                    "step": step.name,
                    "kind": step.kind,
                    "config": f"`{step.config_hash}`",
                    "outcome": last.outcome if last else "never completed",
                    "wall": _wall(last),
                }
            )
        lines.extend(["", "## Summary", "", format_markdown_table(summary_rows)])

        for step in order:
            last = db.latest_completed(step.name)
            lines.extend(["", f"## Step: {step.name} ({step.kind})", ""])
            if last is None:
                lines.append("never completed")
                continue
            metrics = _deterministic_metrics(last)
            if metrics:
                lines.append(
                    format_markdown_table(
                        [{"metric": key, "value": value} for key, value in metrics.items()],
                        columns=["metric", "value"],
                        float_format="{:.6g}",
                    )
                )
            artifacts = db.artifacts_for(last.id)
            if artifacts:
                lines.append("")
                for artifact in artifacts:
                    lines.append(
                        f"- {artifact.direction} `{artifact.name}` "
                        f"(sha256 `{artifact.sha256[:16]}`)"
                    )
            if step.kind == "sweep":
                section = _sweep_section(last, db)
                if section:
                    lines.append("")
                    lines.extend(section)

        lines.extend(["", "## What changed", ""])
        for step in order:
            last = db.latest_completed(step.name)
            lines.append(f"### {step.name}")
            lines.append("")
            if last is None:
                lines.append("never completed")
            else:
                lines.extend(_changes_for(last, db))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# --------------------------------------------------------------------------
# Minimal markdown -> HTML (headings, fenced blocks, tables, lists)
# --------------------------------------------------------------------------
def markdown_to_html(markdown: str, title: str = "Workflow report") -> str:
    """Convert the report's markdown subset to a self-contained HTML page."""
    body: List[str] = []
    lines = markdown.splitlines()
    index = 0
    in_code = False
    code: List[str] = []
    while index < len(lines):
        line = lines[index]
        if line.startswith("```"):
            if in_code:
                body.append(
                    "<pre>" + html_module.escape("\n".join(code)) + "</pre>"
                )
                code = []
            in_code = not in_code
            index += 1
            continue
        if in_code:
            code.append(line)
            index += 1
            continue
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            level = min(level, 6)
            text = _inline_html(line[level:].strip())
            body.append(f"<h{level}>{text}</h{level}>")
            index += 1
            continue
        if line.startswith("|"):
            table = []
            while index < len(lines) and lines[index].startswith("|"):
                table.append(lines[index])
                index += 1
            body.append(_table_html(table))
            continue
        if line.startswith("- "):
            items = []
            while index < len(lines) and lines[index].startswith("- "):
                items.append(f"<li>{_inline_html(lines[index][2:])}</li>")
                index += 1
            body.append("<ul>" + "".join(items) + "</ul>")
            continue
        if line.strip():
            body.append(f"<p>{_inline_html(line.strip())}</p>")
        index += 1
    if in_code and code:  # unterminated fence: still show the content
        body.append("<pre>" + html_module.escape("\n".join(code)) + "</pre>")
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{html_module.escape(title)}</title>"
        "<style>body{font-family:sans-serif;margin:2em;}"
        "table{border-collapse:collapse;}td,th{border:1px solid #999;"
        "padding:4px 8px;}pre{background:#f4f4f4;padding:1em;"
        "overflow-x:auto;}code{background:#f4f4f4;}</style>"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def _inline_html(text: str) -> str:
    """Escape, then re-introduce `code` spans (the only inline markup used)."""
    escaped = html_module.escape(text)
    parts = escaped.split("`")
    for position in range(1, len(parts), 2):
        parts[position] = f"<code>{parts[position]}</code>"
    if len(parts) % 2 == 0:  # unbalanced backtick: keep it literal
        return escaped
    return "".join(parts)


def _table_html(rows: List[str]) -> str:
    parsed = []
    for row in rows:
        cells = [cell.strip() for cell in row.strip().strip("|").split("|")]
        if all(set(cell) <= {"-", ":", " "} and cell for cell in cells):
            continue  # the markdown separator row
        parsed.append(cells)
    if not parsed:
        return ""
    html_rows = []
    for position, cells in enumerate(parsed):
        tag = "th" if position == 0 else "td"
        html_rows.append(
            "<tr>"
            + "".join(f"<{tag}>{_inline_html(cell)}</{tag}>" for cell in cells)
            + "</tr>"
        )
    return "<table>" + "".join(html_rows) + "</table>"
