"""The run database: SQLite provenance for workflow executions.

Lives next to the artifact store (``<workdir>/runs.sqlite``) and records,
for every step execution:

* the step's canonical **config hash** (the resume key),
* the **git revision** the runner was launched from,
* **artifacts produced and consumed** (name, path, content SHA-256),
* wall time, a **stdout/stderr tail**, and the outcome.

Every write is committed immediately, so a SIGKILL at any instant leaves
at worst a ``running`` row -- never a torn one.  On the next run those
stale ``running`` rows are flipped to ``interrupted`` and simply do not
count as completed, which is what makes ``repro run --resume`` crash-safe:
resume trusts only ``completed`` rows whose config hash and artifact
fingerprints still match.

Schema (see ``docs/architecture.md`` for the prose version)::

    runs(id, workflow, workflow_hash, git_rev, started_unix,
         finished_unix, outcome)
    steps(id, run_id -> runs, step, kind, config_hash, config_json,
          git_rev, started_unix, finished_unix, wall_s, outcome,
          metrics_json, stdout_tail, stderr_tail, error)
    artifacts(id, step_id -> steps, direction, name, path, sha256)
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.eval.store import is_volatile_metric as _is_volatile_metric

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    workflow TEXT NOT NULL,
    workflow_hash TEXT NOT NULL,
    git_rev TEXT,
    started_unix REAL NOT NULL,
    finished_unix REAL,
    outcome TEXT NOT NULL DEFAULT 'running'
);
CREATE TABLE IF NOT EXISTS steps (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs(id),
    step TEXT NOT NULL,
    kind TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    config_json TEXT NOT NULL,
    git_rev TEXT,
    started_unix REAL NOT NULL,
    finished_unix REAL,
    wall_s REAL,
    outcome TEXT NOT NULL DEFAULT 'running',
    metrics_json TEXT,
    stdout_tail TEXT,
    stderr_tail TEXT,
    error TEXT
);
CREATE TABLE IF NOT EXISTS artifacts (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    step_id INTEGER NOT NULL REFERENCES steps(id),
    direction TEXT NOT NULL CHECK (direction IN ('produced', 'consumed')),
    name TEXT NOT NULL,
    path TEXT,
    sha256 TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_steps_step ON steps(step, id);
CREATE INDEX IF NOT EXISTS idx_artifacts_step ON artifacts(step_id);
"""


def is_volatile_metric(name: str) -> bool:
    """True for wall-clock/latency metrics excluded from state comparisons.

    Delegates to the explicit ``repro.eval.store.VOLATILE_METRICS`` set
    (plus per-engine suffixed variants).  The old implementation matched
    timing-ish *substrings* anywhere in the name, which wrongly skipped
    deterministic metrics like ``firewall_rules`` ("wall") and would have
    drift-gated serving-load latency metrics like ``p99_ms``.
    """
    return _is_volatile_metric(name)


@dataclasses.dataclass(frozen=True)
class ArtifactRecord:
    """One produced/consumed artifact edge of a step execution."""

    step_id: int
    direction: str
    name: str
    path: str
    sha256: str


@dataclasses.dataclass(frozen=True)
class StepRecord:
    """One recorded step execution (a row of ``steps``)."""

    id: int
    run_id: int
    step: str
    kind: str
    config_hash: str
    config: Dict[str, Any]
    git_rev: Optional[str]
    started_unix: float
    finished_unix: Optional[float]
    wall_s: Optional[float]
    outcome: str
    metrics: Dict[str, Any]
    stdout_tail: str
    stderr_tail: str
    error: Optional[str]


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One recorded workflow run (a row of ``runs``)."""

    id: int
    workflow: str
    workflow_hash: str
    git_rev: Optional[str]
    started_unix: float
    finished_unix: Optional[float]
    outcome: str


class RunDB:
    """SQLite-backed provenance store for workflow runs.

    Opens (and creates, including parents) the database at ``path``.
    Usable as a context manager; every mutation commits immediately.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- runs
    def begin_run(
        self, workflow: str, workflow_hash: str, git_rev: Optional[str]
    ) -> int:
        """Open a new run row; flip stale ``running`` rows to ``interrupted``.

        Stale rows are what a SIGKILLed runner leaves behind -- marking
        them keeps ``status`` honest without affecting resume (which only
        trusts ``completed`` rows anyway).
        """
        self._conn.execute(
            "UPDATE steps SET outcome = 'interrupted' WHERE outcome = 'running'"
        )
        self._conn.execute(
            "UPDATE runs SET outcome = 'interrupted' WHERE outcome = 'running'"
        )
        cursor = self._conn.execute(
            "INSERT INTO runs (workflow, workflow_hash, git_rev, started_unix)"
            " VALUES (?, ?, ?, ?)",
            (workflow, workflow_hash, git_rev, time.time()),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def finish_run(self, run_id: int, outcome: str) -> None:
        self._conn.execute(
            "UPDATE runs SET outcome = ?, finished_unix = ? WHERE id = ?",
            (outcome, time.time(), run_id),
        )
        self._conn.commit()

    def runs(self) -> List[RunRecord]:
        rows = self._conn.execute("SELECT * FROM runs ORDER BY id").fetchall()
        return [
            RunRecord(
                id=row["id"],
                workflow=row["workflow"],
                workflow_hash=row["workflow_hash"],
                git_rev=row["git_rev"],
                started_unix=row["started_unix"],
                finished_unix=row["finished_unix"],
                outcome=row["outcome"],
            )
            for row in rows
        ]

    # -------------------------------------------------------------- steps
    def begin_step(
        self,
        run_id: int,
        step: str,
        kind: str,
        config_hash: str,
        config: Dict[str, Any],
        git_rev: Optional[str],
    ) -> int:
        cursor = self._conn.execute(
            "INSERT INTO steps (run_id, step, kind, config_hash, config_json,"
            " git_rev, started_unix) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                step,
                kind,
                config_hash,
                json.dumps(config, sort_keys=True),
                git_rev,
                time.time(),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def finish_step(
        self,
        step_id: int,
        outcome: str,
        *,
        wall_s: Optional[float] = None,
        metrics: Optional[Dict[str, Any]] = None,
        stdout_tail: str = "",
        stderr_tail: str = "",
        error: Optional[str] = None,
    ) -> None:
        self._conn.execute(
            "UPDATE steps SET outcome = ?, finished_unix = ?, wall_s = ?,"
            " metrics_json = ?, stdout_tail = ?, stderr_tail = ?, error = ?"
            " WHERE id = ?",
            (
                outcome,
                time.time(),
                wall_s,
                json.dumps(metrics or {}, sort_keys=True),
                stdout_tail,
                stderr_tail,
                error,
                step_id,
            ),
        )
        self._conn.commit()

    def record_artifacts(
        self, step_id: int, direction: str, items: Sequence[Dict[str, Any]]
    ) -> None:
        """Attach artifact edges to a step. ``items`` carry name/path/sha256."""
        if direction not in ("produced", "consumed"):
            raise ValueError(f"invalid artifact direction {direction!r}")
        self._conn.executemany(
            "INSERT INTO artifacts (step_id, direction, name, path, sha256)"
            " VALUES (?, ?, ?, ?, ?)",
            [
                (step_id, direction, item["name"], item.get("path", ""), item["sha256"])
                for item in items
            ],
        )
        self._conn.commit()

    def _step_from_row(self, row: sqlite3.Row) -> StepRecord:
        return StepRecord(
            id=row["id"],
            run_id=row["run_id"],
            step=row["step"],
            kind=row["kind"],
            config_hash=row["config_hash"],
            config=json.loads(row["config_json"]),
            git_rev=row["git_rev"],
            started_unix=row["started_unix"],
            finished_unix=row["finished_unix"],
            wall_s=row["wall_s"],
            outcome=row["outcome"],
            metrics=json.loads(row["metrics_json"]) if row["metrics_json"] else {},
            stdout_tail=row["stdout_tail"] or "",
            stderr_tail=row["stderr_tail"] or "",
            error=row["error"],
        )

    def step_rows(self) -> List[StepRecord]:
        """Every recorded step execution, oldest first."""
        rows = self._conn.execute("SELECT * FROM steps ORDER BY id").fetchall()
        return [self._step_from_row(row) for row in rows]

    def latest_completed(self, step: str) -> Optional[StepRecord]:
        """The most recent ``completed`` execution of ``step``, if any."""
        row = self._conn.execute(
            "SELECT * FROM steps WHERE step = ? AND outcome = 'completed'"
            " ORDER BY id DESC LIMIT 1",
            (step,),
        ).fetchone()
        return self._step_from_row(row) if row is not None else None

    def previous_completed(self, step: str, before_id: int) -> Optional[StepRecord]:
        """The last ``completed`` execution of ``step`` before ``before_id``."""
        row = self._conn.execute(
            "SELECT * FROM steps WHERE step = ? AND outcome = 'completed'"
            " AND id < ? ORDER BY id DESC LIMIT 1",
            (step, before_id),
        ).fetchone()
        return self._step_from_row(row) if row is not None else None

    def artifacts_for(self, step_id: int) -> List[ArtifactRecord]:
        rows = self._conn.execute(
            "SELECT * FROM artifacts WHERE step_id = ? ORDER BY id",
            (step_id,),
        ).fetchall()
        return [
            ArtifactRecord(
                step_id=row["step_id"],
                direction=row["direction"],
                name=row["name"],
                path=row["path"] or "",
                sha256=row["sha256"],
            )
            for row in rows
        ]

    # ----------------------------------------------------------- analysis
    def end_state(self) -> Dict[str, Any]:
        """Canonical "where did this workflow land" dict.

        Keyed by step name, covering the latest completed execution only:
        config hash, kind, deterministic metrics (timings dropped), and
        artifact names + content hashes.  Run counts, row ids and wall
        times are excluded **by design** -- an interrupted-then-resumed
        workflow records more runs than an uninterrupted one, but must
        land in the same end state.  The chaos tests compare exactly this.
        """
        state: Dict[str, Any] = {}
        names = [
            row["step"]
            for row in self._conn.execute(
                "SELECT DISTINCT step FROM steps ORDER BY step"
            ).fetchall()
        ]
        for name in names:
            record = self.latest_completed(name)
            if record is None:
                continue
            artifacts: Dict[str, List[Dict[str, str]]] = {}
            for artifact in self.artifacts_for(record.id):
                artifacts.setdefault(artifact.direction, []).append(
                    {"name": artifact.name, "sha256": artifact.sha256}
                )
            for edges in artifacts.values():
                edges.sort(key=lambda item: item["name"])
            state[name] = {
                "kind": record.kind,
                "config_hash": record.config_hash,
                "metrics": {
                    key: value
                    for key, value in sorted(record.metrics.items())
                    if not is_volatile_metric(key)
                },
                "artifacts": artifacts,
            }
        return state
