"""Workflow execution: the DAG scheduler and per-kind step executors.

``run_workflow`` walks the validated spec in topological order, records
every execution in the :class:`~repro.orchestrate.rundb.RunDB`, and
skips steps that are already up to date -- mirroring the sweep-resume
semantics: a step is skipped iff its latest *completed* execution has
the same canonical config hash **and** every artifact it recorded
(consumed and produced) still fingerprints to the recorded SHA-256.
``--force`` reruns everything; a crash mid-step leaves only a
``running`` row, which resume ignores.

With ``workers > 1`` independent steps fan out over a
``ProcessPoolExecutor`` using the same FIRST_COMPLETED wait loop as
:func:`repro.eval.sweep.run_sweep`.  :func:`execute_step` is a
module-level function taking a plain-dict payload so it pickles into
worker processes; it captures stdout/stderr and never raises --
failures come back as ``{"ok": False, ...}`` so the tails survive.

Artifacts are addressed with self-describing names so resume can
re-fingerprint them without re-running the producer:

* ``dataset:<name>?scale=<s>&seed=<k>`` -- content hash of the loaded
  arrays (:func:`repro.io.checkpoint.dataset_fingerprint`).
* ``checkpoint:<name>:<tag>`` -- logical content hash of the registry
  checkpoint (:func:`repro.io.checkpoint.content_fingerprint`; ignores
  the manifest's creation timestamp and archive byte layout).
* ``results:<file>`` -- hash of the sweep store's canonical records
  with timing metrics dropped (:func:`store_fingerprint`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import subprocess
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.orchestrate.rundb import RunDB
from repro.orchestrate.spec import OrchestrationError, WorkflowSpec, WorkflowStep

#: Characters kept from each captured stream (enough to diagnose, small
#: enough to live comfortably in a DB row).
TAIL_CHARS = 2000

#: Test-only knobs for the chaos harness: sleep this many seconds at the
#: start of every step (or only the named step), so a SIGKILL can land
#: reliably *mid-step* rather than racing the step's natural duration.
DELAY_ENV = "REPRO_ORCH_TEST_DELAY_S"
DELAY_STEP_ENV = "REPRO_ORCH_TEST_DELAY_STEP"


# --------------------------------------------------------------------------
# Workdir layout
# --------------------------------------------------------------------------
def workdir_paths(workdir) -> Dict[str, Path]:
    """The fixed layout under a workflow working directory."""
    root = Path(workdir)
    return {
        "root": root,
        "store": root / "store",  # artifact registry
        "sweeps": root / "sweeps",  # one ResultStore per sweep step+hash
        "rundb": root / "runs.sqlite",  # provenance DB, next to the store
    }


def current_git_rev() -> Optional[str]:
    """HEAD revision of the repo this module lives in, or None."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


# --------------------------------------------------------------------------
# Artifact naming and fingerprints
# --------------------------------------------------------------------------
def dataset_artifact_name(dataset: str, scale, seed) -> str:
    return f"dataset:{dataset}?scale={scale}&seed={seed}"


def _dataset_artifact(config: Dict[str, Any]) -> Dict[str, Any]:
    from repro.data.datasets import load_dataset
    from repro.io.checkpoint import dataset_fingerprint

    ds = load_dataset(config["dataset"], scale=config["scale"], rng=config["seed"])
    fingerprint = dataset_fingerprint(ds)
    return {
        "name": dataset_artifact_name(
            config["dataset"], config["scale"], config["seed"]
        ),
        "path": "",
        "sha256": fingerprint["sha256"],
        "dataset": ds,
    }


def store_fingerprint(path) -> str:
    """Content hash of a sweep result store, ignoring timing metrics.

    The JSONL file itself is not byte-stable (append order under a
    process pool, wall-clock metrics), so provenance hashes the
    canonical ``{config key: deterministic metrics}`` mapping instead.
    """
    from repro.eval.store import ResultStore, is_volatile_metric

    store = ResultStore(path)
    payload = {
        key: {
            metric: value
            for metric, value in sorted(record.metrics.items())
            if not is_volatile_metric(metric)
        }
        for key, record in store.latest().items()
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def current_fingerprint(name: str, path: str) -> str:
    """Recompute an artifact's fingerprint for resume comparison.

    Never raises: unreadable or missing artifacts return a sentinel that
    cannot match a recorded SHA-256, which makes the step rerun -- the
    safe direction.
    """
    try:
        if name.startswith("dataset:"):
            spec = name[len("dataset:"):]
            dataset, _, query = spec.partition("?")
            params = dict(
                part.split("=", 1) for part in query.split("&") if "=" in part
            )
            from repro.data.datasets import load_dataset
            from repro.io.checkpoint import dataset_fingerprint

            ds = load_dataset(
                dataset,
                scale=float(params.get("scale", 1.0)),
                rng=int(params.get("seed", 0)),
            )
            return dataset_fingerprint(ds)["sha256"]
        if name.startswith("checkpoint:"):
            from repro.io.checkpoint import content_fingerprint

            if not path or not os.path.isfile(path):
                return "missing"
            return content_fingerprint(path)
        if name.startswith("results:"):
            if not path or not os.path.isfile(path):
                return "missing"
            return store_fingerprint(path)
        return "unknown-artifact-kind"
    except Exception as error:  # noqa: BLE001 - any failure means "changed"
        return f"error:{error}"


# --------------------------------------------------------------------------
# Per-kind executors (run inside worker processes; return plain dicts)
# --------------------------------------------------------------------------
def _execute_dataset(payload: Dict[str, Any]) -> Dict[str, Any]:
    config = payload["config"]
    artifact = _dataset_artifact(config)
    ds = artifact.pop("dataset")
    print(
        f"dataset {ds.name}: {ds.train_features.shape[0]} train / "
        f"{ds.test_features.shape[0]} test rows, "
        f"{ds.num_features} features, {ds.num_classes} classes"
    )
    return {
        "metrics": {
            "train_examples": int(ds.train_features.shape[0]),
            "test_examples": int(ds.test_features.shape[0]),
            "num_features": int(ds.num_features),
            "num_classes": int(ds.num_classes),
        },
        "consumed": [],
        "produced": [artifact],
    }


def _execute_train(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.eval.sweep import build_model
    from repro.io.checkpoint import content_fingerprint
    from repro.io.registry import ArtifactRegistry

    config = payload["config"]
    dataset_artifact = _dataset_artifact(config)
    ds = dataset_artifact.pop("dataset")
    model = build_model(
        config["model"],
        ds.num_features,
        ds.num_classes,
        dimension=config["dimension"],
        columns=config["columns"],
        epochs=config["epochs"],
        learning_rate=config["learning_rate"],
        cluster_ratio=config["cluster_ratio"],
        init_method=config["init_method"],
        id_levels=config["id_levels"],
        seed=config["seed"],
    )
    started = time.perf_counter()
    history = model.fit(ds.train_features, ds.train_labels)
    train_elapsed = time.perf_counter() - started
    test_accuracy = float(model.score(ds.test_features, ds.test_labels))
    report = model.memory_report()

    registry = ArtifactRegistry(payload["store_root"])
    name, _, tag = config["save"].partition(":")
    metrics = {
        "train_accuracy": float(history.final_train_accuracy),
        "test_accuracy": test_accuracy,
        "memory_kib": float(report.total_kib),
    }
    entry = registry.save(
        model,
        name,
        tag,
        dataset=ds,
        metrics=metrics,
        lineage={
            "workflow_step": payload["name"],
            "config_hash": payload["config_hash"],
        },
    )
    print(f"saved {entry.spec} (test accuracy {test_accuracy:.4f})")
    return {
        "metrics": {**metrics, "train_elapsed_s": train_elapsed},
        "consumed": [dataset_artifact],
        "produced": [
            {
                "name": f"checkpoint:{entry.spec}",
                "path": str(entry.path),
                "sha256": content_fingerprint(entry.path),
            }
        ],
    }


def _execute_sweep(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.eval.store import ResultStore
    from repro.eval.sweep import SweepError, SweepSpec, run_sweep, spec_records

    config = payload["config"]
    spec = SweepSpec.from_dict(config["spec"])
    distributed = config.get("distributed")
    if distributed:
        # Elastic same-host pool over a shared store dir: N subprocess
        # workers claim cells via lease files.  The store dir is derived
        # from the step's config hash, so a re-run resumes the same pool
        # directory (and the results artifact inside it).
        from repro.eval.distributed import run_distributed_pool, store_paths

        store_dir = (
            Path(payload["sweep_dir"])
            / f"{payload['name']}-{payload['config_hash'][:8]}.pool"
        )
        try:
            run_distributed_pool(
                spec,
                store_dir,
                workers=distributed["workers"],
                ttl_s=distributed.get("ttl_s", 30.0),
                poll_s=distributed.get("poll_s"),
                progress=print,
            )
        except SweepError as error:
            raise OrchestrationError(f"distributed sweep failed: {error}") from error
        filename = f"{store_dir.name}/{store_paths(store_dir)['results'].name}"
        store_path = store_paths(store_dir)["results"]
        store = ResultStore(store_path)
    else:
        filename = config["results"] or (
            f"{payload['name']}-{payload['config_hash'][:8]}.jsonl"
        )
        store_path = Path(payload["sweep_dir"]) / filename
        store = ResultStore(store_path)
        result = run_sweep(
            spec, store, workers=config["workers"], resume=True, progress=print
        )
        if not result.ok:
            details = "; ".join(
                f"{item.get('key', '?')}: {item.get('error', '?')}"
                for item in result.failed
            )
            raise OrchestrationError(
                f"sweep failed for {len(result.failed)} cell(s): {details}"
            )
        print(result.summary())
    records = spec_records(spec, store)
    best = max(
        (record.metrics.get("test_accuracy") for record in records),
        default=None,
    )
    # Executed-vs-resumed counts are wall-history, not state: a resumed
    # run reports different splits than a oneshot one, so they went to
    # stdout (the tail) above rather than into the metrics row.
    metrics: Dict[str, Any] = {"cells": len(spec.expand())}
    if best is not None:
        metrics["best_test_accuracy"] = float(best)
    return {
        "metrics": metrics,
        "consumed": [],
        "produced": [
            {
                "name": f"results:{filename}",
                "path": str(store_path),
                "sha256": store_fingerprint(store_path),
            }
        ],
    }


def _checkpoint_artifact(registry, spec: str) -> Dict[str, Any]:
    from repro.io.checkpoint import content_fingerprint

    path = registry.resolve(spec)
    return {
        "name": f"checkpoint:{spec}",
        "path": str(path),
        "sha256": content_fingerprint(path),
    }


def _execute_bench(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.io.registry import ArtifactRegistry
    from repro.runtime.pipeline import InferencePipeline

    config = payload["config"]
    dataset_artifact = _dataset_artifact(config)
    ds = dataset_artifact.pop("dataset")
    registry = ArtifactRegistry(payload["store_root"])
    model, _, resolved = registry.load_with_manifest(config["model"])
    consumed = [dataset_artifact, _checkpoint_artifact(registry, resolved)]

    metrics: Dict[str, Any] = {}
    queries = ds.test_features
    expected = ds.test_labels
    for engine in config["engines"]:
        pipeline = InferencePipeline(
            model, engine=engine, chunk_size=config["batch_size"]
        )
        pipeline.warmup()
        best_elapsed = None
        labels = None
        for _ in range(config["repeats"]):
            started = time.perf_counter()
            labels = pipeline.predict(queries)
            elapsed = time.perf_counter() - started
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed = elapsed
        accuracy = float(np.mean(labels == expected))
        throughput = queries.shape[0] / best_elapsed if best_elapsed else 0.0
        metrics[f"accuracy_{engine}"] = accuracy
        metrics[f"queries_per_s_{engine}"] = throughput
        print(
            f"bench {engine}: accuracy {accuracy:.4f}, "
            f"{throughput:.0f} queries/s over {queries.shape[0]} rows"
        )
    return {"metrics": metrics, "consumed": consumed, "produced": []}


def _execute_serve_smoke(payload: Dict[str, Any]) -> Dict[str, Any]:
    import urllib.request

    from repro.io.registry import ArtifactRegistry
    from repro.runtime.pipeline import InferencePipeline
    from repro.runtime.server import ModelServer

    config = payload["config"]
    dataset_artifact = _dataset_artifact(config)
    ds = dataset_artifact.pop("dataset")
    registry = ArtifactRegistry(payload["store_root"])
    model, manifest, resolved = registry.load_with_manifest(config["model"])
    consumed = [dataset_artifact, _checkpoint_artifact(registry, resolved)]

    rows = ds.test_features[: config["requests"] * config["batch"]]
    direct = InferencePipeline(model, engine=config["engine"]).predict(rows)

    served: List[int] = []
    sent = 0
    server = ModelServer(
        model,
        engine=config["engine"],
        manifest=manifest,
        host="127.0.0.1",
        port=0,
    ).start()
    try:
        for index in range(config["requests"]):
            batch = rows[index * config["batch"] : (index + 1) * config["batch"]]
            if batch.shape[0] == 0:
                break
            body = json.dumps({"features": batch.tolist()}).encode("utf-8")
            request = urllib.request.Request(
                server.url + "/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                reply = json.loads(response.read().decode("utf-8"))
            served.extend(int(label) for label in reply["labels"])
            sent += 1
        with urllib.request.urlopen(server.url + "/healthz", timeout=30) as response:
            health = json.loads(response.read().decode("utf-8"))
    finally:
        server.shutdown()
    expected = [int(label) for label in direct[: len(served)]]
    bit_exact = served == expected and len(served) == rows.shape[0]
    print(
        f"serve-smoke: {sent} request(s), {len(served)} row(s), "
        f"bit_exact={bit_exact}, health={health.get('status', '?')}"
    )
    if not bit_exact:
        raise OrchestrationError(
            "served labels diverged from the direct pipeline "
            f"({len(served)} served vs {rows.shape[0]} expected rows)"
        )
    return {
        "metrics": {
            "requests": sent,
            "rows": len(served),
            "bit_exact": bool(bit_exact),
        },
        "consumed": consumed,
        "produced": [],
    }


_KIND_EXECUTORS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "dataset": _execute_dataset,
    "train": _execute_train,
    "sweep": _execute_sweep,
    "bench": _execute_bench,
    "serve-smoke": _execute_serve_smoke,
}


def _tail(text: str) -> str:
    return text[-TAIL_CHARS:]


def execute_step(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one step; picklable entry point for the process pool.

    Captures stdout/stderr into tails and never raises: failures return
    ``{"ok": False, "error": ...}`` so diagnostics survive the process
    boundary intact.
    """
    delay = float(os.environ.get(DELAY_ENV, "0") or 0)
    only = os.environ.get(DELAY_STEP_ENV)
    if delay > 0 and (not only or only == payload["name"]):
        time.sleep(delay)
    stdout, stderr = io.StringIO(), io.StringIO()
    try:
        with redirect_stdout(stdout), redirect_stderr(stderr):
            result = _KIND_EXECUTORS[payload["kind"]](payload)
    except Exception as error:  # noqa: BLE001 - reported, not swallowed
        return {
            "ok": False,
            "error": f"{type(error).__name__}: {error}",
            "stdout_tail": _tail(stdout.getvalue()),
            "stderr_tail": _tail(stderr.getvalue() + traceback.format_exc()),
        }
    result["ok"] = True
    result["stdout_tail"] = _tail(stdout.getvalue())
    result["stderr_tail"] = _tail(stderr.getvalue())
    return result


# --------------------------------------------------------------------------
# Resume planning
# --------------------------------------------------------------------------
def reason_to_run(db: RunDB, step: WorkflowStep) -> Optional[str]:
    """Why ``step`` must execute, or ``None`` when it can be skipped.

    Skip requires: a completed execution with the same config hash whose
    recorded artifacts (inputs *and* outputs) all still fingerprint to
    the recorded SHA-256.
    """
    last = db.latest_completed(step.name)
    if last is None:
        return "never completed"
    if last.config_hash != step.config_hash:
        return f"config changed ({last.config_hash} -> {step.config_hash})"
    for artifact in db.artifacts_for(last.id):
        if current_fingerprint(artifact.name, artifact.path) != artifact.sha256:
            return f"{artifact.direction} artifact changed: {artifact.name}"
    return None


# --------------------------------------------------------------------------
# The scheduler
# --------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class StepOutcome:
    """What happened to one step during a ``run_workflow`` call."""

    name: str
    kind: str
    config_hash: str
    action: str  # "executed" | "skipped" | "failed" | "blocked"
    reason: str = ""
    wall_s: Optional[float] = None
    error: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class WorkflowRunResult:
    """Accounting of one ``run_workflow`` call."""

    run_id: int
    outcome: str  # "completed" | "failed"
    steps: List[StepOutcome]

    @property
    def ok(self) -> bool:
        return self.outcome == "completed"

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for step in self.steps:
            counts[step.action] = counts.get(step.action, 0) + 1
        parts = ", ".join(
            f"{counts[action]} {action}"
            for action in ("executed", "skipped", "failed", "blocked")
            if action in counts
        )
        return f"run #{self.run_id} {self.outcome}: {parts or 'no steps'}"


def run_workflow(
    spec: WorkflowSpec,
    workdir,
    *,
    workers: int = 1,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    db: Optional[RunDB] = None,
) -> WorkflowRunResult:
    """Execute ``spec`` under ``workdir``, recording provenance in the RunDB.

    Parameters
    ----------
    spec:
        A validated workflow.
    workdir:
        Working directory: artifact store, sweep stores and the run
        database all live under it (created on demand).
    workers:
        Process-pool width for independent steps; ``1`` runs inline.
    force:
        Rerun every step even when it is up to date.
    progress:
        Optional callable receiving one human-readable line per step.
    db:
        An open :class:`RunDB` to reuse (tests); defaults to the one
        under ``workdir``.
    """
    paths = workdir_paths(workdir)
    paths["store"].mkdir(parents=True, exist_ok=True)
    paths["sweeps"].mkdir(parents=True, exist_ok=True)
    owns_db = db is None
    db = db or RunDB(paths["rundb"])
    emit = progress or (lambda line: None)
    git_rev = current_git_rev()
    try:
        run_id = db.begin_run(spec.name, spec.workflow_hash, git_rev)
        order = spec.execution_order()
        total = len(order)
        outcomes: Dict[str, StepOutcome] = {}
        done: set = set()

        def payload_for(step: WorkflowStep) -> Dict[str, Any]:
            return {
                "name": step.name,
                "kind": step.kind,
                "config": dict(step.config),
                "config_hash": step.config_hash,
                "store_root": str(paths["store"]),
                "sweep_dir": str(paths["sweeps"]),
            }

        def finish(
            step: WorkflowStep,
            step_id: int,
            result: Dict[str, Any],
            wall_s: float,
        ) -> StepOutcome:
            if result["ok"]:
                db.record_artifacts(step_id, "consumed", result["consumed"])
                db.record_artifacts(step_id, "produced", result["produced"])
                db.finish_step(
                    step_id,
                    "completed",
                    wall_s=wall_s,
                    metrics=result["metrics"],
                    stdout_tail=result["stdout_tail"],
                    stderr_tail=result["stderr_tail"],
                )
                done.add(step.name)
                return StepOutcome(
                    step.name, step.kind, step.config_hash, "executed",
                    wall_s=wall_s,
                )
            db.finish_step(
                step_id,
                "failed",
                wall_s=wall_s,
                stdout_tail=result["stdout_tail"],
                stderr_tail=result["stderr_tail"],
                error=result["error"],
            )
            return StepOutcome(
                step.name, step.kind, step.config_hash, "failed",
                wall_s=wall_s, error=result["error"],
            )

        def schedule(step: WorkflowStep, position: int) -> Union[StepOutcome, int]:
            """Skip/block ``step``, or begin it and return its DB row id."""
            prefix = f"[{position}/{total}] {step.name}"
            missing = [need for need in step.needs if need not in done]
            if missing:
                emit(f"{prefix}: blocked (needs {', '.join(missing)})")
                return StepOutcome(
                    step.name, step.kind, step.config_hash, "blocked",
                    reason=f"needs {', '.join(missing)}",
                )
            reason = "forced" if force else reason_to_run(db, step)
            if reason is None:
                emit(f"{prefix}: skipped (up-to-date)")
                done.add(step.name)
                return StepOutcome(
                    step.name, step.kind, step.config_hash, "skipped",
                    reason="up-to-date",
                )
            emit(f"{prefix}: executing ({reason})")
            return db.begin_step(
                run_id, step.name, step.kind, step.config_hash,
                dict(step.config), git_rev,
            )

        if workers <= 1:
            for position, step in enumerate(order, start=1):
                scheduled = schedule(step, position)
                if isinstance(scheduled, StepOutcome):
                    outcomes[step.name] = scheduled
                    continue
                started = time.perf_counter()
                result = execute_step(payload_for(step))
                outcome = finish(
                    step, scheduled, result, time.perf_counter() - started
                )
                outcomes[step.name] = outcome
                if outcome.action == "failed":
                    emit(f"    {step.name} failed: {outcome.error}")
        else:
            _run_pool(order, schedule, finish, payload_for, outcomes, workers, emit)

        # Anything never reached (dependents of failures) is blocked.
        for step in order:
            if step.name not in outcomes:
                outcomes[step.name] = StepOutcome(
                    step.name, step.kind, step.config_hash, "blocked",
                    reason="upstream failure",
                )
        ordered = [outcomes[step.name] for step in order]
        run_outcome = (
            "completed"
            if all(o.action in ("executed", "skipped") for o in ordered)
            else "failed"
        )
        db.finish_run(run_id, run_outcome)
        return WorkflowRunResult(run_id=run_id, outcome=run_outcome, steps=ordered)
    finally:
        if owns_db:
            db.close()


def _run_pool(
    order: List[WorkflowStep],
    schedule: Callable,
    finish: Callable,
    payload_for: Callable,
    outcomes: Dict[str, StepOutcome],
    workers: int,
    emit: Callable[[str], None],
) -> None:
    """Fan independent steps out over processes (run_sweep's wait loop)."""
    total = len(order)
    remaining = {step.name: set(step.needs) for step in order}
    settled: set = set()  # steps with a final outcome this run
    position = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: Dict[Any, tuple] = {}
        while len(settled) < total:
            launched = False
            for step in order:
                if step.name in settled or step.name in {
                    meta[0].name for meta in futures.values()
                }:
                    continue
                deps_settled = all(
                    need in settled and outcomes.get(need) is not None
                    for need in remaining[step.name]
                )
                if not deps_settled:
                    continue
                position += 1
                scheduled = schedule(step, position)
                if isinstance(scheduled, StepOutcome):
                    outcomes[step.name] = scheduled
                    settled.add(step.name)
                    launched = True
                    continue
                future = pool.submit(execute_step, payload_for(step))
                futures[future] = (step, scheduled, time.perf_counter())
                launched = True
            if launched:
                continue
            if not futures:  # every runnable step settled; rest are blocked
                break
            finished, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            for future in finished:
                step, step_id, started = futures.pop(future)
                result = future.result()
                outcome = finish(
                    step, step_id, result, time.perf_counter() - started
                )
                outcomes[step.name] = outcome
                settled.add(step.name)
                if outcome.action == "failed":
                    emit(f"    {step.name} failed: {outcome.error}")
    # Steps whose dependencies failed never launched; mark them blocked.
    for step in order:
        if step.name not in outcomes:
            needs = ", ".join(
                need
                for need in step.needs
                if outcomes.get(need, None) is None
                or outcomes[need].action in ("failed", "blocked")
            )
            outcomes[step.name] = StepOutcome(
                step.name,
                step.kind,
                step.config_hash,
                "blocked",
                reason=f"needs {needs}" if needs else "upstream failure",
            )
