"""Declarative workflow specs: the ``repro.yml`` layer.

A workflow chains the repository's everyday operations -- dataset prep,
training, sweeps, benchmarks, serving smoke checks -- into one declarative
file executed by ``repro run``:

.. code-block:: yaml

    name: quickstart
    seed: 7
    steps:
      - name: prep
        kind: dataset
        config: {dataset: mnist, scale: 0.01}
      - name: train
        kind: train
        needs: [prep]
        config: {model: memhd, dataset: mnist, scale: 0.01,
                 dimension: 64, columns: 16, epochs: 1, save: "demo:wf"}
      ...

Parsing is **strict by default**, like the checkpoint manifests: unknown
top-level keys, unknown step keys, unknown step kinds and unknown config
keys for a kind all raise :class:`OrchestrationError` naming the offender
instead of being silently ignored.  ``needs:`` must form a DAG; cycles
are rejected with the cycle spelled out.

Every step gets a **config hash**: the truncated SHA-256 of its canonical
(defaults-applied, sorted-keys) JSON configuration, via the same
:func:`repro.eval.store.config_key` the sweep store uses.  The hash is
what the run database keys resume on -- identical across processes,
platforms, key orderings and explicitly-written-out default values.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.eval.store import config_key

try:  # pyyaml is a declared dependency, but degrade loudly, not weirdly.
    import yaml as _yaml
except ModuleNotFoundError:  # pragma: no cover - exercised only without pyyaml
    _yaml = None

#: Step kinds a workflow can chain (the pipeline stages of ROADMAP item 4).
STEP_KINDS = ("dataset", "train", "sweep", "bench", "serve-smoke")

#: Engines a bench / serve-smoke step may request.
_BENCH_ENGINES = ("float", "packed", "pruned")

#: Step and workflow names: path-safe (they name result files and DB rows).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class OrchestrationError(Exception):
    """A workflow could not be parsed, validated or executed."""


# --------------------------------------------------------------------------
# Per-kind config schemas: required keys, and optional keys with defaults.
# ``None`` defaults marked SEED are substituted with the workflow seed at
# resolution time, so hashes reflect the seed that actually applies.
# --------------------------------------------------------------------------
_SEED = object()  # sentinel: default to the workflow-level seed

_KIND_SCHEMAS: Dict[str, Tuple[Tuple[str, ...], Dict[str, Any]]] = {
    "dataset": (
        ("dataset",),
        {"scale": 0.02, "seed": _SEED},
    ),
    "train": (
        ("model", "dataset", "save"),
        {
            "scale": 0.02,
            "seed": _SEED,
            "dimension": 128,
            "columns": 128,
            "epochs": 5,
            "learning_rate": 0.05,
            "cluster_ratio": 0.8,
            "init_method": "clustering",
            "id_levels": 32,
        },
    ),
    "sweep": (
        ("spec",),
        {"results": None, "workers": 1, "distributed": None},
    ),
    "bench": (
        ("model", "dataset"),
        {
            "scale": 0.02,
            "seed": _SEED,
            "engines": ["float", "packed"],
            "batch_size": 256,
            "repeats": 1,
        },
    ),
    "serve-smoke": (
        ("model", "dataset"),
        {
            "scale": 0.02,
            "seed": _SEED,
            "engine": "packed",
            "requests": 4,
            "batch": 4,
        },
    ),
}


def _check_name(value: Any, what: str) -> str:
    if not isinstance(value, str) or not _NAME_PATTERN.match(value):
        raise OrchestrationError(
            f"invalid {what} {value!r}: use letters, digits, dots, "
            "underscores and dashes (must start alphanumeric)"
        )
    return value


def _resolve_config(
    step_name: str, kind: str, config: Dict[str, Any], workflow_seed: int
) -> Dict[str, Any]:
    """Apply the kind's schema: reject unknown keys, fill defaults.

    The resolved dict is what gets hashed, so a config that writes a
    default out explicitly hashes identically to one that omits it.
    """
    required, optional = _KIND_SCHEMAS[kind]
    known = set(required) | set(optional)
    unknown = set(config) - known
    if unknown:
        raise OrchestrationError(
            f"step {step_name!r}: unknown config key(s) {sorted(unknown)} "
            f"for kind {kind!r} (known: {sorted(known)})"
        )
    missing = [key for key in required if key not in config]
    if missing:
        raise OrchestrationError(
            f"step {step_name!r}: kind {kind!r} requires config key(s) {missing}"
        )
    resolved = dict(config)
    for key, default in optional.items():
        if key not in resolved:
            resolved[key] = workflow_seed if default is _SEED else default
    _validate_config(step_name, kind, resolved)
    return resolved


def _validate_config(step_name: str, kind: str, config: Dict[str, Any]) -> None:
    """Value-level checks beyond key strictness (fail at parse, not mid-run)."""

    def bad(message: str) -> "OrchestrationError":
        return OrchestrationError(f"step {step_name!r}: {message}")

    if kind in ("dataset", "train", "bench", "serve-smoke"):
        from repro.data.datasets import available_datasets

        if config["dataset"] not in available_datasets():
            raise bad(
                f"unknown dataset {config['dataset']!r}; "
                f"choose from {available_datasets()}"
            )
        if not isinstance(config["scale"], (int, float)) or config["scale"] <= 0:
            raise bad("scale must be a positive number")
    if kind == "train":
        from repro.eval.sweep import MODEL_CHOICES

        if config["model"] not in MODEL_CHOICES:
            raise bad(
                f"unknown model {config['model']!r}; choose from {MODEL_CHOICES}"
            )
        save = config["save"]
        if not isinstance(save, str) or ":" not in save:
            raise bad(
                f"save must be an explicit registry 'name:tag' (got {save!r}); "
                "auto tags would make reruns address different artifacts"
            )
        name, _, tag = save.partition(":")
        _check_name(name, "artifact name")
        if tag == "latest":
            raise bad("save tag 'latest' is reserved for resolution")
        _check_name(tag, "artifact tag")
    if kind == "sweep":
        from repro.eval.sweep import SweepError, SweepSpec

        if not isinstance(config["spec"], dict):
            raise bad("spec must be a mapping of SweepSpec fields")
        try:  # strict nested validation, then store the canonical form
            config["spec"] = SweepSpec.from_dict(config["spec"]).to_dict()
        except SweepError as error:
            raise bad(f"invalid sweep spec: {error}") from error
        if not isinstance(config["workers"], int) or config["workers"] < 1:
            raise bad("workers must be an integer >= 1")
        distributed = config["distributed"]
        if distributed is not None:
            if not isinstance(distributed, dict):
                raise bad(
                    "distributed must be a mapping like "
                    "{workers: 2, ttl_s: 30, poll_s: null}"
                )
            unknown = set(distributed) - {"workers", "ttl_s", "poll_s"}
            if unknown:
                raise bad(
                    f"unknown distributed key(s) {sorted(unknown)} "
                    "(known: ['poll_s', 'ttl_s', 'workers'])"
                )
            resolved = {
                "workers": distributed.get("workers", 2),
                "ttl_s": distributed.get("ttl_s", 30.0),
                "poll_s": distributed.get("poll_s"),
            }
            if not isinstance(resolved["workers"], int) or resolved["workers"] < 1:
                raise bad("distributed.workers must be an integer >= 1")
            if (
                not isinstance(resolved["ttl_s"], (int, float))
                or resolved["ttl_s"] <= 0
            ):
                raise bad("distributed.ttl_s must be a positive number")
            if resolved["poll_s"] is not None and (
                not isinstance(resolved["poll_s"], (int, float))
                or resolved["poll_s"] <= 0
            ):
                raise bad("distributed.poll_s must be a positive number or null")
            config["distributed"] = resolved
    if kind in ("bench", "serve-smoke"):
        if not isinstance(config["model"], str) or ":" not in config["model"]:
            raise bad(
                f"model must be an explicit registry 'name:tag' "
                f"(got {config['model']!r})"
            )
    if kind == "bench":
        engines = config["engines"]
        if not isinstance(engines, (list, tuple)) or not engines:
            raise bad("engines must be a non-empty list")
        for engine in engines:
            if engine not in _BENCH_ENGINES:
                raise bad(
                    f"unknown engine {engine!r}; choose from {_BENCH_ENGINES}"
                )
        config["engines"] = list(engines)
    if kind == "serve-smoke":
        if config["engine"] not in _BENCH_ENGINES:
            raise bad(
                f"unknown engine {config['engine']!r}; "
                f"choose from {_BENCH_ENGINES}"
            )
        for key in ("requests", "batch"):
            if not isinstance(config[key], int) or config[key] < 1:
                raise bad(f"{key} must be an integer >= 1")


@dataclasses.dataclass(frozen=True)
class WorkflowStep:
    """One validated workflow step.

    ``config`` is the *resolved* configuration (defaults applied), and
    ``config_hash`` its canonical hash -- the resume key recorded in the
    run database.
    """

    name: str
    kind: str
    needs: Tuple[str, ...]
    config: Dict[str, Any]

    @property
    def config_hash(self) -> str:
        return step_config_hash(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "needs": list(self.needs),
            "config": dict(self.config),
        }


def step_config_hash(step: WorkflowStep) -> str:
    """Canonical hash of a step: kind + sorted needs + resolved config.

    Stable across processes, platforms and key orderings (it is the
    SHA-256 of sorted-keys JSON, truncated like the sweep store keys).
    """
    return config_key(
        {
            "kind": step.kind,
            "needs": sorted(step.needs),
            "config": step.config,
        }
    )


@dataclasses.dataclass(frozen=True)
class WorkflowSpec:
    """A parsed, validated workflow: named steps forming a DAG."""

    name: str
    steps: Tuple[WorkflowStep, ...]
    seed: int = 0
    workdir: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    # ------------------------------------------------------------- access
    def step(self, name: str) -> WorkflowStep:
        for step in self.steps:
            if step.name == name:
                return step
        raise OrchestrationError(f"no step named {name!r} in workflow {self.name!r}")

    def step_hashes(self) -> Dict[str, str]:
        """``{step name: config hash}`` for every step."""
        return {step.name: step.config_hash for step in self.steps}

    @property
    def workflow_hash(self) -> str:
        """Hash over the whole workflow (name, seed and every step hash)."""
        return config_key(
            {"name": self.name, "seed": self.seed, "steps": self.step_hashes()}
        )

    def execution_order(self) -> List[WorkflowStep]:
        """Steps in a deterministic topological order (declaration-stable)."""
        return topological_order(self.steps)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "steps": [step.as_dict() for step in self.steps],
        }
        if self.workdir is not None:
            payload["workdir"] = self.workdir
        return payload

    # ------------------------------------------------------------ parsing
    @classmethod
    def from_dict(cls, payload: Any) -> "WorkflowSpec":
        if not isinstance(payload, dict):
            raise OrchestrationError(
                f"workflow must be a mapping, got {type(payload).__name__}"
            )
        known = {"name", "seed", "workdir", "steps"}
        unknown = set(payload) - known
        if unknown:
            raise OrchestrationError(
                f"unknown workflow key(s) {sorted(unknown)} (known: {sorted(known)})"
            )
        if "name" not in payload:
            raise OrchestrationError("workflow is missing the 'name' key")
        name = _check_name(payload["name"], "workflow name")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise OrchestrationError(f"workflow seed must be an integer, got {seed!r}")
        workdir = payload.get("workdir")
        if workdir is not None and not isinstance(workdir, str):
            raise OrchestrationError("workflow workdir must be a string path")
        raw_steps = payload.get("steps")
        if not isinstance(raw_steps, list) or not raw_steps:
            raise OrchestrationError("workflow needs a non-empty 'steps' list")
        steps = [_parse_step(entry, index, seed) for index, entry in enumerate(raw_steps)]
        names = [step.name for step in steps]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise OrchestrationError(f"duplicate step name(s): {duplicates}")
        for step in steps:
            for need in step.needs:
                if need not in names:
                    raise OrchestrationError(
                        f"step {step.name!r} needs unknown step {need!r}"
                    )
                if need == step.name:
                    raise OrchestrationError(
                        f"step {step.name!r} cannot need itself"
                    )
        spec = cls(name=name, steps=tuple(steps), seed=seed, workdir=workdir)
        spec.execution_order()  # raises on cyclic ``needs:`` graphs
        return spec


def _parse_step(entry: Any, index: int, workflow_seed: int) -> WorkflowStep:
    where = f"steps[{index}]"
    if not isinstance(entry, dict):
        raise OrchestrationError(f"{where} must be a mapping")
    known = {"name", "kind", "needs", "config"}
    unknown = set(entry) - known
    if unknown:
        raise OrchestrationError(
            f"{where}: unknown step key(s) {sorted(unknown)} (known: {sorted(known)})"
        )
    for key in ("name", "kind"):
        if key not in entry:
            raise OrchestrationError(f"{where} is missing the {key!r} key")
    name = _check_name(entry["name"], "step name")
    kind = entry["kind"]
    if kind not in STEP_KINDS:
        raise OrchestrationError(
            f"step {name!r}: unknown kind {kind!r}; choose from {STEP_KINDS}"
        )
    needs = entry.get("needs", [])
    if not isinstance(needs, list) or not all(isinstance(n, str) for n in needs):
        raise OrchestrationError(f"step {name!r}: needs must be a list of step names")
    config = entry.get("config", {})
    if not isinstance(config, dict):
        raise OrchestrationError(f"step {name!r}: config must be a mapping")
    resolved = _resolve_config(name, kind, dict(config), workflow_seed)
    return WorkflowStep(name=name, kind=kind, needs=tuple(needs), config=resolved)


def topological_order(steps: Sequence[WorkflowStep]) -> List[WorkflowStep]:
    """Kahn's algorithm with a deterministic tie-break (declaration order).

    Raises
    ------
    OrchestrationError
        On a cyclic ``needs:`` graph, with the cycle spelled out.
    """
    by_name = {step.name: step for step in steps}
    indegree = {step.name: len(set(step.needs)) for step in steps}
    dependents: Dict[str, List[str]] = {step.name: [] for step in steps}
    for step in steps:
        for need in set(step.needs):
            dependents[need].append(step.name)
    ready = [step.name for step in steps if indegree[step.name] == 0]
    order: List[WorkflowStep] = []
    while ready:
        current = ready.pop(0)
        order.append(by_name[current])
        for child in dependents[current]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if len(order) < len(steps):
        raise OrchestrationError(
            "cyclic `needs:` dependency: " + _describe_cycle(steps, indegree)
        )
    return order


def _describe_cycle(
    steps: Sequence[WorkflowStep], indegree: Dict[str, int]
) -> str:
    """Walk one cycle among the unresolved steps for the error message."""
    stuck = {name for name, degree in indegree.items() if degree > 0}
    by_name = {step.name: step for step in steps}
    start = sorted(stuck)[0]
    path = [start]
    seen = {start}
    current = start
    while True:
        nxt = next(
            (need for need in by_name[current].needs if need in stuck), None
        )
        if nxt is None:  # pragma: no cover - cycles always have a next hop
            break
        if nxt in seen:
            cycle = path[path.index(nxt):] + [nxt]
            return " -> ".join(cycle)
        path.append(nxt)
        seen.add(nxt)
        current = nxt
    return " -> ".join(path)  # pragma: no cover - defensive fallback


# --------------------------------------------------------------------------
# File parsing
# --------------------------------------------------------------------------
def parse_workflow(path) -> WorkflowSpec:
    """Parse a workflow file (YAML, or JSON for ``.json``) into a spec.

    Raises
    ------
    OrchestrationError
        On unreadable files, syntax errors, or any schema violation.
    """
    file_path = Path(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise OrchestrationError(f"cannot read workflow file: {error}") from error
    if file_path.suffix.lower() == ".json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise OrchestrationError(
                f"{file_path}: invalid JSON: {error}"
            ) from error
    else:
        if _yaml is None:  # pragma: no cover - exercised only without pyyaml
            raise OrchestrationError(
                "pyyaml is not installed; install it or use a .json workflow file"
            )
        try:
            payload = _yaml.safe_load(text)
        except _yaml.YAMLError as error:
            raise OrchestrationError(
                f"{file_path}: invalid YAML: {error}"
            ) from error
    return WorkflowSpec.from_dict(payload)
