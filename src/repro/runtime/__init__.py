"""Serving runtime: batched pipelines, micro-batching daemon, load testing.

The :mod:`repro.runtime` package turns the trained models of
:mod:`repro.core` and :mod:`repro.baselines` into a deployable serving
path, layered bottom-up:

* :class:`InferencePipeline` -- chunks arbitrarily large query batches,
  keeps encoder/AM state warm, optionally shards chunks across a thread
  pool, and reports throughput statistics;
* :class:`BatchScheduler` -- coalesces concurrent requests into
  micro-batches behind a bounded queue with deadline/backpressure
  admission control, fanning results back out through futures;
* :class:`ModelPool` / :class:`ServedModel` -- hosts multiple
  registry-addressed models concurrently with per-model stats and atomic
  zero-downtime hot-swap;
* :class:`ModelServer` -- the ``repro serve`` stdlib-HTTP daemon over a
  pool (``/predict``, ``/models/<name>/predict``, ``/reload``,
  ``/healthz``, ``/stats``, ``/manifest``);
* :class:`WorkerSupervisor` / :class:`WorkerConfig` -- the
  ``repro serve --workers N`` prefork scale-out layer: N worker processes
  over one shared listening socket and memory-mapped checkpoints, with
  crash respawn, graceful drain, aggregated ``/stats`` and fanned-out
  ``/reload``;
* :func:`run_load` / :class:`LoadReport` -- the ``repro loadtest``
  open/closed-loop load generator reporting QPS and p50/p95/p99 latency.

Combined with the bit-packed similarity engine (:mod:`repro.hdc.packed`)
this is the "serves heavy traffic, as fast as the hardware allows"
deployment story of the roadmap -- and every layer preserves predictions
bit-exactly.
"""

from repro.runtime.loadtest import LoadReport, run_load
from repro.runtime.pipeline import (
    InferencePipeline,
    PipelineResult,
    PipelineStats,
)
from repro.runtime.pool import (
    ModelPool,
    ModelStats,
    PoolError,
    ServedModel,
    UnknownModelError,
)
from repro.runtime.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    QueueFullError,
    SchedulerClosedError,
    SchedulerError,
    SchedulerStats,
)
from repro.runtime.server import ModelServer, ServerStats
from repro.runtime.workers import (
    WorkerConfig,
    WorkerSupervisor,
    fork_available,
    reuseport_available,
)

__all__ = [
    "BatchScheduler",
    "DeadlineExceededError",
    "InferencePipeline",
    "LoadReport",
    "ModelPool",
    "ModelServer",
    "ModelStats",
    "PipelineResult",
    "PipelineStats",
    "PoolError",
    "QueueFullError",
    "run_load",
    "SchedulerClosedError",
    "SchedulerError",
    "SchedulerStats",
    "ServedModel",
    "ServerStats",
    "UnknownModelError",
    "WorkerConfig",
    "WorkerSupervisor",
    "fork_available",
    "reuseport_available",
]
