"""Serving runtime: batched, optionally parallel inference pipelines.

The :mod:`repro.runtime` package turns the trained models of
:mod:`repro.core` and :mod:`repro.baselines` into a deployable serving
path: :class:`InferencePipeline` chunks arbitrarily large query batches,
keeps encoder/AM state warm across chunks, optionally shards chunks
across a thread pool, and reports throughput statistics.  Combined with
the bit-packed similarity engine (:mod:`repro.hdc.packed`) this is the
"runs as fast as the hardware allows" deployment story of the roadmap.
"""

from repro.runtime.pipeline import (
    InferencePipeline,
    PipelineResult,
    PipelineStats,
)

__all__ = [
    "InferencePipeline",
    "PipelineResult",
    "PipelineStats",
]
