"""Serving runtime: batched inference pipelines and the serve daemon.

The :mod:`repro.runtime` package turns the trained models of
:mod:`repro.core` and :mod:`repro.baselines` into a deployable serving
path: :class:`InferencePipeline` chunks arbitrarily large query batches,
keeps encoder/AM state warm across chunks, optionally shards chunks
across a thread pool, and reports throughput statistics;
:class:`ModelServer` keeps a checkpointed model resident behind a
stdlib-only JSON-over-HTTP daemon (``repro serve``) so production-style
traffic is answered by a warm model instead of a retrain.  Combined with
the bit-packed similarity engine (:mod:`repro.hdc.packed`) this is the
"runs as fast as the hardware allows" deployment story of the roadmap.
"""

from repro.runtime.pipeline import (
    InferencePipeline,
    PipelineResult,
    PipelineStats,
)
from repro.runtime.server import ModelServer, ServerStats

__all__ = [
    "InferencePipeline",
    "PipelineResult",
    "PipelineStats",
    "ModelServer",
    "ServerStats",
]
