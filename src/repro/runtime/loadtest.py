"""HTTP load generation for the serving daemon (``repro loadtest``).

A serving runtime is only as good as its measured tail latency, so this
module ships the measurement tool next to the server: a stdlib-only
(``urllib`` + threads) load generator that drives any
:class:`repro.runtime.server.ModelServer`-compatible endpoint and reports
the numbers capacity planning actually needs -- achieved QPS and the
p50/p95/p99 latency quantiles, plus per-status error counts.

Two standard modes:

* **closed loop** (default) -- ``concurrency`` workers each keep exactly
  one request in flight, back to back.  Measures the server's saturation
  throughput; latency is response time under full load.
* **open loop** -- requests start on a fixed global schedule of ``rate``
  requests/second regardless of completions (workers pace themselves
  against a shared arrival clock).  Measures behaviour under an offered
  load, surfacing queueing delay and 429 shedding that a closed loop
  hides (coordinated omission).

Feature payloads are synthesized once from the server's own
``/healthz``/``/manifest`` metadata (``num_features``), so the client
needs no dataset -- pointing ``repro loadtest`` at any live server just
works.  Results come back as a :class:`LoadReport`;
``benchmarks/bench_serving_load.py`` uses the same class in-process to
gate the batched-vs-unbatched speedup.
"""

from __future__ import annotations

import hashlib
import json
import math
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.runtime.pipeline import MIN_MEASURABLE_SECONDS

#: Loop modes accepted by :func:`run_load`.
MODES = ("closed", "open")

#: Per-request socket timeout (seconds).
REQUEST_TIMEOUT_S = 30.0


@dataclass
class LoadReport:
    """Aggregated result of one load-generation run.

    Latencies are wall-clock seconds per request (submit to decoded
    response).  ``errors_by_status`` counts non-200 responses (429/503
    shed work, 4xx/5xx failures); transport-level failures count under
    status ``0``.
    """

    mode: str
    concurrency: int
    batch_size: int
    duration_seconds: float
    requests: int = 0
    queries: int = 0
    errors: int = 0
    errors_by_status: Dict[int, int] = field(default_factory=dict)
    latencies_seconds: List[float] = field(default_factory=list)

    @property
    def successes(self) -> int:
        return self.requests - self.errors

    @property
    def qps(self) -> float:
        """Successfully served queries per wall-clock second.

        The elapsed time is clamped to the same 1 ns floor as
        :class:`repro.runtime.pipeline.PipelineStats`, so a
        sub-clock-resolution window (tiny ``--smoke`` runs) reports a
        huge-but-finite rate instead of ``inf``.
        """
        if self.duration_seconds <= 0:
            return 0.0
        return self.queries / max(self.duration_seconds, MIN_MEASURABLE_SECONDS)

    @property
    def request_rate(self) -> float:
        """Successful requests per wall-clock second (same 1 ns clamp)."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.successes / max(self.duration_seconds, MIN_MEASURABLE_SECONDS)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile in seconds (0 when empty)."""
        if not self.latencies_seconds:
            return 0.0
        ordered = sorted(self.latencies_seconds)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def as_dict(self) -> Dict[str, Any]:
        """Flat summary row (the CLI table / benchmark record)."""
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "batch": self.batch_size,
            "duration_s": self.duration_seconds,
            "requests": self.requests,
            "queries": self.queries,
            "errors": self.errors,
            "errors_by_status": {
                str(status): count
                for status, count in sorted(self.errors_by_status.items())
            },
            "qps": self.qps,
            "requests_per_s": self.request_rate,
            "p50_ms": 1000.0 * self.latency_percentile(0.50),
            "p95_ms": 1000.0 * self.latency_percentile(0.95),
            "p99_ms": 1000.0 * self.latency_percentile(0.99),
        }


class _Collector:
    """Thread-safe accumulation of per-request outcomes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.queries = 0
        self.errors = 0
        self.errors_by_status: Dict[int, int] = {}
        self.latencies: List[float] = []

    def success(self, queries: int, seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self.queries += int(queries)
            self.latencies.append(float(seconds))

    def failure(self, status: int) -> None:
        with self._lock:
            self.requests += 1
            self.errors += 1
            self.errors_by_status[int(status)] = (
                self.errors_by_status.get(int(status), 0) + 1
            )


def _get_json(url: str, timeout: float = REQUEST_TIMEOUT_S) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_server_stats(url: str) -> Dict[str, Any]:
    """``GET /stats`` of a live server, decoded.

    Single-process servers return their own counters; a prefork pool
    (``repro serve --workers N``) returns the cluster-merged view with
    per-worker payloads under ``"workers"`` -- which is how
    ``repro loadtest`` prints per-worker attribution after a run.
    """
    return _get_json(f"{url.rstrip('/')}/stats")


def server_num_features(url: str, model: Optional[str] = None) -> int:
    """Discover the feature width a live server expects.

    Uses ``/models/<model>/manifest`` for a named model, ``/healthz`` for
    the default one.
    """
    if model is not None:
        manifest = _get_json(f"{url}/models/{model}/manifest")
        value = manifest.get("num_features")
    else:
        value = _get_json(f"{url}/healthz").get("num_features")
    if not value:
        raise RuntimeError(
            f"server at {url} does not advertise num_features; pass the "
            "feature width explicitly"
        )
    return int(value)


def synthesize_features(
    num_features: int, batch_size: int, pool: int = 64, seed: int = 0
) -> List[List[List[float]]]:
    """Pre-serialize a pool of random feature batches to send.

    Generating payloads up front keeps numpy work out of the timed loop,
    so measured latency is the server's, not the client's.
    """
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=(batch_size, num_features)).round(4).tolist()
        for _ in range(pool)
    ]


def prediction_digest(
    url: str,
    num_features: int,
    batch_size: int = 1,
    count: int = 8,
    model: Optional[str] = None,
    seed: int = 0,
    timeout: float = REQUEST_TIMEOUT_S,
) -> str:
    """Truncated SHA-256 over the labels a server predicts for a fixed pool.

    Sends the first ``count`` payloads of :func:`synthesize_features`
    (same ``seed`` => same payloads on every call and every host) through
    ``POST /predict`` and hashes the returned label lists in order.  Two
    servers hosting bit-identical models therefore produce the same
    digest -- the "bit-exact predictions" check the serving-load sweep
    cell and its differential test share.  Raises on any non-200.
    """
    endpoint = (
        f"{url.rstrip('/')}/models/{urllib.parse.quote(model)}/predict"
        if model is not None
        else f"{url.rstrip('/')}/predict"
    )
    payloads = synthesize_features(num_features, batch_size, pool=count, seed=seed)
    labels: List[List[int]] = []
    for features in payloads:
        request = urllib.request.Request(
            endpoint,
            data=json.dumps({"features": features}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=timeout) as response:
            reply = json.loads(response.read().decode("utf-8"))
        labels.append([int(label) for label in reply["labels"]])
    canonical = json.dumps(labels, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()[:16]


def stream_feedback(
    url: str,
    features,
    labels,
    batch_size: int = 64,
    model: Optional[str] = None,
    retries: int = 0,
    timeout: float = REQUEST_TIMEOUT_S,
) -> Dict[str, Any]:
    """Stream labelled samples into a server's ``POST /feedback``.

    The client half of the continual-learning loop
    (:mod:`repro.runtime.online`): slices ``features`` / ``labels`` into
    ``batch_size``-row requests and POSTs them in order.  A sample only
    counts as ``acked`` when its batch got a 200 (the server's
    durably-buffered acknowledgement); non-200 responses count under
    their status and transport-level failures (e.g. the connection dying
    into a SIGKILLed prefork worker) under status ``0``.  ``retries``
    re-sends a failed batch -- safe against double-counting worries for
    accuracy (folding a batch twice is idempotent-enough for HDC
    updates) and exactly what a chaos-tolerant client should do, since a
    failed batch was never acknowledged.

    Returns
    -------
    dict
        ``{"requests", "acked", "errors", "errors_by_status"}`` --
        ``acked`` in samples, the rest per request.
    """
    batch = np.asarray(features, dtype=np.float64)
    targets = np.asarray(labels)
    if batch.ndim != 2 or batch.shape[0] != targets.shape[0]:
        raise ValueError("features must be (n, f) with one label per row")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    endpoint = (
        f"{url.rstrip('/')}/models/{urllib.parse.quote(model)}/feedback"
        if model is not None
        else f"{url.rstrip('/')}/feedback"
    )
    requests = acked = errors = 0
    errors_by_status: Dict[int, int] = {}
    for start in range(0, batch.shape[0], batch_size):
        body = json.dumps(
            {
                "features": batch[start : start + batch_size].tolist(),
                "labels": [int(label) for label in targets[start : start + batch_size]],
            }
        ).encode("utf-8")
        for attempt in range(retries + 1):
            request = urllib.request.Request(
                endpoint, data=body, headers={"Content-Type": "application/json"}
            )
            requests += 1
            try:
                with urllib.request.urlopen(request, timeout=timeout) as response:
                    reply = json.loads(response.read().decode("utf-8"))
                acked += int(reply.get("accepted", 0))
                break
            except urllib.error.HTTPError as error:
                status = int(error.code)
                error.read()
            except (urllib.error.URLError, OSError, socket.timeout):
                status = 0
            errors += 1
            errors_by_status[status] = errors_by_status.get(status, 0) + 1
            if attempt < retries:
                time.sleep(0.05 * (attempt + 1))
    return {
        "requests": requests,
        "acked": acked,
        "errors": errors,
        "errors_by_status": errors_by_status,
    }


def run_load(
    url: str,
    num_features: Optional[int] = None,
    model: Optional[str] = None,
    mode: str = "closed",
    concurrency: int = 8,
    duration_seconds: float = 5.0,
    batch_size: int = 1,
    rate: Optional[float] = None,
    deadline_ms: Optional[float] = None,
    seed: int = 0,
    total_requests: Optional[int] = None,
) -> LoadReport:
    """Drive a live server and measure throughput + latency quantiles.

    Parameters
    ----------
    url:
        Server base URL (e.g. ``http://127.0.0.1:8000``).
    num_features:
        Feature width of the payloads; discovered from the server when
        omitted.
    model:
        Optional routing key -- requests go to ``/models/<model>/predict``.
    mode:
        ``"closed"`` (back-to-back per worker) or ``"open"`` (fixed
        arrival schedule of ``rate`` requests/second across workers).
    concurrency:
        Worker thread count (the closed-loop in-flight bound).
    duration_seconds:
        Wall-clock measurement window.
    batch_size:
        Rows per request.
    rate:
        Offered requests/second (open loop only; required there).
    deadline_ms:
        Optional per-request deadline forwarded to the server.
    seed:
        Payload-synthesis seed.
    total_requests:
        When set, fire exactly this many requests (split over the workers
        by arrival index) instead of running for ``duration_seconds`` --
        the deterministic mode serving-load sweep cells use, so request
        and error *counts* are reproducible even though latencies are
        not.  ``duration_seconds`` is ignored in this mode; each request
        is still bounded by the per-request socket timeout.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if total_requests is not None and total_requests <= 0:
        raise ValueError(f"total_requests must be positive, got {total_requests}")
    if duration_seconds <= 0:
        raise ValueError(f"duration_seconds must be positive, got {duration_seconds}")
    if mode == "open":
        if rate is None or rate <= 0:
            raise ValueError("open-loop mode requires a positive rate")
    url = url.rstrip("/")
    if num_features is None:
        num_features = server_num_features(url, model=model)
    payload_pool = synthesize_features(num_features, batch_size, seed=seed)
    bodies = []
    for features in payload_pool:
        body: Dict[str, Any] = {"features": features}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        bodies.append(json.dumps(body).encode("utf-8"))
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme != "http" or not parsed.hostname:
        raise ValueError(f"expected an http://host:port URL, got {url!r}")
    netloc = (parsed.hostname, parsed.port or 80)
    target = f"/models/{model}/predict" if model is not None else "/predict"
    # Pre-serialize the *entire* HTTP request (headers + JSON body) per
    # payload, the way serious load generators do: the timed loop is one
    # sendall() plus a minimal response read, so the measurement bills
    # the server, not a client-side HTTP stack.
    requests_bytes = [
        (
            f"POST {target} HTTP/1.1\r\n"
            f"Host: {parsed.hostname}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        + body
        for body in bodies
    ]

    collector = _Collector()
    start_barrier = threading.Barrier(concurrency + 1)
    # Open loop: one shared arrival counter; worker i serves arrivals
    # i, i+concurrency, i+2*concurrency, ... at their scheduled times.
    interval = (1.0 / rate) if mode == "open" and rate else 0.0

    class _Client:
        """One worker's persistent raw keep-alive connection.

        Reconnects transparently when the server closes the socket, so
        measured latency reflects request service, not per-request TCP
        handshakes and server thread spawns.
        """

        def __init__(self) -> None:
            self.sock: Optional[socket.socket] = None
            self.buffer = b""

        def _connect(self) -> socket.socket:
            if self.sock is None:
                self.sock = socket.create_connection(netloc, timeout=REQUEST_TIMEOUT_S)
                # Request writes must not queue behind delayed ACKs.
                self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self.buffer = b""
            return self.sock

        def drop(self) -> None:
            if self.sock is not None:
                self.sock.close()
                self.sock = None
            self.buffer = b""

        def _read_response(self, sock: socket.socket) -> int:
            """Read one response off the wire; returns the status code.

            Minimal HTTP/1.1 parsing: status line + Content-Length, then
            drain exactly that many body bytes (the server always sends
            an exact Content-Length; responses are never chunked).
            """
            while b"\r\n\r\n" not in self.buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    raise ConnectionError("server closed mid-response")
                self.buffer += chunk
            head, _, rest = self.buffer.partition(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1])
            length = 0
            for line in head.split(b"\r\n")[1:]:
                name, _, value = line.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value.strip())
                    break
            while len(rest) < length:
                chunk = sock.recv(65536)
                if not chunk:
                    raise ConnectionError("server closed mid-body")
                rest += chunk
            self.buffer = rest[length:]
            return status

        def fire(self, request: bytes) -> None:
            started = time.perf_counter()
            try:
                sock = self._connect()
                sock.sendall(request)
                status = self._read_response(sock)
                if status == 200:
                    collector.success(batch_size, time.perf_counter() - started)
                else:
                    collector.failure(status)
            except (OSError, TimeoutError, ValueError, IndexError):
                collector.failure(0)
                self.drop()

    def closed_worker(index: int) -> None:
        client = _Client()
        start_barrier.wait()
        try:
            step = index
            while True:
                if total_requests is not None:
                    if step >= total_requests:
                        return
                elif time.monotonic() >= stop_monotonic:
                    return
                client.fire(requests_bytes[step % len(requests_bytes)])
                step += concurrency
        finally:
            client.drop()

    def open_worker(index: int) -> None:
        client = _Client()
        start_barrier.wait()
        try:
            arrival = index
            while True:
                if total_requests is not None and arrival >= total_requests:
                    return
                due = open_start + arrival * interval
                now = time.monotonic()
                if total_requests is None and due >= stop_monotonic:
                    return
                if due > now:
                    time.sleep(due - now)
                client.fire(requests_bytes[arrival % len(requests_bytes)])
                arrival += concurrency
        finally:
            client.drop()

    worker = closed_worker if mode == "closed" else open_worker
    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    # The clocks are set immediately before the barrier releases the
    # workers, so slow thread startup never eats into the window.
    open_start = time.monotonic()
    stop_monotonic = open_start + duration_seconds
    measure_start = time.perf_counter()
    start_barrier.wait()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - measure_start

    return LoadReport(
        mode=mode,
        concurrency=concurrency,
        batch_size=batch_size,
        duration_seconds=elapsed,
        requests=collector.requests,
        queries=collector.queries,
        errors=collector.errors,
        errors_by_status=dict(collector.errors_by_status),
        latencies_seconds=collector.latencies,
    )
