"""The continual-learning serving loop: feedback, shadow training, promotion.

``core/online.py`` gives MEMHD incremental updates and PR 4/6 gave the
runtime zero-downtime hot-swap; this module composes them into a service
lifecycle so a deployed model recovers from distribution drift without
ever taking bad weights to traffic:

1. **Feedback ingestion** -- ``POST /feedback`` bodies (feature rows +
   true labels) land in a bounded, thread-safe :class:`FeedbackBuffer`.
   A deterministic stride routes every Nth sample into a rolling
   **holdout reservoir** instead of the training buffer, so the gate is
   always scored on recent, never-trained-on data from the *current*
   distribution.
2. **Shadow training** -- a background thread folds buffered samples
   into a **shadow copy** of the served model via
   :meth:`repro.core.online.OnlineMEMHD.partial_fit`.  The served model
   is never touched in place (prefork workers keep reading their
   memory-mapped checkpoint pages untouched).
3. **Gated promotion** -- after each fold the shadow and the currently
   served model are both evaluated on the holdout reservoir (reusing
   :func:`repro.eval.metrics.accuracy`); every evaluation appends a
   drift record to a PR 3 :class:`repro.eval.store.ResultStore`.  Only a
   shadow that clears ``promote_threshold`` *and* beats the live model
   by ``promote_margin`` is saved to the artifact registry as a
   versioned **incremental checkpoint** (manifest ``lineage`` pointing
   at its parent ``name:tag``) and hot-swapped into traffic through the
   injected promote callback (``POST /reload`` fan-out).  A failed
   shadow eval therefore never reaches traffic, and any promotion can be
   rolled back with ``POST /reload {"spec": "name:old-tag"}``.
4. **Graceful drain** -- :meth:`OnlineLearner.stop` folds whatever is
   still buffered and, when any folded feedback is not yet persisted,
   writes a final (unpromoted) incremental checkpoint -- acknowledged
   feedback is never lost on graceful drain.

The learner is transport-agnostic: :class:`repro.runtime.server.ModelServer`
owns one directly in single-process mode, while the prefork
:class:`repro.runtime.workers.WorkerSupervisor` owns the single learner
for the whole pool and workers forward ``/feedback`` over their
escalation channel (the 200 ack is only sent once the supervisor has
buffered the samples, so a SIGKILLed worker cannot lose acknowledged
feedback).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

# NOTE: repro.core / repro.io / repro.eval are imported lazily inside the
# functions below -- repro.core.model imports repro.runtime.pipeline, so a
# module-level import here would be circular (runtime/__init__ pulls in
# the server, which pulls in this module).

#: Default name of the drift-record JSONL written next to the artifact.
DRIFT_STORE_FILENAME = "online-drift.jsonl"


class FeedbackError(Exception):
    """Base class of feedback-submission failures."""


class BufferFullError(FeedbackError):
    """The bounded update buffer cannot admit the batch (backpressure)."""


class LearnerClosedError(FeedbackError):
    """Feedback arrived after the learner began shutting down."""


def feedback_error_status(error: Exception) -> int:
    """HTTP status for a feedback-submission failure (shared by the
    single-process server and the prefork escalation handler)."""
    if isinstance(error, BufferFullError):
        return 429
    if isinstance(error, LearnerClosedError):
        return 503
    if isinstance(error, ValueError):
        return 400
    return 500


@dataclasses.dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the continual-learning loop (``repro serve --online``).

    Attributes
    ----------
    promote_threshold:
        Minimum holdout accuracy the shadow must reach to be promoted.
    promote_margin:
        How much the shadow must beat the *live* model by on the same
        holdout slice.  ``0.0`` promotes on ties -- raise it to make
        promotions stickier under a noisy holdout.
    min_feedback:
        Buffered training samples that trigger a fold (a graceful drain
        folds whatever is left regardless).
    interval_s:
        Cadence of the background trainer's buffer checks.
    buffer_size:
        Bound of the update buffer; beyond it ``POST /feedback`` sheds
        load with HTTP 429.
    eval_fraction:
        Share of incoming feedback withheld from training into the
        holdout reservoir (deterministic stride: every ``round(1/f)``-th
        sample).  ``0`` disables the gate -- the shadow keeps folding but
        is never promoted.
    eval_window:
        Rolling bound of the holdout reservoir (old samples fall out, so
        the gate tracks the current distribution).
    fold_chunk:
        Rows per :meth:`~repro.core.online.OnlineMEMHD.partial_fit` call
        when folding a drained buffer.
    learning_rate:
        Step size of the streaming updates; defaults to the model
        config's training rate (often too timid for drift recovery --
        the drift tests use ``0.5``).
    checkpoint_name:
        Registry name for incremental checkpoints; defaults to the served
        artifact's name (new tags are auto-assigned ``v2``, ``v3``, ...).
    results_path:
        Drift-record JSONL path; defaults to ``online-drift.jsonl`` next
        to the artifact's checkpoints inside the store.
    seed:
        Seed of the learner's internal RNG (class-addition clustering).
    """

    promote_threshold: float = 0.0
    promote_margin: float = 0.0
    min_feedback: int = 32
    interval_s: float = 1.0
    buffer_size: int = 4096
    eval_fraction: float = 0.25
    eval_window: int = 256
    fold_chunk: int = 64
    learning_rate: Optional[float] = None
    checkpoint_name: Optional[str] = None
    results_path: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if self.min_feedback < 1:
            raise ValueError("min_feedback must be >= 1")
        if not 0.0 <= self.eval_fraction < 1.0:
            raise ValueError("eval_fraction must be in [0, 1)")
        if self.eval_window < 1:
            raise ValueError("eval_window must be >= 1")
        if self.fold_chunk < 1:
            raise ValueError("fold_chunk must be >= 1")


class FeedbackBuffer:
    """Bounded, thread-safe FIFO of labelled feedback samples.

    Admission is all-or-nothing per batch: either every row of a
    ``POST /feedback`` body fits, or the whole request is rejected with
    :class:`BufferFullError` -- a partially-buffered batch could never be
    honestly acknowledged.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._items: deque = deque()
        self._lock = threading.Lock()

    def add(self, rows: List[Tuple[np.ndarray, int]]) -> int:
        """Admit a batch of ``(feature_row, label)`` pairs; returns depth."""
        with self._lock:
            if len(self._items) + len(rows) > self.capacity:
                raise BufferFullError(
                    f"feedback buffer is full ({len(self._items)}/"
                    f"{self.capacity} buffered); retry after the trainer "
                    "folds the backlog"
                )
            self._items.extend(rows)
            return len(self._items)

    def drain(self) -> List[Tuple[np.ndarray, int]]:
        """Remove and return every buffered sample (FIFO order)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


def _clone_model(model: MEMHDModel) -> MEMHDModel:
    """Deep private copy of a fitted model (checkpoint round-trip).

    Arrays are materialized with ``np.array``, so the clone is safe to
    update in place even when the source is a read-only memory-mapped
    checkpoint view.
    """
    from repro.core.model import MEMHDModel
    from repro.io.checkpoint import _encoder_meta

    arrays = {
        name: np.array(value) for name, value in model.checkpoint_arrays().items()
    }
    return MEMHDModel.from_checkpoint(
        model.num_features,
        model.num_classes,
        model.config,
        arrays,
        encoder_meta=_encoder_meta(model),
    )


class OnlineLearner:
    """Owns the feedback buffer, the shadow model and the promotion gate.

    Parameters
    ----------
    registry:
        :class:`repro.io.registry.ArtifactRegistry` the served artifact
        lives in (and incremental checkpoints are written to).
    spec:
        Resolved ``name:tag`` of the artifact currently in traffic.
    config:
        The :class:`OnlineConfig` knobs.
    promote:
        Callback invoked with a ``/reload`` payload
        (``{"model": key, "spec": "name:tag"}``) to take a promoted
        checkpoint to traffic -- ``ModelServer.reload_payload`` in
        single-process mode, ``WorkerSupervisor.reload`` under prefork.
        A raising callback counts as a failed promotion and the previous
        version stays in traffic.
    model_key:
        Routing key of the served model feedback must address.
    """

    def __init__(
        self,
        registry,
        spec: str,
        config: OnlineConfig,
        promote: Callable[[Dict[str, Any]], Any],
        model_key: str = "default",
    ) -> None:
        from repro.core.model import MEMHDModel
        from repro.core.online import OnlineMEMHD
        from repro.eval.store import ResultStore

        self.config = config
        self.registry = registry
        self.model_key = model_key
        self._promote_cb = promote
        model, manifest, resolved = registry.load_with_manifest(spec, mapped=False)
        if not isinstance(model, MEMHDModel):
            raise ValueError(
                f"online learning requires a MEMHD checkpoint; {resolved} "
                f"holds {type(model).__name__}"
            )
        self.current_spec = resolved
        self._parent_dataset = manifest.dataset
        self._live = _clone_model(model)
        self._shadow = _clone_model(model)
        self._online = OnlineMEMHD(
            self._shadow,
            learning_rate=config.learning_rate,
            rng=np.random.default_rng(config.seed),
        )
        self.checkpoint_name = config.checkpoint_name or resolved.split(":", 1)[0]
        results_path = config.results_path or str(
            registry.root / self.checkpoint_name / DRIFT_STORE_FILENAME
        )
        self.results = ResultStore(results_path)
        self.buffer = FeedbackBuffer(config.buffer_size)
        self._eval_reservoir: deque = deque(maxlen=config.eval_window)
        stride = round(1.0 / config.eval_fraction) if config.eval_fraction > 0 else 0
        self._eval_stride = int(stride)
        self._item_seq = 0
        self._submit_lock = threading.Lock()
        self._step_lock = threading.Lock()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Counters (all mutated under one of the two locks above).
        self._requests = 0
        self._accepted = 0
        self._rejected = 0
        self._eval_held = 0
        self._folded = 0
        self._updates = 0
        self._rounds = 0
        self._gate_passes = 0
        self._gate_failures = 0
        self._promotions = 0
        self._promote_failures = 0
        self._checkpoints = 0
        self._unpersisted = 0
        self._last_shadow_accuracy: Optional[float] = None
        self._last_live_accuracy: Optional[float] = None
        self._last_promoted_spec: Optional[str] = None
        self._last_promoted_unix: Optional[float] = None

    # ------------------------------------------------------------- ingestion
    @property
    def num_features(self) -> int:
        return int(self._live.num_features)

    @property
    def num_classes(self) -> int:
        return int(self._live.num_classes)

    def submit(self, features, labels) -> Dict[str, Any]:
        """Admit one feedback batch; the 200-ack payload on success.

        Validation failures raise ``ValueError`` (HTTP 400), a full
        buffer raises :class:`BufferFullError` (429), and submission
        after shutdown began raises :class:`LearnerClosedError` (503).
        Admission is atomic: once this returns, every row is either in
        the training buffer or the holdout reservoir, so acknowledged
        feedback survives anything short of killing the learner's own
        process.
        """
        batch = np.asarray(features, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[0] == 0:
            raise ValueError(
                f"features must be a non-empty (n, f) batch, got shape "
                f"{batch.shape}"
            )
        if batch.shape[1] != self.num_features:
            raise ValueError(
                f"features have {batch.shape[1]} columns but the online "
                f"model expects {self.num_features}"
            )
        try:
            y = np.asarray(labels, dtype=np.int64)
        except (TypeError, ValueError) as error:
            raise ValueError(f"labels are not an integer array: {error}") from error
        if y.ndim == 0:
            y = y[None]
        if y.ndim != 1 or y.shape[0] != batch.shape[0]:
            raise ValueError(
                f"labels must be 1-D with one entry per feature row "
                f"({batch.shape[0]}), got shape {y.shape}"
            )
        if np.any(y < 0) or np.any(y >= self.num_classes):
            raise ValueError(
                f"labels must lie in [0, {self.num_classes}); novel classes "
                "need an add_class() deployment, not /feedback"
            )
        with self._submit_lock:
            if self._closed:
                raise LearnerClosedError("online learner is shutting down")
            self._requests += 1
            train_rows: List[Tuple[np.ndarray, int]] = []
            eval_rows: List[Tuple[np.ndarray, int]] = []
            seq = self._item_seq
            for row, label in zip(batch, y):
                seq += 1
                if self._eval_stride and seq % self._eval_stride == 0:
                    eval_rows.append((row, int(label)))
                else:
                    train_rows.append((row, int(label)))
            try:
                depth = self.buffer.add(train_rows) if train_rows else len(self.buffer)
            except BufferFullError:
                self._rejected += int(batch.shape[0])
                raise
            # Only after the training rows are safely buffered does the
            # batch count as accepted (and its holdout share withheld).
            self._item_seq = seq
            self._eval_reservoir.extend(eval_rows)
            self._accepted += int(batch.shape[0])
            self._eval_held += len(eval_rows)
            return {
                "status": "buffered",
                "model": self.model_key,
                "accepted": int(batch.shape[0]),
                "held_out": len(eval_rows),
                "buffered": int(depth),
            }

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "OnlineLearner":
        """Start the background trainer thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="online-learner"
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.step()
            except Exception:
                # The trainer must outlive a bad fold (e.g. a transient
                # registry write failure); counters and drift records
                # carry the evidence.
                continue

    def stop(self, drain: bool = True) -> None:
        """Stop the trainer; ``drain=True`` folds + persists the backlog.

        The drain guarantee: every acknowledged feedback sample has
        either been folded into a *persisted* checkpoint (promoted or
        not) or was withheld into the holdout reservoir by design.
        Idempotent.
        """
        with self._submit_lock:
            already_closed = self._closed
            self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if already_closed:
            return
        if drain:
            while len(self.buffer):
                self.step(force=True)
            with self._step_lock:
                if self._unpersisted:
                    self._save_checkpoint(kind="drain-flush")

    # -------------------------------------------------------------- training
    def step(self, force: bool = False) -> Optional[Dict[str, Any]]:
        """One fold + gate + (maybe) promote cycle; ``None`` when idle.

        ``force`` folds whatever is buffered even below ``min_feedback``
        (the drain path).  Serialized with itself and with :meth:`stop`.
        """
        with self._step_lock:
            if len(self.buffer) < (1 if force else self.config.min_feedback):
                return None
            items = self.buffer.drain()
            if not items:
                return None
            features = np.stack([row for row, _ in items])
            labels = np.asarray([label for _, label in items], dtype=np.int64)
            updates = 0
            for start in range(0, len(items), self.config.fold_chunk):
                result = self._online.partial_fit(
                    features[start : start + self.config.fold_chunk],
                    labels[start : start + self.config.fold_chunk],
                )
                updates += int(result["updates"])
            self._folded += len(items)
            self._updates += updates
            self._unpersisted += len(items)
            self._rounds += 1
            return self._gate(folded=len(items), updates=updates)

    def _holdout(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        with self._submit_lock:
            held = list(self._eval_reservoir)
        if not held:
            return None, None
        features = np.stack([row for row, _ in held])
        labels = np.asarray([label for _, label in held], dtype=np.int64)
        return features, labels

    def _gate(self, folded: int, updates: int) -> Dict[str, Any]:
        """Evaluate the shadow vs the live model; promote when it clears."""
        from repro.eval.metrics import accuracy

        eval_x, eval_y = self._holdout()
        summary: Dict[str, Any] = {
            "round": self._rounds,
            "folded": folded,
            "updates": updates,
            "promoted": False,
        }
        if eval_x is None:
            # No holdout yet (or gating disabled): fold only, never
            # promote -- an unevaluated shadow must not reach traffic.
            self._gate_failures += 1
            summary["gate"] = "no-holdout"
            return summary
        shadow_accuracy = self._online.evaluate(eval_x, eval_y)
        live_accuracy = accuracy(self._live.predict(eval_x, engine="float"), eval_y)
        self._last_shadow_accuracy = float(shadow_accuracy)
        self._last_live_accuracy = float(live_accuracy)
        passed = (
            shadow_accuracy >= self.config.promote_threshold
            and shadow_accuracy >= live_accuracy + self.config.promote_margin
        )
        summary.update(
            shadow_accuracy=float(shadow_accuracy),
            live_accuracy=float(live_accuracy),
            eval_samples=int(eval_y.shape[0]),
            gate="passed" if passed else "failed",
        )
        promoted_spec: Optional[str] = None
        if passed:
            self._gate_passes += 1
            promoted_spec = self._promote(summary)
            summary["promoted"] = promoted_spec is not None
            if promoted_spec is not None:
                summary["artifact"] = promoted_spec
        else:
            self._gate_failures += 1
        self.results.append(
            config={
                "event": "shadow-eval",
                "model": self.model_key,
                "artifact": self.current_spec,
                "round": self._rounds,
            },
            metrics={
                "shadow_accuracy": float(shadow_accuracy),
                "live_accuracy": float(live_accuracy),
                "eval_samples": int(eval_y.shape[0]),
                "folded": int(folded),
                "updates": int(updates),
                "gate_passed": bool(passed),
                "promoted": bool(summary["promoted"]),
                **({"promoted_spec": promoted_spec} if promoted_spec else {}),
            },
        )
        return summary

    def _save_checkpoint(self, kind: str, metrics: Optional[Dict] = None):
        entry = self.registry.save(
            self._shadow,
            self.checkpoint_name,
            dataset=self._parent_dataset,
            metrics=metrics,
            lineage={
                "kind": kind,
                "parent": self.current_spec,
                "feedback_folded": int(self._folded),
                "feedback_updates": int(self._updates),
                "rounds": int(self._rounds),
            },
        )
        self._checkpoints += 1
        self._unpersisted = 0
        return entry

    def _promote(self, summary: Dict[str, Any]) -> Optional[str]:
        """Persist the shadow and take it to traffic; ``None`` on failure."""
        try:
            entry = self._save_checkpoint(
                kind="online-promotion",
                metrics={
                    "shadow_accuracy": summary.get("shadow_accuracy"),
                    "live_accuracy": summary.get("live_accuracy"),
                    "eval_samples": summary.get("eval_samples"),
                },
            )
            self._promote_cb({"model": self.model_key, "spec": entry.spec})
        except Exception:
            # The previous version stays in traffic; the checkpoint (when
            # it was written) remains in the registry for inspection.
            self._promote_failures += 1
            return None
        self._promotions += 1
        self.current_spec = entry.spec
        self._live = _clone_model(self._shadow)
        self._last_promoted_spec = entry.spec
        self._last_promoted_unix = time.time()
        return entry.spec

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        """The ``online`` counter block of ``GET /stats``."""
        with self._submit_lock:
            return {
                "enabled": True,
                "model": self.model_key,
                "artifact": self.current_spec,
                "feedback": {
                    "requests": self._requests,
                    "accepted": self._accepted,
                    "rejected": self._rejected,
                    "buffered": len(self.buffer),
                    "held_out": self._eval_held,
                    "eval_window": len(self._eval_reservoir),
                    "folded": self._folded,
                },
                "shadow": {
                    "rounds": self._rounds,
                    "updates": self._updates,
                    "last_shadow_accuracy": self._last_shadow_accuracy,
                    "last_live_accuracy": self._last_live_accuracy,
                    "gate_passes": self._gate_passes,
                    "gate_failures": self._gate_failures,
                },
                "promotions": {
                    "count": self._promotions,
                    "failed": self._promote_failures,
                    "checkpoints": self._checkpoints,
                    "last_spec": self._last_promoted_spec,
                    "last_unix": self._last_promoted_unix,
                },
            }

    @staticmethod
    def disabled_stats() -> Dict[str, Any]:
        """The ``online`` block of a server without online learning."""
        return {"enabled": False}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineLearner(model={self.model_key!r}, "
            f"artifact={self.current_spec!r}, buffered={len(self.buffer)})"
        )
