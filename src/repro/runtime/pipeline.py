"""Batched inference pipeline with engine selection and throughput stats.

:class:`InferencePipeline` wraps any fitted classifier from this library
(anything exposing ``predict``; see :class:`repro.baselines.base.HDCClassifier`)
and serves large query batches the way a deployment would:

* **chunking** -- arbitrarily large feature batches are split into
  fixed-size chunks so peak memory stays bounded regardless of batch size;
* **engine selection** -- ``engine="packed"`` routes every chunk through
  the bit-packed popcount engine when the model supports it (MEMHD,
  BasicHDC, QuantHD), ``engine="float"`` keeps the reference matmul path;
* **state warm-up** -- encoder and packed-AM state is built once up front
  (``prepare_engine``) instead of lazily inside the first timed chunk;
* **sharding** -- chunks can be fanned out across a
  :class:`concurrent.futures.ThreadPoolExecutor`; the heavy numpy and
  popcount kernels release the GIL, so multi-core hosts scale;
* **stats** -- every run reports chunk counts, wall time and
  queries/second (:class:`PipelineStats`).

The pipeline never changes predictions: for any engine and any chunk size
the labels are bit-identical to a single ``model.predict`` call, an
invariant pinned by ``tests/test_runtime_pipeline.py``.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

#: Engines a pipeline can route chunks through.
ENGINES = ("float", "packed", "pruned")

#: Floor applied to elapsed wall times before computing rates.  Tiny
#: batches can finish between two clock ticks, making the raw elapsed time
#: 0.0; reporting an infinite throughput for them would poison downstream
#: aggregations (means, JSON stores), so rates are computed against at
#: least one nanosecond -- well below any measurable run.
MIN_MEASURABLE_SECONDS = 1e-9


@dataclass(frozen=True)
class PipelineStats:
    """Throughput accounting for one :meth:`InferencePipeline.run` call.

    Attributes
    ----------
    engine:
        Similarity engine used (``"float"`` or ``"packed"``).
    total_queries:
        Number of query rows served.
    num_chunks:
        Number of chunks the batch was split into.
    chunk_size:
        Configured chunk size (the last chunk may be smaller).
    workers:
        Thread-pool width used to shard chunks (1 = serial).
    elapsed_seconds:
        Wall-clock time of the full run (warm-up excluded).
    chunk_seconds:
        Per-chunk wall times; under sharding these overlap, so their sum
        can exceed ``elapsed_seconds``.
    """

    engine: str
    total_queries: int
    num_chunks: int
    chunk_size: int
    workers: int
    elapsed_seconds: float
    chunk_seconds: List[float] = field(default_factory=list)

    @property
    def queries_per_second(self) -> float:
        """End-to-end serving throughput.

        Always finite: sub-resolution elapsed times are clamped to
        :data:`MIN_MEASURABLE_SECONDS` so a timer reading of exactly zero
        (possible for tiny batches on coarse clocks) yields a huge but
        finite -- and JSON-serializable -- rate instead of ``inf``.
        """
        return self.total_queries / max(self.elapsed_seconds, MIN_MEASURABLE_SECONDS)

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "total_queries": self.total_queries,
            "num_chunks": self.num_chunks,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "elapsed_s": self.elapsed_seconds,
            "queries_per_s": self.queries_per_second,
        }


@dataclass(frozen=True)
class PipelineResult:
    """Labels plus throughput stats returned by :meth:`InferencePipeline.run`."""

    labels: np.ndarray
    stats: PipelineStats


def _accepts_engine(predict: Callable) -> bool:
    """Whether ``predict`` declares an explicit ``engine`` parameter.

    A bare ``**kwargs`` does not count: a model that merely swallows the
    keyword would be silently served on its default path while the stats
    claim the packed engine ran.
    """
    try:
        parameters = inspect.signature(predict).parameters
    except (TypeError, ValueError):  # builtins / extension callables
        return False
    return "engine" in parameters


class InferencePipeline:
    """Chunked (optionally sharded) batch-serving wrapper around a model.

    Parameters
    ----------
    model:
        A fitted classifier exposing ``predict(features)``.  Models whose
        ``predict`` accepts an ``engine`` keyword (MEMHD and the wired
        baselines) can be served with ``engine="packed"``.
    engine:
        ``"float"`` (reference matmul path), ``"packed"`` (bit-packed
        popcount path) or ``"pruned"`` (centroid-pruned shortlist search
        over the packed kernels).  Requesting ``"packed"`` or
        ``"pruned"`` from a model that does not support it raises
        :class:`ValueError`.
    chunk_size:
        Maximum number of query rows per chunk.
    workers:
        Thread-pool width for sharding chunks; 1 runs chunks serially.
    prune_topk:
        Shortlist width for the pruned engine (classes exactly re-ranked
        per query); ``None`` keeps the model's heuristic default.  Only
        meaningful with ``engine="pruned"``.
    """

    def __init__(
        self,
        model,
        engine: str = "float",
        chunk_size: int = 1024,
        workers: int = 1,
        prune_topk: Optional[int] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if prune_topk is not None and prune_topk < 1:
            raise ValueError(f"prune_topk must be >= 1, got {prune_topk}")
        if not callable(getattr(model, "predict", None)):
            raise TypeError("model must expose a callable predict(features)")
        self.model = model
        self.engine = engine
        self.chunk_size = int(chunk_size)
        self.workers = int(workers)
        self.prune_topk = None if prune_topk is None else int(prune_topk)
        self._takes_engine = _accepts_engine(model.predict)
        if engine in ("packed", "pruned") and not self._takes_engine:
            raise ValueError(
                f"{type(model).__name__}.predict does not accept an engine "
                f"keyword; the {engine} engine is unavailable for this model"
            )
        self._warm = False
        self._warmup_lock = threading.Lock()

    # ------------------------------------------------------------------ API
    def warmup(self) -> None:
        """Build engine state (packed AM, encoder caches) ahead of serving.

        Called automatically by :meth:`run` / :meth:`predict`; idempotent
        and thread-safe (the serving runtime's scheduler and handler
        threads may race to warm a freshly loaded model, and
        ``prepare_engine`` must not run twice concurrently while it
        builds packed state).  Models without a ``prepare_engine`` hook
        are warmed implicitly by their first chunk instead.
        """
        if self._warm:
            return
        with self._warmup_lock:
            if self._warm:
                return
            if self.engine == "pruned" and self.prune_topk is not None:
                configure = getattr(self.model, "configure_pruning", None)
                if callable(configure):
                    configure(self.prune_topk)
            prepare = getattr(self.model, "prepare_engine", None)
            if callable(prepare):
                prepare(self.engine)
            self._warm = True

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Chunked prediction; labels identical to ``model.predict``."""
        return self.run(features).labels

    def prune_stats(self) -> Optional[dict]:
        """The model's prune counters (None when not exposed / not built)."""
        hook = getattr(self.model, "prune_stats", None)
        if callable(hook):
            return hook()
        return None

    def run(self, features: np.ndarray) -> PipelineResult:
        """Serve a full batch and return labels plus throughput stats."""
        arr = np.asarray(features)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2:
            raise ValueError(f"expected 1-D or 2-D features, got ndim={arr.ndim}")
        self.warmup()

        chunks = self._chunk_bounds(arr.shape[0])
        chunk_seconds = [0.0] * len(chunks)

        def serve(index_bounds) -> np.ndarray:
            index, (start, stop) = index_bounds
            chunk_start = time.perf_counter()
            labels = self._predict_chunk(arr[start:stop])
            chunk_seconds[index] = time.perf_counter() - chunk_start
            return labels

        run_start = time.perf_counter()
        if self.workers > 1 and len(chunks) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                parts = list(pool.map(serve, enumerate(chunks)))
        else:
            parts = [serve(item) for item in enumerate(chunks)]
        elapsed = time.perf_counter() - run_start

        labels = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        stats = PipelineStats(
            engine=self.engine,
            total_queries=int(arr.shape[0]),
            num_chunks=len(chunks),
            chunk_size=self.chunk_size,
            workers=self.workers,
            elapsed_seconds=elapsed,
            chunk_seconds=chunk_seconds,
        )
        return PipelineResult(labels=labels, stats=stats)

    # ------------------------------------------------------------ internals
    def _chunk_bounds(self, total: int) -> Sequence[tuple]:
        return [
            (start, min(start + self.chunk_size, total))
            for start in range(0, total, self.chunk_size)
        ]

    def _predict_chunk(self, chunk: np.ndarray) -> np.ndarray:
        if self._takes_engine:
            return np.asarray(self.model.predict(chunk, engine=self.engine))
        return np.asarray(self.model.predict(chunk))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InferencePipeline(model={type(self.model).__name__}, "
            f"engine={self.engine!r}, chunk_size={self.chunk_size}, "
            f"workers={self.workers})"
        )


def throughput_comparison(
    model,
    features: np.ndarray,
    engines: Sequence[str] = ENGINES,
    chunk_size: int = 1024,
    workers: int = 1,
    repeats: int = 1,
) -> Tuple[np.ndarray, List[PipelineStats]]:
    """Serve the same batch under several engines and collect their stats.

    Used by the CLI and the packed-similarity benchmark to report
    float-vs-packed speedups on identical inputs.  Returns the predicted
    labels (identical across engines -- checked) together with the best
    (fastest) of ``repeats`` runs per engine, so callers do not need an
    extra inference pass to use the predictions.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if not engines:
        raise ValueError("engines must name at least one engine")
    results: List[PipelineStats] = []
    reference: Optional[np.ndarray] = None
    for engine in engines:
        pipeline = InferencePipeline(
            model, engine=engine, chunk_size=chunk_size, workers=workers
        )
        pipeline.warmup()
        best: Optional[PipelineResult] = None
        for _ in range(repeats):
            result = pipeline.run(features)
            if best is None or (
                result.stats.elapsed_seconds < best.stats.elapsed_seconds
            ):
                best = result
        assert best is not None
        if reference is None:
            reference = best.labels
        elif not np.array_equal(reference, best.labels):
            raise AssertionError(
                f"engine {engine!r} changed predictions; engines must be "
                "bit-exact"
            )
        results.append(best.stats)
    assert reference is not None
    return reference, results
