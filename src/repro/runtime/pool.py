"""Multi-model hosting with routing, per-model stats and hot-swap.

The PR 2 server hosted exactly one model for its whole lifetime; pointing
traffic at a new checkpoint meant restarting the daemon.  A
:class:`ModelPool` instead hosts any number of **served models**, each a
self-contained unit of (model, warm pipeline, micro-batch scheduler,
manifest, counters), addressed by a routing key -- the artifact-registry
name by convention.  The HTTP layer routes by URL path
(``/models/<key>/predict``) or JSON ``model`` field and the pool supplies:

* **atomic hot-swap** -- :meth:`ModelPool.reload` builds and warms the
  replacement *completely* before swapping it into the routing table
  under the pool lock, then drains the old scheduler.  A request resolves
  its :class:`ServedModel` snapshot exactly once, so every response is
  served wholly by one model version -- in-flight requests finish on the
  version they were admitted to, new requests route to the new one, and
  ``GET /manifest`` can never observe a half-swapped entry;
* **per-model accounting** -- request/query/error counters and the
  scheduler's batch-size histogram, nested under the server-level
  ``GET /stats``;
* **registry integration** -- pool entries loaded by ``name[:tag]`` spec
  remember the spec they were asked for, so reloading an entry pinned to
  ``name:latest`` picks up tags saved after the server started (the
  zero-downtime deploy story), while ``name:v3`` stays pinned.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.runtime.pipeline import InferencePipeline
from repro.runtime.scheduler import BatchScheduler

#: Spec recorded for models handed to the pool as live objects.
IN_PROCESS_SPEC = "<in-process>"


class PoolError(Exception):
    """Base class for model-pool failures."""


class UnknownModelError(PoolError):
    """No served model under the requested routing key (HTTP 404)."""


class ModelStats:
    """Thread-safe per-model serving counters.

    Unlike the PR 2 :class:`~repro.runtime.server.ServerStats`, error
    responses are tracked **separately per status code** and contribute
    neither queries nor wall time, so ``queries_per_second`` measures only
    successfully served work (the regression the stats-schema test pins).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.queries = 0
        self.errors = 0
        self.predict_seconds = 0.0
        self.errors_by_status: Dict[int, int] = {}

    def record_predict(self, queries: int, seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self.queries += int(queries)
            self.predict_seconds += float(seconds)

    def record_error(self, status: int = 0) -> None:
        """Account one failed request (status 0 = unclassified)."""
        with self._lock:
            self.requests += 1
            self.errors += 1
            self.errors_by_status[int(status)] = (
                self.errors_by_status.get(int(status), 0) + 1
            )

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            predict_seconds = self.predict_seconds
            queries = self.queries
            return {
                "requests": self.requests,
                "queries": queries,
                "errors": self.errors,
                "errors_by_status": {
                    str(status): count
                    for status, count in sorted(self.errors_by_status.items())
                },
                "predict_s": predict_seconds,
                "queries_per_second": (
                    queries / predict_seconds if predict_seconds > 0 else 0.0
                ),
            }


class ServedModel:
    """One hosted model version: warm pipeline + scheduler + bookkeeping.

    Instances are immutable routing snapshots: a request that resolved
    this object keeps using it even if the pool swaps in a successor, so
    the response is wholly produced by one version.
    """

    def __init__(
        self,
        key: str,
        model,
        pipeline: InferencePipeline,
        scheduler: Optional[BatchScheduler],
        manifest=None,
        spec: str = IN_PROCESS_SPEC,
        resolved_spec: Optional[str] = None,
        version: int = 1,
    ) -> None:
        self.key = key
        self.model = model
        self.pipeline = pipeline
        self.scheduler = scheduler
        self.manifest = manifest
        self.spec = spec
        self.resolved_spec = resolved_spec or spec
        self.version = int(version)
        self.stats = ModelStats()
        self.loaded_unix = time.time()

    @property
    def num_features(self) -> Optional[int]:
        """Input width served by this model (``None`` when unknown)."""
        value = getattr(self.model, "num_features", None)
        return int(value) if value is not None else None

    def predict(
        self,
        features: np.ndarray,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Serve one request through the scheduler (or directly when
        batching is disabled; direct mode has no queue, so deadlines do
        not apply)."""
        if self.scheduler is not None:
            return self.scheduler.predict(
                features, deadline_ms=deadline_ms, timeout=timeout
            )
        return np.asarray(self.pipeline.predict(features))

    def manifest_dict(self) -> Dict[str, Any]:
        """The entry's checkpoint manifest as a JSON-compatible dict."""
        if self.manifest is None:
            return {}
        if isinstance(self.manifest, dict):
            return self.manifest
        return json.loads(self.manifest.to_json())

    def describe(self) -> Dict[str, Any]:
        """Routing-table row used by ``/healthz`` and ``/stats``."""
        return {
            "key": self.key,
            "spec": self.spec,
            "artifact": self.resolved_spec,
            "version": self.version,
            "engine": self.pipeline.engine,
            "num_features": self.num_features,
            "loaded_unix": self.loaded_unix,
        }

    def stats_dict(self) -> Dict[str, Any]:
        payload = self.describe()
        payload.update(self.stats.as_dict())
        payload["scheduler"] = (
            self.scheduler.stats.as_dict() if self.scheduler is not None else None
        )
        payload["queue_depth"] = (
            self.scheduler.queue_size() if self.scheduler is not None else 0
        )
        payload["pruned"] = self.pipeline.prune_stats()
        return payload

    def close(self, drain: bool = True) -> None:
        if self.scheduler is not None:
            self.scheduler.close(drain=drain)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServedModel(key={self.key!r}, artifact={self.resolved_spec!r}, "
            f"version={self.version}, engine={self.pipeline.engine!r})"
        )


class ModelPool:
    """Routing table of :class:`ServedModel` entries with hot-swap.

    Parameters
    ----------
    registry:
        Optional :class:`repro.io.registry.ArtifactRegistry` used by
        :meth:`add_spec` and :meth:`reload`.  Pools built purely around
        in-process model objects work without one (reload then requires
        nothing, and attempting it raises :class:`PoolError`).
    engine / chunk_size / workers / prune_topk:
        Forwarded to every entry's :class:`InferencePipeline`.
    batching:
        When ``False`` entries get no scheduler and requests run directly
        on the handler thread (the PR 2 behaviour; the serving benchmark's
        baseline).
    max_batch_size / max_wait_ms / queue_depth:
        Forwarded to every entry's :class:`BatchScheduler`.
    mapped:
        When ``True``, registry specs are loaded through the zero-copy
        :func:`repro.io.checkpoint.load_mapped` path so every worker
        process serving the same checkpoint shares one physical copy of
        its arrays (used by ``repro serve --workers N``).
    """

    def __init__(
        self,
        registry=None,
        engine: str = "float",
        chunk_size: int = 1024,
        workers: int = 1,
        batching: bool = True,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        queue_depth: int = 128,
        mapped: bool = False,
        prune_topk: Optional[int] = None,
    ) -> None:
        self.registry = registry
        self.engine = engine
        self.chunk_size = int(chunk_size)
        self.workers = int(workers)
        self.prune_topk = None if prune_topk is None else int(prune_topk)
        self.batching = bool(batching)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.queue_depth = int(queue_depth)
        self.mapped = bool(mapped)
        self._lock = threading.Lock()
        # Serializes reload's get -> build -> install sequence; without
        # it two concurrent reloads of one key could both claim the same
        # successor version number.
        self._reload_lock = threading.Lock()
        self._entries: Dict[str, ServedModel] = {}
        self._default_key: Optional[str] = None
        self._closed = False

    # ------------------------------------------------------------- building
    def _build_entry(
        self,
        key: str,
        model,
        manifest,
        spec: str,
        resolved_spec: Optional[str],
        version: int,
    ) -> ServedModel:
        pipeline = InferencePipeline(
            model,
            engine=self.engine,
            chunk_size=self.chunk_size,
            workers=self.workers,
            prune_topk=self.prune_topk,
        )
        pipeline.warmup()
        scheduler = (
            BatchScheduler(
                pipeline,
                max_batch_size=self.max_batch_size,
                max_wait_ms=self.max_wait_ms,
                queue_depth=self.queue_depth,
            )
            if self.batching
            else None
        )
        return ServedModel(
            key=key,
            model=model,
            pipeline=pipeline,
            scheduler=scheduler,
            manifest=manifest,
            spec=spec,
            resolved_spec=resolved_spec,
            version=version,
        )

    def _install(self, entry: ServedModel) -> ServedModel:
        with self._lock:
            if self._closed:
                entry.close(drain=False)
                raise PoolError("model pool is closed")
            previous = self._entries.get(entry.key)
            self._entries[entry.key] = entry
            if self._default_key is None:
                self._default_key = entry.key
        if previous is not None:
            # Swap first, drain second: in-flight requests finish on the
            # version that admitted them while new traffic already routes
            # to the replacement -- zero downtime, no torn responses.
            previous.close(drain=True)
        return entry

    def add_model(self, key: str, model, manifest=None) -> ServedModel:
        """Host an in-process model object under ``key``."""
        if not key:
            raise PoolError("model key must be non-empty")
        return self._install(
            self._build_entry(
                key, model, manifest, IN_PROCESS_SPEC, IN_PROCESS_SPEC, version=1
            )
        )

    def add_spec(self, spec: str, key: Optional[str] = None) -> ServedModel:
        """Load ``name[:tag]`` from the registry and host it.

        The routing key defaults to the artifact *name*, so
        ``add_spec("mnist:v3")`` serves at ``/models/mnist/predict``.
        """
        model, manifest, resolved = self._load_spec(spec)
        name = resolved.partition(":")[0]
        return self._install(
            self._build_entry(key or name, model, manifest, spec, resolved, version=1)
        )

    def _load_spec(self, spec: str):
        if self.registry is None:
            raise PoolError("pool has no artifact registry to load specs from")
        return self.registry.load_with_manifest(spec, mapped=self.mapped)

    # -------------------------------------------------------------- routing
    @property
    def default_key(self) -> Optional[str]:
        with self._lock:
            return self._default_key

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def get(self, key: Optional[str] = None) -> ServedModel:
        """Resolve a routing key (default model when ``key`` is ``None``).

        The returned snapshot stays valid for the whole request even if a
        reload swaps the key meanwhile.
        """
        with self._lock:
            resolved = key if key is not None else self._default_key
            if resolved is None or resolved not in self._entries:
                raise UnknownModelError(
                    f"unknown model {resolved!r}; serving {sorted(self._entries)}"
                )
            return self._entries[resolved]

    # ------------------------------------------------------------- hot swap
    def reload(
        self, key: Optional[str] = None, spec: Optional[str] = None
    ) -> ServedModel:
        """Hot-swap one entry from the registry; returns the new version.

        ``spec`` defaults to the entry's original spec, so an entry added
        as ``name`` / ``name:latest`` re-resolves latest (picking up newly
        saved tags) while an entry pinned to an exact tag reloads that
        tag.  The replacement is fully built and warmed before the routing
        table changes; the old version drains its queue and retires.
        Concurrent reloads are serialized, so version numbers are strictly
        monotonic per key and every ``status: reloaded`` response names
        the entry that actually ended up serving.
        """
        with self._reload_lock:
            current = self.get(key)
            if spec is None and current.spec == IN_PROCESS_SPEC:
                raise PoolError(
                    f"model {current.key!r} was provided in-process; pass a "
                    "registry spec to reload it from a checkpoint"
                )
            model, manifest, resolved = self._load_spec(spec or current.spec)
            entry = self._build_entry(
                current.key,
                model,
                manifest,
                spec or current.spec,
                resolved,
                version=current.version + 1,
            )
            return self._install(entry)

    # ----------------------------------------------------------- inspection
    def stats_dict(self) -> Dict[str, Any]:
        """Per-model stats keyed by routing key (for ``GET /stats``)."""
        with self._lock:
            entries = list(self._entries.values())
        return {entry.key: entry.stats_dict() for entry in entries}

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            entries = list(self._entries.values())
        return [entry.describe() for entry in entries]

    def total_queue_size(self) -> int:
        with self._lock:
            entries = list(self._entries.values())
        return sum(
            entry.scheduler.queue_size()
            for entry in entries
            if entry.scheduler is not None
        )

    # -------------------------------------------------------------- teardown
    def close(self, drain: bool = True) -> None:
        """Close every entry's scheduler (idempotent)."""
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
        for entry in entries:
            entry.close(drain=drain)

    def __enter__(self) -> "ModelPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelPool(models={self.keys()}, engine={self.engine!r}, "
            f"batching={self.batching})"
        )
