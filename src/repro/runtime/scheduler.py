"""Micro-batching request scheduler for the serving runtime (v2).

The PR 2 server answered every HTTP request with its own unbatched
``pipeline.predict`` call, so 32 concurrent single-query clients paid the
fixed per-call cost (JSON decode aside: array staging, encoder dispatch,
engine warm-state lookup, argmax) 32 times.  The batched popcount engine
is fastest when it sees wide batches, and classification is row-wise
independent, so coalescing concurrent requests is pure profit:
**predictions are bit-identical whether a row is served alone or glued to
63 strangers** (pinned by ``tests/test_runtime_scheduler.py``).

:class:`BatchScheduler` implements the standard dynamic-batching loop of
production inference servers:

* callers :meth:`submit` a feature batch and get a
  :class:`concurrent.futures.Future` back immediately;
* a single dispatcher thread pops the oldest request and keeps coalescing
  queued requests into one micro-batch until it reaches ``max_batch_size``
  rows or the oldest request has waited ``max_wait_ms``;
* the micro-batch runs through the warm
  :class:`repro.runtime.pipeline.InferencePipeline` **once**, and the label
  slices are fanned back out to the per-request futures.

Admission control is explicit so the HTTP layer can map it to status
codes:

* a full queue (``queue_depth`` pending requests) raises
  :class:`QueueFullError` from :meth:`submit` -- HTTP 429 with a
  ``Retry-After`` hint derived from the observed batch service time;
* a request whose deadline lapses while queued is failed with
  :class:`DeadlineExceededError` instead of being served -- HTTP 503 --
  so a backed-up server sheds work the client has already given up on;
* a closed scheduler raises :class:`SchedulerClosedError`.

Shutdown is drain-by-default: :meth:`close` stops admissions, serves
everything already queued, then joins the dispatcher -- no future is ever
left pending (also pinned by the tests).
"""

from __future__ import annotations

import collections
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

import numpy as np

#: Default micro-batch bound (rows), matched to the packed engine's sweet
#: spot for small models; larger requests are dispatched alone and chunked
#: by the pipeline.
DEFAULT_MAX_BATCH_SIZE = 64

#: Default coalescing window in milliseconds.  Small on purpose: the goal
#: is to glue together requests that are *already* concurrent, not to add
#: artificial latency to an idle server.
DEFAULT_MAX_WAIT_MS = 2.0

#: Default bound on queued (not yet dispatched) requests.
DEFAULT_QUEUE_DEPTH = 128

#: Retry-After fallback (seconds) before any batch has been timed.
_DEFAULT_RETRY_AFTER_S = 1.0


class SchedulerError(Exception):
    """Base class for scheduler admission/lifecycle failures."""


class QueueFullError(SchedulerError):
    """The bounded request queue is at capacity (HTTP 429).

    Attributes
    ----------
    retry_after_s:
        Suggested client back-off, estimated from the queue depth and the
        scheduler's recent batch service time.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class DeadlineExceededError(SchedulerError):
    """The request's deadline lapsed before it was dispatched (HTTP 503)."""


class SchedulerClosedError(SchedulerError):
    """The scheduler no longer accepts work (server shutting down)."""


@dataclass
class _PendingRequest:
    """One queued prediction request awaiting dispatch."""

    features: np.ndarray
    future: "Future[np.ndarray]"
    rows: int
    enqueued_monotonic: float
    deadline_monotonic: Optional[float]

    def expired(self, now: float) -> bool:
        return self.deadline_monotonic is not None and now >= self.deadline_monotonic


class SchedulerStats:
    """Thread-safe counters for one scheduler (exposed on ``GET /stats``).

    Beyond raw counts, the **batch-size histogram** is the serving-quality
    signal: a histogram massed at 1 means coalescing never happens (idle
    server or window too short), mass at ``max_batch_size`` means the
    scheduler saturates and the queue bound is doing the work.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batches = 0
        self.queries = 0
        self.coalesced_requests = 0
        self.rejected_full = 0
        self.expired_deadlines = 0
        self.dispatch_seconds = 0.0
        self.batch_size_histogram: Dict[int, int] = {}
        # EWMA of per-batch service time, feeding the Retry-After hint.
        self._ewma_batch_seconds: Optional[float] = None

    def record_batch(self, requests: int, rows: int, seconds: float) -> None:
        with self._lock:
            self.batches += 1
            self.queries += int(rows)
            self.coalesced_requests += int(requests)
            self.dispatch_seconds += float(seconds)
            self.batch_size_histogram[int(rows)] = (
                self.batch_size_histogram.get(int(rows), 0) + 1
            )
            if self._ewma_batch_seconds is None:
                self._ewma_batch_seconds = float(seconds)
            else:
                self._ewma_batch_seconds += 0.2 * (
                    float(seconds) - self._ewma_batch_seconds
                )

    def record_rejected_full(self) -> None:
        with self._lock:
            self.rejected_full += 1

    def record_expired(self, count: int = 1) -> None:
        with self._lock:
            self.expired_deadlines += int(count)

    def ewma_batch_seconds(self) -> Optional[float]:
        with self._lock:
            return self._ewma_batch_seconds

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            histogram = {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            }
            batches = self.batches
            return {
                "batches": batches,
                "queries": self.queries,
                "coalesced_requests": self.coalesced_requests,
                "rejected_full": self.rejected_full,
                "expired_deadlines": self.expired_deadlines,
                "dispatch_s": self.dispatch_seconds,
                "mean_batch_rows": (self.queries / batches) if batches else 0.0,
                "batch_size_histogram": histogram,
            }


class BatchScheduler:
    """Coalesces concurrent predict requests into pipeline micro-batches.

    Parameters
    ----------
    pipeline:
        A warm :class:`repro.runtime.pipeline.InferencePipeline` (or any
        object with ``predict(features) -> labels``); every dispatched
        micro-batch is one call to it.
    max_batch_size:
        Micro-batch row bound.  Requests wider than this are dispatched
        alone (the pipeline chunks them internally); smaller requests are
        glued together while their combined rows fit.
    max_wait_ms:
        Longest time the dispatcher holds an admitted request open for
        coalescing.  ``0`` dispatches whatever is queued immediately.
    queue_depth:
        Bound on *queued* requests; :meth:`submit` beyond it raises
        :class:`QueueFullError`.
    """

    def __init__(
        self,
        pipeline,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        if queue_depth <= 0:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        self.pipeline = pipeline
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.queue_depth = int(queue_depth)
        self.stats = SchedulerStats()
        self._queue: Deque[_PendingRequest] = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-batch-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ API
    def submit(
        self,
        features: np.ndarray,
        deadline_ms: Optional[float] = None,
    ) -> "Future[np.ndarray]":
        """Queue one request; returns a future resolving to its labels.

        Parameters
        ----------
        features:
            ``(n, f)`` feature batch (already validated by the caller).
        deadline_ms:
            Optional time budget.  If the request is still queued when it
            lapses, the future fails with :class:`DeadlineExceededError`
            instead of being served.

        Raises
        ------
        QueueFullError
            When ``queue_depth`` requests are already waiting.
        SchedulerClosedError
            After :meth:`close`.
        ValueError
            On a non-positive ``deadline_ms``.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        batch = np.asarray(features)
        if batch.ndim != 2 or batch.shape[0] == 0:
            raise ValueError(
                f"features must be a non-empty (n, f) batch, got shape {batch.shape}"
            )
        now = time.monotonic()
        request = _PendingRequest(
            features=batch,
            future=Future(),
            rows=int(batch.shape[0]),
            enqueued_monotonic=now,
            deadline_monotonic=(now + deadline_ms / 1000.0) if deadline_ms else None,
        )
        with self._not_empty:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed")
            if len(self._queue) >= self.queue_depth:
                self.stats.record_rejected_full()
                raise QueueFullError(
                    f"request queue is full ({self.queue_depth} pending)",
                    retry_after_s=self._retry_after_estimate(),
                )
            self._queue.append(request)
            self._not_empty.notify()
        return request.future

    def predict(
        self,
        features: np.ndarray,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking convenience wrapper: :meth:`submit` + ``Future.result``."""
        return self.submit(features, deadline_ms=deadline_ms).result(timeout=timeout)

    def queue_size(self) -> int:
        """Number of requests queued but not yet dispatched."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop admissions and shut the dispatcher down (idempotent).

        With ``drain=True`` (the default) everything already queued is
        served before the dispatcher exits; with ``drain=False`` pending
        futures fail with :class:`SchedulerClosedError`.  Either way no
        future is left unresolved.
        """
        with self._not_empty:
            if self._closed:
                pending: List[_PendingRequest] = []
            else:
                self._closed = True
                pending = [] if drain else list(self._queue)
                if not drain:
                    self._queue.clear()
                self._not_empty.notify_all()
        for request in pending:
            request.future.set_exception(
                SchedulerClosedError("scheduler closed before dispatch")
            )
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=timeout)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ internals
    def _retry_after_estimate(self) -> float:
        """Retry-After hint: time to churn through the current backlog."""
        batch_seconds = self.stats.ewma_batch_seconds()
        if batch_seconds is None:
            return _DEFAULT_RETRY_AFTER_S
        backlog_batches = max(1.0, self.queue_depth / float(self.max_batch_size))
        return max(0.1, backlog_batches * batch_seconds)

    def _collect_batch(self) -> Optional[List[_PendingRequest]]:
        """Block until a micro-batch is ready (or ``None`` on shutdown).

        The coalescing rule: admit the oldest request unconditionally,
        then keep appending queued requests while the combined row count
        stays within ``max_batch_size``, waiting out the remainder of the
        oldest request's ``max_wait_ms`` window for stragglers.
        """
        with self._not_empty:
            while not self._queue and not self._closed:
                self._not_empty.wait()
            if not self._queue:
                return None  # closed and drained
            batch = [self._queue.popleft()]
            rows = batch[0].rows
            window_end = batch[0].enqueued_monotonic + self.max_wait_ms / 1000.0
            while rows < self.max_batch_size:
                if self._queue:
                    if rows + self._queue[0].rows > self.max_batch_size:
                        break
                    request = self._queue.popleft()
                    batch.append(request)
                    rows += request.rows
                    continue
                remaining = window_end - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(timeout=remaining)
                if not self._queue:
                    break
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._dispatch(batch)

    def _dispatch(self, batch: List[_PendingRequest]) -> None:
        # Shed requests whose deadline lapsed while they queued; the
        # client has (by its own declaration) stopped waiting.
        now = time.monotonic()
        live: List[_PendingRequest] = []
        for request in batch:
            if request.expired(now):
                self.stats.record_expired()
                request.future.set_exception(
                    DeadlineExceededError(
                        "deadline exceeded before dispatch "
                        f"(queued {now - request.enqueued_monotonic:.3f}s)"
                    )
                )
            else:
                live.append(request)
        if not live:
            return
        start = time.perf_counter()
        try:
            # Batch assembly stays inside the try: a request whose width
            # disagrees with its batchmates makes np.concatenate raise,
            # and that must fail the batch's futures, not kill the
            # dispatcher thread (which would wedge the scheduler).
            features = (
                live[0].features
                if len(live) == 1
                else np.concatenate([request.features for request in live], axis=0)
            )
            labels = np.asarray(self.pipeline.predict(features))
        except BaseException as error:  # fan the failure out, keep dispatching
            for request in live:
                request.future.set_exception(error)
            return
        elapsed = time.perf_counter() - start
        self.stats.record_batch(len(live), int(features.shape[0]), elapsed)
        offset = 0
        for request in live:
            request.future.set_result(labels[offset : offset + request.rows])
            offset += request.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchScheduler(max_batch_size={self.max_batch_size}, "
            f"max_wait_ms={self.max_wait_ms}, queue_depth={self.queue_depth}, "
            f"queued={self.queue_size()}, closed={self.closed})"
        )
