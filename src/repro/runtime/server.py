"""Multi-model micro-batching serving daemon (``repro serve``, runtime v2).

The PR 2 daemon kept one warm model behind a threaded HTTP loop and ran
one unbatched ``pipeline.predict`` per request.  Runtime v2 keeps the
stdlib-only transport but rebuilds everything behind it around two new
pieces:

* :class:`repro.runtime.pool.ModelPool` -- any number of
  registry-addressed models served concurrently, routed by URL path
  (``POST /models/<name>/predict``) or JSON ``model`` field, each
  hot-swappable via ``POST /reload`` with zero downtime and no torn
  responses;
* :class:`repro.runtime.scheduler.BatchScheduler` -- concurrent requests
  are coalesced into micro-batches (``max_batch_size`` rows or
  ``max_wait_ms``, whichever first) and served by **one** pipeline call,
  with results fanned back out per request.  Batching never changes
  predictions (row-wise independence, pinned by the tests).

Admission control maps scheduler failures to HTTP status codes:

=====================================  ======  =========================
Condition                              Status  Notes
=====================================  ======  =========================
unknown model key                      404     lists the served keys
bounded queue full                     429     ``Retry-After`` header
request deadline lapsed while queued   503     set ``deadline_ms`` in body
scheduler closed / dispatch timeout    503     server shutting down
malformed body / features / reload     400
=====================================  ======  =========================

Endpoints (all JSON):

``GET /healthz``
    Liveness: default model + engine, per-model routing table, uptime.
``GET /stats``
    Server-level counters (errors broken down by status; error responses
    never contribute to ``queries_per_second``), total queue depth, and
    per-model counters including the scheduler's batch-size histogram.
    Under ``repro serve --workers N`` this is the **cluster** view: the
    worker forwards to the parent supervisor, which merges every worker's
    local counters and nests them under a ``workers`` key (see
    :mod:`repro.runtime.workers`).
``GET /stats/local``
    Always this process's own counters, never aggregated -- the payload
    ``GET /stats`` returns in single-process mode.
``GET /manifest`` / ``GET /models/<name>/manifest``
    The checkpoint manifest of the default / named model.
``GET /models``
    The routing table (one row per served model version).
``POST /predict`` / ``POST /models/<name>/predict``
    Body ``{"features": [[...], ...]}`` plus optional ``"model"`` and
    ``"deadline_ms"`` fields; responds with labels, count, timing and the
    exact model version that served the request.
``POST /reload``
    Body ``{"model": name?, "spec": "name[:tag]"?}``; atomically hot-swaps
    one model from the artifact registry.
``POST /feedback`` / ``POST /models/<name>/feedback``
    Body ``{"features": [[...], ...], "labels": [...]}`` -- labelled
    ground truth for the continual-learning loop (``repro serve
    --online``; see :mod:`repro.runtime.online`).  The 200 ack means the
    batch is durably buffered for the shadow trainer; a full buffer sheds
    load with 429 + ``Retry-After``, and servers without ``--online``
    answer 503.  Under prefork, workers forward to the supervisor (which
    owns the single learner) before acknowledging.

Typical single-model use (unchanged from PR 2)::

    server = ModelServer(model, engine="packed", port=0)
    server.start()
    ... requests against server.url ...
    server.shutdown()

Multi-model use (what ``repro serve --models a b:v3`` does)::

    ModelServer(models=["a", "b:v3"], registry=registry, port=8000).serve_forever()
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.online import (
    FeedbackError,
    OnlineConfig,
    OnlineLearner,
    feedback_error_status,
)
from repro.runtime.pool import (
    IN_PROCESS_SPEC,
    ModelPool,
    ModelStats,
    PoolError,
    ServedModel,
    UnknownModelError,
)
from repro.runtime.scheduler import (
    DeadlineExceededError,
    QueueFullError,
    SchedulerClosedError,
)

#: Largest accepted ``/predict`` request body.  Generous for feature
#: batches (a 1024 x 784 float batch serializes to ~20 MB of JSON) while
#: bounding what one request can make a handler thread buffer.
MAX_REQUEST_BYTES = 256 * 1024 * 1024

#: Upper bound on how long a handler thread waits for its future before
#: giving up with a 503; keeps a wedged dispatcher from hanging clients
#: (and the test suite) forever.
DISPATCH_TIMEOUT_S = 120.0


class ServerStats(ModelStats):
    """Server-level counters exposed on ``GET /stats``.

    Extends the per-model :class:`~repro.runtime.pool.ModelStats` with
    uptime.  Error responses are counted per status code and contribute
    neither queries nor predict seconds, so ``queries_per_second`` always
    measures successfully served work -- the PR 2 stats let an error-heavy
    workload report the same throughput as a healthy one, which the
    schema regression test now pins against.
    """

    def __init__(self) -> None:
        super().__init__()
        self.started_unix = time.time()

    def as_dict(self) -> Dict[str, Any]:
        payload = super().as_dict()
        payload["uptime_s"] = time.time() - self.started_unix
        return payload


class ServerError(Exception):
    """A request failed with a definite HTTP status (raised by the service
    layer, mapped to a response by the handler)."""

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.headers = dict(headers or {})


class _ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for many concurrent keep-alive clients.

    The stdlib default listen backlog of 5 overflows the accept queue the
    moment a few dozen loadtest workers connect at once, surfacing as
    ~1 s SYN-retransmit latency spikes and reset connections; a deeper
    backlog absorbs the connection storm.
    """

    daemon_threads = True
    request_queue_size = 128


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`ModelServer`."""

    # HTTP/1.1 enables keep-alive: one handler thread per *connection*
    # instead of per request, so a closed-loop client pays connection
    # setup (TCP handshake + server thread spawn) once, not per query.
    # Safe because every response carries an exact Content-Length.
    protocol_version = "HTTP/1.1"

    # The stdlib handler defaults to an unbuffered writer, turning the
    # status line and every header into its own send() syscall and tiny
    # packet; with Nagle on those interact with the peer's delayed ACK
    # into ~40 ms response stalls on keep-alive connections.  A buffered
    # writer (flushed once per response by handle_one_request) plus
    # TCP_NODELAY sends each response as one segment immediately.
    wbufsize = -1
    disable_nagle_algorithm = True

    # Keep per-request chatter out of stderr; stats carry the signal.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def _service(self) -> "ModelServer":
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if self._service.draining:
            # A draining worker answers the in-flight request, then ends
            # the keep-alive connection so the client reconnects (and the
            # kernel routes it to a live worker).
            self.close_connection = True
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Error paths that leave the request body unread set
            # close_connection; advertise it so clients don't reuse a
            # connection the server is about to drop.
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _fail(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._service.stats.record_error(status)
        self._send_json(status, {"error": message}, headers=headers)

    @staticmethod
    def _model_route(path: str) -> Tuple[Optional[str], str]:
        """Split ``/models/<key>/<action>`` into ``(key, "/<action>")``.

        Any other path is returned unchanged as ``(None, path)``.
        """
        parts = path.split("/")
        if len(parts) == 4 and parts[0] == "" and parts[1] == "models" and parts[2]:
            return parts[2], "/" + parts[3]
        return None, path

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self._service
        service._request_started()
        try:
            self._route_get(service)
        finally:
            service._request_finished()

    def _route_get(self, service: "ModelServer") -> None:
        key, path = self._model_route(self.path)
        if path == "/healthz" and key is None:
            self._send_json(200, service.health())
        elif path == "/stats" and key is None:
            self._send_json(200, service.cluster_stats_dict())
        elif self.path == "/stats/local":
            self._send_json(200, service.stats_dict())
        elif self.path == "/models":
            self._send_json(200, {"models": service.pool.describe()})
        elif path == "/manifest":
            try:
                entry = service.pool.get(key)
            except UnknownModelError as error:
                self._fail(404, str(error))
                return
            self._send_json(200, entry.manifest_dict())
        elif path == "/predict":
            self._fail(405, "use POST for /predict")
        else:
            self._fail(404, f"unknown path {self.path!r}")

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        """Read and decode the request body; ``None`` after a sent error.

        Every error path that leaves body bytes unread must also drop the
        keep-alive connection (``close_connection``): otherwise the next
        ``handle_one_request`` would parse the leftover body as a request
        line and poison every subsequent request on the connection.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self.close_connection = True
            self._fail(400, "invalid Content-Length")
            return None
        if length < 0:
            # rfile.read(-1) would block until client EOF, hanging the
            # handler thread on a silent keep-alive connection.
            self.close_connection = True
            self._fail(400, "invalid Content-Length")
            return None
        if length > MAX_REQUEST_BYTES:
            self.close_connection = True
            self._fail(413, f"request body exceeds {MAX_REQUEST_BYTES} bytes")
            return None
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._fail(400, f"request body is not valid JSON: {error}")
            return None
        if not isinstance(payload, dict):
            self._fail(400, "request body must be a JSON object")
            return None
        return payload

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self._service
        service._request_started()
        try:
            self._route_post(service)
        finally:
            service._request_finished()

    def _route_post(self, service: "ModelServer") -> None:
        key, path = self._model_route(self.path)
        if path not in ("/predict", "/reload", "/feedback") or (
            path == "/reload" and key
        ):
            # The body was never read; keeping the connection alive would
            # desync the next request against the leftover bytes.
            self.close_connection = True
            self._fail(404, f"unknown path {self.path!r}")
            return
        payload = self._read_json_body()
        if payload is None:
            return
        try:
            if path == "/reload":
                response = service.cluster_reload_payload(payload)
            elif path == "/feedback":
                response = service.feedback_request(payload, key=key)
            else:
                response = service.predict_request(payload, key=key)
        except ServerError as error:
            self._fail(error.status, str(error), headers=error.headers)
            return
        self._send_json(200, response)


class ModelServer:
    """A pool of warm models behind a threaded JSON-over-HTTP daemon.

    The PR 2 single-model construction still works unchanged::

        ModelServer(model, engine="packed", port=0)

    and additionally the pool can be populated from the artifact registry
    (``models=["a", "b:v3"]``) with micro-batching, admission control and
    hot-swap on top.

    Parameters
    ----------
    model:
        Optional fitted classifier hosted in-process (the PR 2 path).
    engine / chunk_size / workers:
        Per-model :class:`~repro.runtime.pipeline.InferencePipeline`
        settings (``workers`` shards chunks *within* one micro-batch).
    manifest:
        Manifest for the in-process ``model`` (shown on ``/manifest``).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port.
    models:
        Registry specs (``name[:tag]``) to serve, routed by name.
    registry:
        :class:`repro.io.registry.ArtifactRegistry` backing ``models`` and
        ``POST /reload``.
    batching:
        ``False`` restores the PR 2 behaviour (one direct pipeline call
        per request, no queue) -- the serving benchmark's baseline.
    max_batch_size / max_wait_ms / queue_depth:
        Micro-batching and backpressure knobs, per model (see
        :class:`~repro.runtime.scheduler.BatchScheduler`).
    model_key:
        Routing key for the in-process ``model`` (default ``"default"``).
    mapped:
        Load registry specs through the zero-copy
        :func:`repro.io.checkpoint.load_mapped` path, so co-resident
        worker processes share one physical copy of each model's arrays.
    listen_socket:
        Adopt an already-bound, already-listening socket instead of
        binding one (the prefork **inherited-FD** mode: the supervisor
        binds once before forking and every worker accepts on the same
        kernel queue).  Mutually exclusive with ``reuse_port``.
    reuse_port:
        Bind with ``SO_REUSEPORT``, letting N processes bind the same
        ``host:port`` and the kernel load-balance accepts between them
        (the prefork fast path on Linux/BSD).
    worker_id:
        Identity stamped into ``/healthz`` and ``/stats/local`` payloads
        when this server is one replica of a prefork pool.

    The constructor fully warms every pipeline, so the first request pays
    no lazy-initialization cost.
    """

    def __init__(
        self,
        model=None,
        engine: str = "float",
        chunk_size: int = 1024,
        workers: int = 1,
        manifest=None,
        host: str = "127.0.0.1",
        port: int = 0,
        models: Optional[Sequence[str]] = None,
        registry=None,
        batching: bool = True,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        queue_depth: int = 128,
        model_key: str = "default",
        mapped: bool = False,
        listen_socket: Optional[socket.socket] = None,
        reuse_port: bool = False,
        worker_id: Optional[int] = None,
        prune_topk: Optional[int] = None,
        online: Optional[OnlineConfig] = None,
    ) -> None:
        if model is None and not models:
            raise ValueError("provide an in-process model and/or registry specs")
        if models and registry is None:
            raise ValueError("serving registry specs requires a registry")
        if online is not None and registry is None:
            raise ValueError(
                "online learning requires a registry-backed model "
                "(checkpoints must round-trip through the artifact registry)"
            )
        if listen_socket is not None and reuse_port:
            raise ValueError("listen_socket and reuse_port are mutually exclusive")
        self.pool = ModelPool(
            registry=registry,
            engine=engine,
            chunk_size=chunk_size,
            workers=workers,
            batching=batching,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
            mapped=mapped,
            prune_topk=prune_topk,
        )
        if model is not None:
            self.pool.add_model(model_key, model, manifest=manifest)
        for spec in models or ():
            self.pool.add_spec(spec)
        self.stats = ServerStats()
        self.worker_id = worker_id
        #: Control-plane hook installed by :mod:`repro.runtime.workers`:
        #: an object with ``stats()``, ``reload(payload)`` and
        #: ``feedback(payload)`` methods that execute against the whole
        #: worker pool.  ``None`` in single-process mode.
        self.cluster = None
        #: The single-process continual-learning loop; ``None`` when
        #: ``--online`` is off or this server is a prefork worker (the
        #: supervisor owns the learner there).
        self.online: Optional[OnlineLearner] = None
        if online is not None:
            target = self.pool.get()
            if target.resolved_spec == IN_PROCESS_SPEC:
                for pool_key in self.pool.keys():
                    candidate = self.pool.get(pool_key)
                    if candidate.resolved_spec != IN_PROCESS_SPEC:
                        target = candidate
                        break
                else:
                    raise ValueError(
                        "online learning requires a registry-backed model; "
                        "an in-process model has no checkpoint lineage"
                    )
            self.online = OnlineLearner(
                registry,
                target.resolved_spec,
                online,
                promote=self.reload_payload,
                model_key=target.key,
            )
        self._draining = False
        self._active_requests = 0
        self._active_cond = threading.Condition()
        self._httpd = _ServingHTTPServer(
            (host, port), _RequestHandler, bind_and_activate=False
        )
        try:
            if listen_socket is not None:
                # Adopt the supervisor's socket: replace the unused one the
                # constructor made, skip bind, go straight to serving.
                # Non-blocking accept, because sibling processes share the
                # same accept queue: after the selector reports readiness a
                # sibling may win the connection, and a blocking accept()
                # would then stall this worker's whole serve loop
                # (socketserver treats the resulting BlockingIOError as a
                # no-op and keeps polling).
                listen_socket.setblocking(False)
                self._httpd.socket.close()
                self._httpd.socket = listen_socket
                address = listen_socket.getsockname()
                self._httpd.server_address = (address[0], address[1])
                self._httpd.server_name = address[0]
                self._httpd.server_port = int(address[1])
            else:
                if reuse_port:
                    if not hasattr(socket, "SO_REUSEPORT"):
                        raise ValueError(
                            "SO_REUSEPORT is not available on this platform"
                        )
                    self._httpd.socket.setsockopt(
                        socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                    )
                self._httpd.server_bind()
                self._httpd.server_activate()
        except BaseException:
            self._httpd.server_close()
            self.pool.close(drain=False)
            raise
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ---------------------------------------------------------- compat props
    @property
    def model(self):
        """The default entry's model (PR 2 single-model compatibility)."""
        return self.pool.get().model

    @property
    def pipeline(self):
        """The default entry's pipeline (PR 2 single-model compatibility)."""
        return self.pool.get().pipeline

    @property
    def manifest(self):
        return self.pool.get().manifest

    # ----------------------------------------------------------- addressing
    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the ephemeral one when constructed with ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the daemon (e.g. ``http://127.0.0.1:8000``)."""
        return f"http://{self.host}:{self.port}"

    # ----------------------------------------------------- request accounting
    @property
    def draining(self) -> bool:
        """True once a graceful drain began (keep-alives are being shed)."""
        return self._draining

    def _request_started(self) -> None:
        with self._active_cond:
            self._active_requests += 1

    def _request_finished(self) -> None:
        with self._active_cond:
            self._active_requests -= 1
            if self._active_requests == 0:
                self._active_cond.notify_all()

    @property
    def active_requests(self) -> int:
        """Requests currently inside a handler (admitted, unanswered)."""
        with self._active_cond:
            return self._active_requests

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no request is in flight; ``False`` on timeout."""
        with self._active_cond:
            return self._active_cond.wait_for(
                lambda: self._active_requests == 0, timeout=timeout
            )

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (blocking)."""
        if self.online is not None:
            self.online.start()
        self._serving = True
        try:
            self._httpd.serve_forever()
        finally:
            self._serving = False

    def start(self) -> "ModelServer":
        """Serve on a daemon background thread; returns ``self``.

        Idempotent; used by tests and notebooks that need the calling
        thread back.
        """
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self.serve_forever, daemon=True)
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving, drain the schedulers, release the socket.

        Safe to call twice.  ``BaseServer.shutdown`` blocks until
        ``serve_forever`` acknowledges, which would deadlock when the loop
        never ran, so it is only issued while a serving thread is (or may
        be about to start) running.  The pool drains *after* the HTTP loop
        stops accepting, so every admitted request still gets its answer
        (no hung futures) while new connections are refused.
        """
        if self._serving or (self._thread is not None and self._thread.is_alive()):
            self._httpd.shutdown()
        self._httpd.server_close()
        if self.online is not None:
            # Fold + persist the feedback backlog while the pool can
            # still hot-swap (a final gated promotion may fire here).
            self.online.stop(drain=True)
        self.pool.close(drain=True)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def drain(self, timeout: float = 30.0) -> bool:
        """Gracefully retire this server: finish everything, answer it all.

        The SIGTERM path of a prefork worker.  In order:

        1. mark the server draining, so every response from now on carries
           ``Connection: close`` (keep-alive clients re-connect elsewhere);
        2. stop the accept loop and close the listening socket (under
           ``SO_REUSEPORT`` the kernel immediately stops routing new
           connections here; an inherited FD stays open in the parent);
        3. wait until no request is inside a handler;
        4. drain + close every scheduler, so queued work is answered.

        Returns ``True`` when in-flight requests finished inside
        ``timeout``; ``False`` means the drain gave up waiting (schedulers
        are still closed, queued work still answered).
        """
        self._draining = True
        if self._serving or (self._thread is not None and self._thread.is_alive()):
            self._httpd.shutdown()
        self._httpd.server_close()
        completed = self.wait_idle(timeout)
        if self.online is not None:
            self.online.stop(drain=True)
        self.pool.close(drain=True)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return completed

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -------------------------------------------------------------- handlers
    def health(self) -> Dict[str, Any]:
        """Payload of ``GET /healthz``."""
        entry = self.pool.get()
        return {
            "status": "ok",
            "model": getattr(entry.model, "name", type(entry.model).__name__),
            "engine": entry.pipeline.engine,
            "num_features": entry.num_features,
            "batching": self.pool.batching,
            "models": self.pool.describe(),
            "uptime_s": time.time() - self.stats.started_unix,
            **({"worker": int(self.worker_id)} if self.worker_id is not None else {}),
        }

    def stats_dict(self) -> Dict[str, Any]:
        """Payload of ``GET /stats/local``: this process's counters only."""
        payload = self.stats.as_dict()
        payload["queue_depth"] = self.pool.total_queue_size()
        payload["batching"] = self.pool.batching
        payload["models"] = self.pool.stats_dict()
        payload["online"] = (
            self.online.stats()
            if self.online is not None
            else OnlineLearner.disabled_stats()
        )
        if self.worker_id is not None:
            payload["worker"] = int(self.worker_id)
        return payload

    def cluster_stats_dict(self) -> Dict[str, Any]:
        """Payload of ``GET /stats``: cluster-merged when preforked.

        Single-process servers answer locally.  A prefork worker forwards
        to the supervisor (which polls every worker and merges); if the
        control channel fails mid-flight the worker degrades to its local
        view rather than 500-ing the scrape.
        """
        if self.cluster is None:
            return self.stats_dict()
        try:
            return self.cluster.stats()
        except Exception:
            return self.stats_dict()

    def cluster_reload_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Payload of ``POST /reload``: fanned out when preforked.

        Each worker performs its own atomic swap-then-drain, so responses
        remain wholly one version *per worker*; the supervisor serializes
        fan-outs so two concurrent reloads cannot interleave.
        """
        if self.cluster is None:
            return self.reload_payload(payload)
        try:
            return self.cluster.reload(payload)
        except ServerError:
            raise
        except Exception as error:
            raise ServerError(503, f"cluster reload failed: {error}") from error

    def manifest_dict(self) -> Dict[str, Any]:
        """Payload of ``GET /manifest`` (default model)."""
        return self.pool.get().manifest_dict()

    # -------------------------------------------------------------- feedback
    def feedback_request(
        self, payload: Dict[str, Any], key: Optional[str] = None
    ) -> Dict[str, Any]:
        """Serve one decoded ``POST /feedback`` body.

        Single-process servers submit straight into their own
        :class:`~repro.runtime.online.OnlineLearner`; prefork workers
        forward over the escalation channel to the supervisor (which owns
        the pool's single learner), so the 200 ack is only sent once the
        *parent* has the batch -- a worker SIGKILLed right after
        answering cannot lose acknowledged feedback.
        """
        body_key = payload.get("model")
        if body_key is not None and not isinstance(body_key, str):
            raise ServerError(400, '"model" must be a string routing key')
        effective_key = key if key is not None else body_key
        if "features" not in payload or "labels" not in payload:
            raise ServerError(
                400, 'request body must be {"features": [[...], ...], "labels": [...]}'
            )
        if self.cluster is not None:
            message = {"features": payload["features"], "labels": payload["labels"]}
            if effective_key is not None:
                message["model"] = effective_key
            try:
                return self.cluster.feedback(message)
            except ServerError:
                raise
            except Exception as error:
                raise ServerError(503, f"cluster feedback failed: {error}") from error
        if self.online is None:
            raise ServerError(
                503,
                "online learning is not enabled; restart with repro serve --online",
            )
        if effective_key is not None and effective_key != self.online.model_key:
            raise ServerError(
                404,
                f"feedback routes to model {self.online.model_key!r}; "
                f"unknown model {effective_key!r}",
            )
        try:
            return self.online.submit(payload["features"], payload["labels"])
        except (FeedbackError, ValueError) as error:
            status = feedback_error_status(error)
            headers = {"Retry-After": "1"} if status == 429 else None
            raise ServerError(status, str(error), headers=headers) from error

    # ------------------------------------------------------------ predicting
    @staticmethod
    def _as_feature_batch(features) -> np.ndarray:
        try:
            batch = np.asarray(features, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ValueError(f"features are not a numeric array: {error}") from error
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[0] == 0 or batch.shape[1] == 0:
            raise ValueError(
                f"features must be a non-empty (n, f) batch, got shape "
                f"{batch.shape}"
            )
        return batch

    def predict_request(
        self, payload: Dict[str, Any], key: Optional[str] = None
    ) -> Dict[str, Any]:
        """Serve one decoded ``/predict`` body, mapping failures to HTTP.

        ``key`` (from the URL path) outranks the body's ``model`` field.

        Raises
        ------
        ServerError
            With the definite status code and headers for the response.
        """
        if "features" not in payload:
            raise ServerError(400, 'request body must be {"features": [[...], ...]}')
        body_key = payload.get("model")
        if body_key is not None and not isinstance(body_key, str):
            raise ServerError(400, '"model" must be a string routing key')
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise ServerError(400, '"deadline_ms" must be a positive number')
        try:
            entry = self.pool.get(key if key is not None else body_key)
        except UnknownModelError as error:
            raise ServerError(404, str(error)) from error
        try:
            return self.predict_payload(
                payload["features"], entry=entry, deadline_ms=deadline_ms
            )
        except QueueFullError as error:
            retry_after = str(max(1, math.ceil(error.retry_after_s)))
            entry.stats.record_error(429)
            raise ServerError(
                429, str(error), headers={"Retry-After": retry_after}
            ) from error
        except DeadlineExceededError as error:
            entry.stats.record_error(503)
            raise ServerError(503, str(error)) from error
        except (SchedulerClosedError, FutureTimeoutError) as error:
            entry.stats.record_error(503)
            raise ServerError(503, f"server is shutting down: {error}") from error
        except ValueError as error:
            entry.stats.record_error(400)
            raise ServerError(400, str(error)) from error
        except Exception as error:  # dispatch failure: report, don't crash
            entry.stats.record_error(500)
            raise ServerError(500, f"prediction failed: {error}") from error

    def predict_payload(
        self,
        features,
        entry: Optional[ServedModel] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Serve one feature payload against one resolved model version.

        The ``entry`` snapshot is resolved once (default model when
        omitted) and used for the whole request, so the response is
        wholly produced by a single version even across a concurrent
        ``/reload``.  Successful calls are the **only** thing recorded
        into ``queries_per_second`` -- failures raise before any
        accounting happens (the PR 2 version's error/latency skew fix).

        Raises
        ------
        ValueError
            When ``features`` is not a non-empty ``(n, f)`` numeric batch.
        repro.runtime.scheduler.SchedulerError
            Queue-full / deadline / closed admission failures.
        """
        if entry is None:
            entry = self.pool.get()
        batch = self._as_feature_batch(features)
        expected_width = entry.num_features
        if expected_width is not None and batch.shape[1] != expected_width:
            # Reject at admission: coalesced into a micro-batch, a
            # wrong-width request would fail its batchmates too.
            raise ValueError(
                f"features have {batch.shape[1]} columns but model "
                f"{entry.key!r} expects {expected_width}"
            )
        start = time.perf_counter()
        labels = entry.predict(
            batch, deadline_ms=deadline_ms, timeout=DISPATCH_TIMEOUT_S
        )
        elapsed = time.perf_counter() - start
        self.stats.record_predict(batch.shape[0], elapsed)
        entry.stats.record_predict(batch.shape[0], elapsed)
        return {
            "labels": [int(label) for label in labels],
            "count": int(batch.shape[0]),
            "elapsed_ms": 1000.0 * elapsed,
            "model": entry.key,
            "artifact": entry.resolved_spec,
            "version": entry.version,
        }

    # -------------------------------------------------------------- reloading
    def reload_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one decoded ``POST /reload`` body.

        Body fields: ``model`` (routing key; default model when omitted)
        and ``spec`` (registry ``name[:tag]``; the entry's original spec
        when omitted, so ``latest`` entries re-resolve to the newest tag).
        """
        key = payload.get("model")
        spec = payload.get("spec")
        if key is not None and not isinstance(key, str):
            raise ServerError(400, '"model" must be a string routing key')
        if spec is not None and not isinstance(spec, str):
            raise ServerError(400, '"spec" must be a registry name[:tag] string')
        try:
            entry = self.pool.reload(key, spec=spec)
        except UnknownModelError as error:
            raise ServerError(404, str(error)) from error
        except PoolError as error:
            raise ServerError(400, str(error)) from error
        except Exception as error:  # registry/checkpoint failures
            raise ServerError(400, f"reload failed: {error}") from error
        response = entry.describe()
        response["status"] = "reloaded"
        return response

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelServer(models={self.pool.keys()}, "
            f"engine={self.pool.engine!r}, url={self.url!r})"
        )
