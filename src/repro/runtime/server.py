"""Long-lived model-serving daemon (``repro serve``).

Every ``repro predict`` invocation used to pay the full training cost
before answering a single query.  This module pairs the checkpoint
subsystem (:mod:`repro.io`) with the batched
:class:`repro.runtime.pipeline.InferencePipeline` to keep a **warm,
resident model** behind a plain-HTTP JSON API, so throughput numbers come
from serving, not retraining:

* **stdlib only** -- the daemon is ``http.server.ThreadingHTTPServer``
  underneath; there is nothing to install on a serving host beyond this
  package;
* **warm pipeline** -- the checkpointed model is loaded once, the packed
  associative memory and encoder state are built up front
  (:meth:`InferencePipeline.warmup`), and every request is served by the
  selected similarity engine;
* **threaded** -- each connection is handled on its own thread; the numpy
  and popcount kernels release the GIL, so concurrent clients scale on
  multi-core hosts.

Endpoints (all JSON):

``GET /healthz``
    Liveness: model family, engine, uptime.
``GET /stats``
    Serving counters: requests, queries, errors, wall time in ``predict``,
    end-to-end queries/second.
``GET /manifest``
    The loaded checkpoint's manifest (empty object when the server was
    built around an in-process model).
``POST /predict``
    Body ``{"features": [[...], ...]}`` (one row per query); responds
    ``{"labels": [...], "count": n, "elapsed_ms": t}``.

Typical use::

    server = ModelServer(model, engine="packed", port=0)
    server.start()                      # background thread, ephemeral port
    ... requests against server.url ...
    server.shutdown()

or, blocking (what ``repro serve`` does)::

    ModelServer(model, port=8000).serve_forever()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

import numpy as np

from repro.runtime.pipeline import InferencePipeline

#: Largest accepted ``/predict`` request body.  Generous for feature
#: batches (a 1024 x 784 float batch serializes to ~20 MB of JSON) while
#: bounding what one request can make a handler thread buffer.
MAX_REQUEST_BYTES = 256 * 1024 * 1024


class ServerStats:
    """Thread-safe serving counters exposed on ``GET /stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_unix = time.time()
        self.requests = 0
        self.queries = 0
        self.errors = 0
        self.predict_seconds = 0.0

    def record_predict(self, queries: int, seconds: float) -> None:
        """Account one successful ``/predict`` call."""
        with self._lock:
            self.requests += 1
            self.queries += int(queries)
            self.predict_seconds += float(seconds)

    def record_error(self) -> None:
        """Account one failed request (bad payload, unknown route, ...)."""
        with self._lock:
            self.requests += 1
            self.errors += 1

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of the counters (plus derived throughput)."""
        with self._lock:
            predict_seconds = self.predict_seconds
            queries = self.queries
            return {
                "uptime_s": time.time() - self.started_unix,
                "requests": self.requests,
                "queries": queries,
                "errors": self.errors,
                "predict_s": predict_seconds,
                "queries_per_second": (
                    queries / predict_seconds if predict_seconds > 0 else 0.0
                ),
            }


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning :class:`ModelServer`."""

    # Keep per-request chatter out of stderr; stats carry the signal.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def _service(self) -> "ModelServer":
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, status: int, message: str) -> None:
        self._service.stats.record_error()
        self._send_json(status, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self._service
        if self.path == "/healthz":
            self._send_json(200, service.health())
        elif self.path == "/stats":
            self._send_json(200, service.stats.as_dict())
        elif self.path == "/manifest":
            self._send_json(200, service.manifest_dict())
        elif self.path == "/predict":
            self._fail(405, "use POST for /predict")
        else:
            self._fail(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/predict":
            self._fail(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._fail(400, "invalid Content-Length")
            return
        if length < 0:
            # rfile.read(-1) would block until client EOF, hanging the
            # handler thread on a silent keep-alive connection.
            self._fail(400, "invalid Content-Length")
            return
        if length > MAX_REQUEST_BYTES:
            self._fail(413, f"request body exceeds {MAX_REQUEST_BYTES} bytes")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._fail(400, f"request body is not valid JSON: {error}")
            return
        if not isinstance(payload, dict) or "features" not in payload:
            self._fail(400, 'request body must be {"features": [[...], ...]}')
            return
        try:
            response = self._service.predict_payload(payload["features"])
        except ValueError as error:
            self._fail(400, str(error))
            return
        self._send_json(200, response)


class ModelServer:
    """A warm, resident model behind a threaded JSON-over-HTTP daemon.

    Parameters
    ----------
    model:
        A fitted classifier (typically restored via
        :func:`repro.io.checkpoint.load_checkpoint`).
    engine:
        Similarity engine for every served chunk (``"float"`` or
        ``"packed"``; packed requires a model wired for it).
    chunk_size / workers:
        Forwarded to :class:`InferencePipeline` (chunking bound and
        thread-pool width per request batch).
    manifest:
        Optional :class:`repro.io.checkpoint.CheckpointManifest` (or dict)
        exposed verbatim on ``GET /manifest``.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port (see
        :attr:`port` after construction) -- what the tests and examples
        use to avoid collisions.

    The constructor fully warms the pipeline, so the first request pays no
    lazy-initialization cost.
    """

    def __init__(
        self,
        model,
        engine: str = "float",
        chunk_size: int = 1024,
        workers: int = 1,
        manifest=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.model = model
        self.manifest = manifest
        self.pipeline = InferencePipeline(
            model, engine=engine, chunk_size=chunk_size, workers=workers
        )
        self.pipeline.warmup()
        self.stats = ServerStats()
        self._httpd = ThreadingHTTPServer((host, port), _RequestHandler)
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ----------------------------------------------------------- addressing
    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the ephemeral one when constructed with ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the daemon (e.g. ``http://127.0.0.1:8000``)."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (blocking)."""
        self._serving = True
        try:
            self._httpd.serve_forever()
        finally:
            self._serving = False

    def start(self) -> "ModelServer":
        """Serve on a daemon background thread; returns ``self``.

        Idempotent; used by tests and notebooks that need the calling
        thread back.
        """
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self.serve_forever, daemon=True)
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and release the socket (safe to call twice).

        ``BaseServer.shutdown`` blocks until ``serve_forever`` acknowledges,
        which would deadlock when the loop never ran, so it is only issued
        while a serving thread is (or may be about to start) running.
        """
        if self._serving or (self._thread is not None and self._thread.is_alive()):
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -------------------------------------------------------------- handlers
    def health(self) -> Dict[str, Any]:
        """Payload of ``GET /healthz``."""
        return {
            "status": "ok",
            "model": getattr(self.model, "name", type(self.model).__name__),
            "engine": self.pipeline.engine,
            "uptime_s": time.time() - self.stats.started_unix,
        }

    def manifest_dict(self) -> Dict[str, Any]:
        """Payload of ``GET /manifest``."""
        if self.manifest is None:
            return {}
        if isinstance(self.manifest, dict):
            return self.manifest
        return json.loads(self.manifest.to_json())

    def predict_payload(self, features) -> Dict[str, Any]:
        """Serve one ``/predict`` request body (already JSON-decoded).

        Raises
        ------
        ValueError
            When ``features`` is not interpretable as a non-empty
            ``(n, f)`` numeric batch (mapped to HTTP 400 by the handler).
        """
        try:
            batch = np.asarray(features, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ValueError(f"features are not a numeric array: {error}") from error
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[0] == 0 or batch.shape[1] == 0:
            raise ValueError(
                f"features must be a non-empty (n, f) batch, got shape "
                f"{batch.shape}"
            )
        start = time.perf_counter()
        labels = self.pipeline.predict(batch)
        elapsed = time.perf_counter() - start
        self.stats.record_predict(batch.shape[0], elapsed)
        return {
            "labels": [int(label) for label in labels],
            "count": int(batch.shape[0]),
            "elapsed_ms": 1000.0 * elapsed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelServer(model={type(self.model).__name__}, "
            f"engine={self.pipeline.engine!r}, url={self.url!r})"
        )
