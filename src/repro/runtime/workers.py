"""Prefork scale-out serving: one supervisor, N worker processes, one port.

Runtime v2 (:mod:`repro.runtime.server`) coalesces concurrent requests
into micro-batches, but the whole daemon is still one GIL-bound process:
its ceiling is a single core's popcount throughput.  This module removes
that ceiling with the classic prefork design -- a parent **supervisor**
forks N **workers**, each running the full ``BatchScheduler`` /
``ModelPool`` / HTTP stack of :class:`~repro.runtime.server.ModelServer`
against the *same* ``host:port``:

* **shared listening socket** -- with ``SO_REUSEPORT`` (Linux/BSD, the
  default where available) every worker binds its own socket to the one
  port and the kernel load-balances incoming connections between them;
  otherwise the supervisor binds + listens **once** before forking and
  every worker accepts on the inherited file descriptor, so the kernel
  accept queue -- and therefore the listener -- survives any worker's
  death;
* **shared model memory** -- workers load checkpoints through
  :func:`repro.io.checkpoint.load_mapped`, so the packed AM arrays are
  memory-mapped out of one on-disk extraction and every replica reads the
  same physical pages (N workers cost ~1x model RAM, not Nx);
* **lifecycle** -- the supervisor detects worker exits and respawns with
  exponential backoff, forwards SIGTERM as a graceful drain (stop
  accepting -> finish in-flight requests -> drain schedulers -> exit),
  and reaps everything on shutdown;
* **control plane** -- two :func:`multiprocessing.Pipe` pairs per worker.
  On the *control* channel the parent issues requests (``stats``,
  ``reload``, ``drain``) answered by a dedicated worker thread; on the
  *escalation* channel a worker's HTTP handler asks the parent to run a
  cluster-wide operation.  ``GET /stats`` on any worker therefore returns
  the **merged** view of every worker (nested per-worker under a
  ``workers`` key), and ``POST /reload`` fans out so each worker performs
  its own atomic swap-first-drain-second hot-swap;
* **continual learning** -- with ``WorkerConfig.online`` set, the
  supervisor owns the pool's single
  :class:`~repro.runtime.online.OnlineLearner`; workers forward
  ``POST /feedback`` over the escalation channel (the 200 ack means the
  *parent* buffered the batch, so a SIGKILLed worker loses nothing
  acknowledged) and gated promotions ride the ``/reload`` fan-out, with
  recorded reloads replayed onto respawned workers so the pool converges
  to one version.

The channels are distinct and independently locked, so the circular call
(worker HTTP handler -> parent -> that same worker's control thread)
cannot deadlock.

Typical use (what ``repro serve --workers N`` runs)::

    config = WorkerConfig(models=("demo:v1",), store=store_dir,
                          engine="packed")
    with WorkerSupervisor(config, port=8000, workers=4) as supervisor:
        ... traffic against supervisor.url ...

Requires the ``fork`` start method (POSIX); :class:`WorkerSupervisor`
raises ``RuntimeError`` elsewhere -- single-process ``ModelServer``
remains the portable path.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import socket
import threading
import time
import warnings
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.online import (
    FeedbackError,
    OnlineConfig,
    OnlineLearner,
    feedback_error_status,
)
from repro.runtime.server import ModelServer, ServerError

#: Parent-side timeout for one worker's answer on its control channel.
CONTROL_TIMEOUT_S = 30.0

#: Worker-side timeout for the parent's answer to an escalation.  Longer
#: than the control timeout: one escalation may fan out N control calls.
ESCALATION_TIMEOUT_S = 120.0

#: First respawn delay after a worker crash; doubles per consecutive
#: crash up to :data:`BACKOFF_CAP_S`.
BACKOFF_BASE_S = 0.25

#: Upper bound on the crash-respawn delay.
BACKOFF_CAP_S = 5.0

#: A worker that stayed alive this long resets its crash-backoff streak.
HEALTHY_UPTIME_S = 10.0


def fork_available() -> bool:
    """Whether this platform can run the prefork supervisor."""
    return "fork" in multiprocessing.get_all_start_methods()


def reuseport_available() -> bool:
    """Whether the kernel offers ``SO_REUSEPORT`` load balancing."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclasses.dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs to build its :class:`ModelServer`.

    Plain data (plus, optionally, an in-process model object inherited
    through ``fork``), so one instance describes every replica.

    Attributes
    ----------
    models / store:
        Registry specs (``name[:tag]``) served by every worker, loaded
        from the artifact store at ``store``.
    model / model_key / manifest:
        Alternative to specs: serve this in-process model object (the
        child inherits it copy-on-write through ``fork``).
    engine:
        Inference engine for every pipeline (``float`` / ``packed`` /
        ``pruned``).
    prune_topk:
        Shortlist width of the pruned engine (``None`` = per-model
        heuristic); only meaningful with ``engine="pruned"``.
    chunk_size / pipeline_threads:
        :class:`~repro.runtime.pipeline.InferencePipeline` settings
        (``pipeline_threads`` shards chunks *within* one micro-batch; the
        process-level parallelism comes from the worker count).
    batching / max_batch_size / max_wait_ms / queue_depth:
        Micro-batching and admission-control knobs, identical per worker.
    mapped:
        Load specs zero-copy via :func:`repro.io.checkpoint.load_mapped`
        (default: on -- the point of prefork is sharing those pages).
    drain_timeout:
        How long a draining worker waits for in-flight requests.
    online:
        :class:`~repro.runtime.online.OnlineConfig` enabling the
        continual-learning loop.  The **supervisor** owns the single
        :class:`~repro.runtime.online.OnlineLearner`; workers forward
        ``POST /feedback`` over their escalation channel and only ack
        once the parent has buffered the batch (so a SIGKILLed worker
        cannot lose acknowledged feedback), and promotions fan out
        through the ordinary cluster ``/reload`` path.
    """

    models: Tuple[str, ...] = ()
    store: Optional[str] = None
    model: Any = None
    model_key: str = "default"
    manifest: Any = None
    engine: str = "float"
    prune_topk: Optional[int] = None
    chunk_size: int = 1024
    pipeline_threads: int = 1
    batching: bool = True
    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    queue_depth: int = 128
    mapped: bool = True
    drain_timeout: float = 30.0
    online: Optional[OnlineConfig] = None


# --------------------------------------------------------------- worker side
class _SupervisorClient:
    """Worker-side proxy for cluster-wide operations (installed as
    ``ModelServer.cluster``).

    Every call is one request/response exchange on the escalation
    channel, serialized by a lock so concurrent HTTP handlers cannot
    interleave frames.
    """

    def __init__(self, conn) -> None:
        self._conn = conn
        self._lock = threading.Lock()
        self._seq = 0

    def notify_ready(self) -> None:
        """One-way readiness signal (no reply expected)."""
        with self._lock:
            self._conn.send({"op": "ready", "pid": os.getpid()})

    def _call(self, message: Dict[str, Any]) -> Any:
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._conn.send({**message, "seq": seq})
            deadline = time.monotonic() + ESCALATION_TIMEOUT_S
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._conn.poll(remaining):
                    raise TimeoutError("supervisor did not answer the escalation")
                reply = self._conn.recv()
                if reply.get("seq") == seq:
                    break
        if reply.get("ok"):
            return reply.get("value")
        raise ServerError(
            int(reply.get("status", 503)),
            str(reply.get("error", "cluster operation failed")),
        )

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "cluster_stats"})

    def reload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._call({"op": "cluster_reload", "payload": payload})

    def feedback(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Forward one ``/feedback`` batch to the supervisor's learner.

        Blocking request/response: the worker's 200 ack is only written
        after this returns, i.e. after the *parent* durably buffered the
        batch.
        """
        return self._call({"op": "online_feedback", "payload": payload})


def _serve_control(conn, server: ModelServer, stop, drain_requested) -> None:
    """Worker thread answering the parent's control requests.

    Runs on its own thread, so it stays responsive while HTTP handler
    threads block on an escalation (the two channels are what makes the
    parent<->worker call cycle deadlock-free).
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Parent went away; the orphan watchdog in _worker_main also
            # catches this, but reacting here is faster.
            drain_requested.set()
            stop.set()
            return
        op = message.get("op")
        try:
            if op == "ping":
                reply: Dict[str, Any] = {"ok": True, "pid": os.getpid()}
            elif op == "stats":
                reply = {"ok": True, "value": server.stats_dict()}
            elif op == "reload":
                try:
                    reply = {
                        "ok": True,
                        "value": server.reload_payload(message.get("payload") or {}),
                    }
                except ServerError as error:
                    reply = {"ok": False, "status": error.status, "error": str(error)}
            elif op == "drain":
                reply = {"ok": True}
            else:
                reply = {
                    "ok": False,
                    "status": 400,
                    "error": f"unknown control op {op!r}",
                }
        except Exception as error:  # never kill the control loop
            reply = {"ok": False, "status": 500, "error": str(error)}
        # Echo the request's sequence number so the parent can discard a
        # reply whose request it already timed out on (protocol stays in
        # sync even when one operation, e.g. a big reload, runs long).
        reply["seq"] = message.get("seq")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            drain_requested.set()
            stop.set()
            return
        if op == "drain":
            drain_requested.set()
            stop.set()
            return


def _worker_main(
    worker_id: int,
    config: WorkerConfig,
    host: str,
    port: int,
    listen_socket,
    reuse_port: bool,
    control_conn,
    escalation_conn,
    close_on_start,
) -> None:
    """Entry point of one forked worker process."""
    # Fork copies every open descriptor; drop the ones that belong to the
    # parent (other workers' pipe ends, the reuseport placeholder) so a
    # sibling's death is visible as EOF where it should be.
    for resource in close_on_start:
        try:
            resource.close()
        except OSError:
            pass

    stop = threading.Event()
    drain_requested = threading.Event()

    def _on_sigterm(signum, frame):
        drain_requested.set()
        stop.set()

    signal.signal(signal.SIGTERM, _on_sigterm)
    # Ctrl-C lands on the whole foreground process group; the parent
    # coordinates the drain, workers must not race it with their own exit.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    registry = None
    if config.store is not None:
        from repro.io.registry import ArtifactRegistry

        registry = ArtifactRegistry(config.store)

    server = ModelServer(
        model=config.model,
        models=list(config.models) or None,
        registry=registry,
        engine=config.engine,
        prune_topk=config.prune_topk,
        chunk_size=config.chunk_size,
        workers=config.pipeline_threads,
        manifest=config.manifest,
        host=host,
        port=port,
        listen_socket=listen_socket,
        reuse_port=reuse_port,
        batching=config.batching,
        max_batch_size=config.max_batch_size,
        max_wait_ms=config.max_wait_ms,
        queue_depth=config.queue_depth,
        model_key=config.model_key,
        mapped=config.mapped,
        worker_id=worker_id,
    )
    client = _SupervisorClient(escalation_conn)
    server.cluster = client
    threading.Thread(
        target=_serve_control,
        args=(control_conn, server, stop, drain_requested),
        daemon=True,
        name=f"worker-{worker_id}-control",
    ).start()
    server.start()
    client.notify_ready()

    # Main thread: wait for a stop signal, watching for orphaning (a
    # crashed parent re-parents us; drain and leave instead of serving a
    # half-dead cluster forever).
    parent_pid = os.getppid()
    while not stop.wait(0.5):
        if os.getppid() != parent_pid:
            drain_requested.set()
            stop.set()
    if drain_requested.is_set():
        server.drain(config.drain_timeout)
    else:
        server.shutdown()


# --------------------------------------------------------------- parent side
class _WorkerSlot:
    """Parent-side bookkeeping for one worker position (0..N-1)."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.control_conn = None
        self.escalation_conn = None
        self.control_lock = threading.Lock()
        self.ready = threading.Event()
        self.failures = 0
        self.started_at = 0.0
        self.control_seq = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def close_conns(self) -> None:
        for conn in (self.control_conn, self.escalation_conn):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.control_conn = None
        self.escalation_conn = None


class WorkerSupervisor:
    """Parent of a prefork worker pool serving one ``host:port``.

    Parameters
    ----------
    config:
        The :class:`WorkerConfig` every worker builds its server from.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, resolved before
        the first fork so every worker (and :attr:`url`) agrees on it.
    workers:
        Number of worker processes (>= 1).
    socket_mode:
        ``"reuseport"`` (each worker binds its own ``SO_REUSEPORT``
        socket), ``"inherit"`` (the supervisor binds + listens once,
        workers accept on the inherited descriptor -- the listener then
        survives even a SIGKILLed worker), or ``"auto"`` (default):
        reuseport where available, inherit otherwise.
    respawn:
        Replace crashed workers (exponential backoff,
        :data:`BACKOFF_BASE_S` .. :data:`BACKOFF_CAP_S`).  Disable for
        tests that assert on death.
    start_timeout:
        Seconds to wait in :meth:`start` for every worker to come up.
    drain_timeout:
        Seconds :meth:`shutdown` waits for graceful worker exits before
        escalating to SIGKILL.

    The supervisor serves no HTTP itself; it owns the port, the worker
    lifecycle, the merged ``/stats`` view and the ``/reload`` fan-out.
    """

    def __init__(
        self,
        config: WorkerConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        socket_mode: str = "auto",
        respawn: bool = True,
        start_timeout: float = 60.0,
        drain_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if config.model is None and not config.models:
            raise ValueError("WorkerConfig needs registry specs or a model object")
        if config.models and config.store is None:
            raise ValueError("WorkerConfig with registry specs needs a store path")
        if config.online is not None and not config.models:
            raise ValueError(
                "online learning requires registry specs (checkpoints must "
                "round-trip through the artifact registry)"
            )
        if socket_mode not in ("auto", "reuseport", "inherit"):
            raise ValueError(f"unknown socket_mode {socket_mode!r}")
        if not fork_available():
            raise RuntimeError(
                "prefork serving requires the 'fork' start method; use a "
                "single-process ModelServer on this platform"
            )
        if socket_mode == "reuseport" and not reuseport_available():
            raise ValueError("SO_REUSEPORT is not available on this platform")
        if socket_mode == "auto":
            socket_mode = "reuseport" if reuseport_available() else "inherit"
        self.config = config
        self.host = host
        self.workers = int(workers)
        self.socket_mode = socket_mode
        self.respawn = bool(respawn)
        self.start_timeout = float(start_timeout)
        self.drain_timeout = float(drain_timeout)
        self._requested_port = int(port)
        self._ctx = multiprocessing.get_context("fork")
        self._listener: Optional[socket.socket] = None
        self._slots: Dict[int, _WorkerSlot] = {}
        self._slots_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._started = False
        self._respawns = 0
        self.port = 0
        #: The pool's single continual-learning loop (``config.online``).
        self._online: Optional[OnlineLearner] = None
        #: Last successful ``/reload`` payload per routing key, replayed
        #: to respawned workers so they converge to the promoted (or
        #: rolled-back) version instead of re-resolving from scratch.
        self._last_reload: Dict[Optional[str], Dict[str, Any]] = {}

    # ------------------------------------------------------------ addressing
    @property
    def url(self) -> str:
        """Base URL of the worker pool (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerSupervisor":
        """Bind the port, fork every worker, wait until all are serving.

        Raises
        ------
        RuntimeError
            When a worker dies before becoming ready (e.g. its model
            failed to load) or readiness times out; everything spawned so
            far is torn down first.
        """
        if self._started:
            return self
        self._bind()
        try:
            for worker_id in range(self.workers):
                self._slots[worker_id] = self._spawn(worker_id)
            self._await_ready()
            if self.config.online is not None:
                # The learner is created after the workers are serving so
                # its very first promotion already has a pool to fan out
                # to.  It lives in the parent: one shadow model for the
                # whole pool, and feedback acked only once it is here.
                from repro.io.registry import ArtifactRegistry

                spec = self.config.models[0]
                self._online = OnlineLearner(
                    ArtifactRegistry(self.config.store),
                    spec,
                    self.config.online,
                    promote=self.reload,
                    model_key=spec.split(":", 1)[0],
                )
                self._online.start()
        except BaseException:
            self._stop.set()
            self._kill_all()
            self._close_listener()
            raise
        self._monitor_thread = threading.Thread(
            target=self._monitor, daemon=True, name="worker-supervisor"
        )
        self._monitor_thread.start()
        self._started = True
        return self

    def _bind(self) -> None:
        """Resolve the port and create the shared socket for our mode.

        * ``inherit``: one listening socket, inherited by every fork; the
          kernel accept queue outlives any single worker.
        * ``reuseport``: a bound (never listening) placeholder that pins
          the ephemeral port for the supervisor's lifetime, so respawned
          workers can always rebind it; only *listening* sockets receive
          connections, so the placeholder never swallows traffic.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.socket_mode == "reuseport":
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            listener.bind((self.host, self._requested_port))
            if self.socket_mode == "inherit":
                listener.listen(128)
        except BaseException:
            listener.close()
            raise
        self._listener = listener
        self.port = int(listener.getsockname()[1])

    def _spawn(self, worker_id: int) -> _WorkerSlot:
        slot = self._slots.get(worker_id) or _WorkerSlot(worker_id)
        slot.ready = threading.Event()
        control_parent, control_child = self._ctx.Pipe()
        escalation_parent, escalation_child = self._ctx.Pipe()
        # The child inherits every parent-held descriptor; tell it which
        # ones to close (all parent pipe ends + the reuseport placeholder)
        # so each worker holds only its own channel ends.
        close_on_start: List[Any] = [control_parent, escalation_parent]
        with self._slots_lock:
            for other in self._slots.values():
                for conn in (other.control_conn, other.escalation_conn):
                    if conn is not None:
                        close_on_start.append(conn)
        inherited = self._listener if self.socket_mode == "inherit" else None
        if self.socket_mode == "reuseport" and self._listener is not None:
            close_on_start.append(self._listener)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.config,
                self.host,
                self.port,
                inherited,
                self.socket_mode == "reuseport",
                control_child,
                escalation_child,
                close_on_start,
            ),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        with warnings.catch_warnings():
            # Respawns fork from the monitor thread; CPython >= 3.12
            # warns about fork()+threads, which is exactly the contained
            # trade-off prefork makes (children only run our code).
            warnings.simplefilter("ignore", DeprecationWarning)
            process.start()
        control_child.close()
        escalation_child.close()
        slot.process = process
        slot.control_conn = control_parent
        slot.escalation_conn = escalation_parent
        slot.started_at = time.monotonic()
        threading.Thread(
            target=self._serve_escalations,
            args=(slot, escalation_parent),
            daemon=True,
            name=f"worker-{worker_id}-escalations",
        ).start()
        return slot

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.start_timeout
        for slot in self._slots.values():
            while not slot.ready.wait(timeout=0.05):
                if not slot.alive():
                    code = slot.process.exitcode
                    raise RuntimeError(
                        f"worker {slot.worker_id} exited with code {code} "
                        "before becoming ready (bad model spec or store?)"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {slot.worker_id} not ready after "
                        f"{self.start_timeout:.0f}s"
                    )

    def _monitor(self) -> None:
        """Reap dead workers and respawn them with exponential backoff."""
        while not self._stop.is_set():
            with self._slots_lock:
                sentinels = {
                    slot.process.sentinel: slot
                    for slot in self._slots.values()
                    if slot.process is not None and slot.process.is_alive()
                }
            if not sentinels:
                if self._stop.wait(0.25):
                    return
                continue
            for obj in _connection_wait(list(sentinels), timeout=0.25):
                if self._stop.is_set():
                    return
                self._handle_exit(sentinels[obj])

    def _handle_exit(self, slot: _WorkerSlot) -> None:
        process = slot.process
        if process is None:
            return
        process.join(timeout=1.0)
        uptime = time.monotonic() - slot.started_at
        slot.ready.clear()
        slot.close_conns()
        if not self.respawn or self._stop.is_set():
            return
        slot.failures = 1 if uptime >= HEALTHY_UPTIME_S else slot.failures + 1
        delay = min(BACKOFF_BASE_S * (2 ** (slot.failures - 1)), BACKOFF_CAP_S)
        if self._stop.wait(delay):
            return
        self._respawns += 1
        with self._slots_lock:
            self._slots[slot.worker_id] = slot
        self._spawn(slot.worker_id)
        if self._stop.is_set():
            # Shutdown raced the respawn; don't leak the replacement.
            self._kill_all()
            return
        if self._last_reload:
            # The replacement re-resolved its specs from the config; any
            # reload that happened since (an online promotion, a manual
            # rollback to a pinned tag) must be replayed so the pool
            # converges back to one version.
            threading.Thread(
                target=self._resync_worker,
                args=(slot,),
                daemon=True,
                name=f"worker-{slot.worker_id}-resync",
            ).start()

    def _resync_worker(self, slot: _WorkerSlot) -> None:
        """Replay recorded reloads onto a freshly respawned worker."""
        if not slot.ready.wait(timeout=self.start_timeout):
            return
        for payload in list(self._last_reload.values()):
            try:
                self._control_request(
                    slot,
                    {"op": "reload", "payload": dict(payload)},
                    timeout=CONTROL_TIMEOUT_S,
                )
            except (OSError, EOFError, TimeoutError, BrokenPipeError):
                return

    def shutdown(self, drain: bool = True) -> None:
        """Stop the pool: drain (or kill) workers, release the port.

        ``drain=True`` sends SIGTERM and gives each worker
        ``drain_timeout`` seconds to finish in-flight requests and empty
        its schedulers; stragglers are SIGKILLed.  Idempotent.
        """
        if self._online is not None:
            # Fold + persist the feedback backlog while the workers are
            # still up -- a final gated promotion can still fan out, and
            # the drain-flush checkpoint makes acked feedback durable.
            self._online.stop(drain=drain)
        self._stop.set()
        with self._slots_lock:
            slots = list(self._slots.values())
        if drain:
            for slot in slots:
                if slot.alive():
                    slot.process.terminate()  # SIGTERM -> graceful drain
            deadline = time.monotonic() + self.drain_timeout + 5.0
            for slot in slots:
                if slot.process is not None:
                    slot.process.join(timeout=max(0.1, deadline - time.monotonic()))
        self._kill_all()
        self._close_listener()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        self._started = False

    def _kill_all(self) -> None:
        with self._slots_lock:
            slots = list(self._slots.values())
        for slot in slots:
            if slot.alive():
                slot.process.kill()
            if slot.process is not None:
                slot.process.join(timeout=5.0)
            slot.close_conns()

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def wait(self) -> None:
        """Block until :meth:`request_shutdown` / :meth:`shutdown`.

        The CLI parks its main thread here; a signal handler only has to
        call :meth:`request_shutdown` (async-signal-safe: sets an event).
        """
        self._stop.wait()

    def request_shutdown(self) -> None:
        """Unblock :meth:`wait` without doing any teardown work yet."""
        self._stop.set()

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ---------------------------------------------------------- introspection
    def worker_pids(self) -> Dict[int, int]:
        """Live worker PIDs by worker id (tests, diagnostics)."""
        with self._slots_lock:
            return {
                slot.worker_id: slot.process.pid
                for slot in self._slots.values()
                if slot.alive()
            }

    def alive_count(self) -> int:
        with self._slots_lock:
            return sum(1 for slot in self._slots.values() if slot.alive())

    @property
    def respawns(self) -> int:
        """How many crashed workers have been replaced so far."""
        return self._respawns

    # ---------------------------------------------------------- control plane
    def _live_slots(self) -> List[_WorkerSlot]:
        with self._slots_lock:
            return [
                slot
                for slot in sorted(self._slots.values(), key=lambda s: s.worker_id)
                if slot.alive() and slot.control_conn is not None
            ]

    def _control_request(
        self, slot: _WorkerSlot, message: Dict[str, Any], timeout: float
    ) -> Dict[str, Any]:
        with slot.control_lock:
            conn = slot.control_conn
            if conn is None:
                raise BrokenPipeError(f"worker {slot.worker_id} has no control link")
            slot.control_seq += 1
            seq = slot.control_seq
            conn.send({**message, "seq": seq})
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(remaining):
                    raise TimeoutError(
                        f"worker {slot.worker_id} control request timed out"
                    )
                reply = conn.recv()
                # Replies to requests we previously timed out on are
                # drained and dropped here, keeping the channel in sync.
                if reply.get("seq") == seq:
                    return reply

    def _serve_escalations(self, slot: _WorkerSlot, conn) -> None:
        """Parent thread answering one worker's cluster-wide requests."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            op = message.get("op")
            if op == "ready":
                slot.ready.set()
                continue
            try:
                if op == "cluster_stats":
                    reply: Dict[str, Any] = {"ok": True, "value": self.stats()}
                elif op == "cluster_reload":
                    reply = {
                        "ok": True,
                        "value": self.reload(message.get("payload") or {}),
                    }
                elif op == "online_feedback":
                    reply = {
                        "ok": True,
                        "value": self.submit_feedback(message.get("payload") or {}),
                    }
                else:
                    reply = {
                        "ok": False,
                        "status": 400,
                        "error": f"unknown escalation op {op!r}",
                    }
            except ServerError as error:
                reply = {"ok": False, "status": error.status, "error": str(error)}
            except Exception as error:
                reply = {"ok": False, "status": 500, "error": str(error)}
            reply["seq"] = message.get("seq")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return

    def stats(self) -> Dict[str, Any]:
        """The merged cluster view served on any worker's ``GET /stats``.

        Polls every live worker's local counters over its control channel
        and merges them: summed server/model counters, per-status error
        breakdowns, total queue depth, recomputed ``queries_per_second``,
        plus the raw per-worker payloads under ``workers`` and pool
        health (``workers_alive`` / ``workers_total`` / ``respawns``).
        Workers dying mid-scrape are skipped, not fatal.
        """
        snapshots: Dict[int, Dict[str, Any]] = {}
        for slot in self._live_slots():
            try:
                reply = self._control_request(
                    slot, {"op": "stats"}, timeout=CONTROL_TIMEOUT_S
                )
            except (OSError, EOFError, TimeoutError, BrokenPipeError):
                continue
            if reply.get("ok"):
                snapshots[slot.worker_id] = reply["value"]
        if not snapshots:
            raise ServerError(503, "no live workers to report stats")
        return _merge_worker_stats(
            snapshots,
            workers_total=self.workers,
            respawns=self._respawns,
            online=self._online.stats() if self._online is not None else None,
        )

    def submit_feedback(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Buffer one ``/feedback`` batch into the pool's learner.

        The escalation handler of the workers' forwarded requests; maps
        learner failures to the same statuses the single-process server
        uses.
        """
        if self._online is None:
            raise ServerError(
                503,
                "online learning is not enabled; restart with repro serve --online",
            )
        key = payload.get("model")
        if key is not None and key != self._online.model_key:
            raise ServerError(
                404,
                f"feedback routes to model {self._online.model_key!r}; "
                f"unknown model {key!r}",
            )
        try:
            return self._online.submit(
                payload.get("features"), payload.get("labels")
            )
        except (FeedbackError, ValueError) as error:
            raise ServerError(feedback_error_status(error), str(error)) from error

    def reload(self, payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Fan ``POST /reload`` out to every live worker.

        Each worker performs its own atomic swap-first-drain-second
        reload, so its responses stay wholly one version throughout.
        Fan-outs are serialized (one cluster reload at a time).  The
        response is the reloaded entry (as in single-process mode) plus a
        ``workers`` map of per-worker results; if only some workers
        failed, ``status`` is ``"partial"`` and ``failed_workers`` names
        them -- if all failed, the first failure's status code is raised.
        """
        payload = dict(payload or {})
        results: Dict[int, Dict[str, Any]] = {}
        failures: Dict[int, Dict[str, Any]] = {}
        with self._reload_lock:
            slots = self._live_slots()
            if not slots:
                raise ServerError(503, "no live workers to reload")
            for slot in slots:
                try:
                    reply = self._control_request(
                        slot,
                        {"op": "reload", "payload": payload},
                        timeout=CONTROL_TIMEOUT_S,
                    )
                except (OSError, EOFError, TimeoutError, BrokenPipeError) as error:
                    failures[slot.worker_id] = {"status": 503, "error": str(error)}
                    continue
                if reply.get("ok"):
                    results[slot.worker_id] = reply["value"]
                else:
                    failures[slot.worker_id] = {
                        "status": int(reply.get("status", 500)),
                        "error": str(reply.get("error", "reload failed")),
                    }
        if not results:
            first = next(iter(failures.values()))
            raise ServerError(int(first["status"]), str(first["error"]))
        # Remember the winning payload (keyed by routing key) so a worker
        # respawned later converges to this same version (promotion and
        # rollback both land here).
        self._last_reload[payload.get("model")] = dict(payload)
        response = dict(next(iter(sorted(results.items())))[1])
        response["status"] = "reloaded" if not failures else "partial"
        response["workers"] = {
            str(worker_id): result for worker_id, result in sorted(results.items())
        }
        if failures:
            response["failed_workers"] = {
                str(worker_id): failure
                for worker_id, failure in sorted(failures.items())
            }
        return response

    def drain_worker(self, worker_id: int) -> bool:
        """Ask one worker to drain and exit (tests, rolling restarts)."""
        with self._slots_lock:
            slot = self._slots.get(worker_id)
        if slot is None or not slot.alive():
            return False
        try:
            reply = self._control_request(
                slot, {"op": "drain"}, timeout=CONTROL_TIMEOUT_S
            )
        except (OSError, EOFError, TimeoutError, BrokenPipeError):
            return False
        return bool(reply.get("ok"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerSupervisor(workers={self.workers}, url={self.url!r}, "
            f"mode={self.socket_mode!r}, alive={self.alive_count()})"
        )


# ------------------------------------------------------------------- merging
def _merge_worker_stats(
    snapshots: Dict[int, Dict[str, Any]],
    workers_total: int,
    respawns: int,
    online: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge per-worker ``stats_dict`` payloads into the cluster view."""
    merged: Dict[str, Any] = {
        "requests": 0,
        "queries": 0,
        "errors": 0,
        "errors_by_status": {},
        "predict_s": 0.0,
        "uptime_s": 0.0,
        "queue_depth": 0,
        "batching": False,
    }
    models: Dict[str, Dict[str, Any]] = {}
    for _, snapshot in sorted(snapshots.items()):
        for counter in ("requests", "queries", "errors"):
            merged[counter] += int(snapshot.get(counter, 0))
        merged["predict_s"] += float(snapshot.get("predict_s", 0.0))
        merged["queue_depth"] += int(snapshot.get("queue_depth", 0))
        merged["uptime_s"] = max(
            merged["uptime_s"], float(snapshot.get("uptime_s", 0.0))
        )
        merged["batching"] = bool(snapshot.get("batching", merged["batching"]))
        for status, count in (snapshot.get("errors_by_status") or {}).items():
            merged["errors_by_status"][status] = merged["errors_by_status"].get(
                status, 0
            ) + int(count)
        for key, entry in (snapshot.get("models") or {}).items():
            into = models.get(key)
            if into is None:
                into = {
                    "key": entry.get("key", key),
                    "spec": entry.get("spec"),
                    "artifact": entry.get("artifact"),
                    "engine": entry.get("engine"),
                    "num_features": entry.get("num_features"),
                    "version": 0,
                    "versions": set(),
                    "requests": 0,
                    "queries": 0,
                    "errors": 0,
                    "errors_by_status": {},
                    "predict_s": 0.0,
                    "queue_depth": 0,
                    "pruned": None,
                }
                models[key] = into
            for counter in ("requests", "queries", "errors"):
                into[counter] += int(entry.get(counter, 0))
            into["predict_s"] += float(entry.get("predict_s", 0.0))
            into["queue_depth"] += int(entry.get("queue_depth", 0))
            for status, count in (entry.get("errors_by_status") or {}).items():
                into["errors_by_status"][status] = into["errors_by_status"].get(
                    status, 0
                ) + int(count)
            prune_entry = entry.get("pruned")
            if prune_entry:
                into_pruned = into["pruned"]
                if into_pruned is None:
                    # Counters sum across workers; the configuration
                    # fields (prune_topk) are identical per replica.
                    into_pruned = {k: 0 for k in prune_entry}
                    into_pruned["prune_topk"] = prune_entry.get("prune_topk")
                    into["pruned"] = into_pruned
                for field, value in prune_entry.items():
                    if field == "prune_topk":
                        continue
                    if field == "prune_ratio":
                        continue  # recomputed from the summed counters
                    into_pruned[field] = into_pruned.get(field, 0) + value
            version = int(entry.get("version", 0))
            into["versions"].add(version)
            if version > into["version"]:
                into["version"] = version
                into["artifact"] = entry.get("artifact", into["artifact"])
    for entry in models.values():
        entry["versions"] = sorted(entry["versions"])
        entry["queries_per_second"] = (
            entry["queries"] / entry["predict_s"] if entry["predict_s"] > 0 else 0.0
        )
        if entry["pruned"] is not None:
            full = entry["pruned"].get("rows_full_scan", 0)
            entry["pruned"]["prune_ratio"] = (
                1.0 - entry["pruned"].get("rows_scored", 0) / full if full else 0.0
            )
    merged["queries_per_second"] = (
        merged["queries"] / merged["predict_s"] if merged["predict_s"] > 0 else 0.0
    )
    merged["models"] = models
    # The supervisor owns the pool's one learner; workers report a
    # disabled block locally, the cluster view carries the real one.
    merged["online"] = online if online is not None else {"enabled": False}
    merged["workers"] = {
        str(worker_id): snapshot for worker_id, snapshot in sorted(snapshots.items())
    }
    merged["workers_alive"] = len(snapshots)
    merged["workers_total"] = int(workers_total)
    merged["respawns"] = int(respawns)
    return merged
