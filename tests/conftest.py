"""Shared fixtures for the test suite.

All fixtures are deliberately small (tens of features, a few hundred
samples) so the whole suite runs in well under a minute while still
exercising every code path, including multi-tile IMC mappings and the
multi-round cluster-allocation loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset


@pytest.fixture(scope="session")
def rng():
    """Session-scoped deterministic generator for ad-hoc draws."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small 4-class multi-modal dataset (fast, non-trivial)."""
    spec = SyntheticSpec(
        num_classes=4,
        num_features=24,
        train_per_class=60,
        test_per_class=20,
        modes_per_class=3,
        latent_dim=8,
        class_separation=3.0,
        noise_scale=0.3,
    )
    return make_synthetic_dataset("tiny", spec, rng=7)


@pytest.fixture(scope="session")
def tiny_hard_dataset():
    """A harder 6-class dataset used by the comparison tests."""
    spec = SyntheticSpec(
        num_classes=6,
        num_features=32,
        train_per_class=80,
        test_per_class=25,
        modes_per_class=4,
        latent_dim=10,
        class_separation=2.5,
        noise_scale=0.45,
    )
    return make_synthetic_dataset("tiny-hard", spec, rng=11)


@pytest.fixture(scope="session")
def memhd_config():
    """A small MEMHD configuration matched to the tiny dataset."""
    return MEMHDConfig(
        dimension=64,
        columns=32,
        cluster_ratio=0.75,
        epochs=8,
        learning_rate=0.05,
        seed=3,
    )


@pytest.fixture(scope="session")
def trained_memhd(tiny_dataset, memhd_config):
    """A MEMHD model trained once and shared by read-only tests."""
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        memhd_config,
        rng=21,
    )
    history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model, history


@pytest.fixture()
def encoded_training_data(tiny_dataset):
    """Binary encoded hypervectors of the tiny dataset's training split."""
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        MEMHDConfig(dimension=48, columns=16, epochs=0, seed=5),
        rng=5,
    )
    encoded = model.encode_binary(tiny_dataset.train_features)
    return encoded.astype(np.float64), tiny_dataset.train_labels.copy()
