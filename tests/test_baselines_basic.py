"""Unit tests for repro.baselines.basic_hdc."""

import numpy as np
import pytest

from repro.baselines import BasicHDC, BasicHDCConfig


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    model = BasicHDC(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        BasicHDCConfig(dimension=256, refine_epochs=5, seed=1),
    )
    history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model, history


class TestConfig:
    def test_defaults(self):
        config = BasicHDCConfig()
        assert config.dimension == 2048
        assert config.refine_epochs == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0},
            {"refine_epochs": -1},
            {"learning_rate": 0.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            BasicHDCConfig(**kwargs)


class TestBasicHDC:
    def test_name(self):
        assert BasicHDC(4, 2).name == "BasicHDC"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BasicHDC(0, 3)
        with pytest.raises(ValueError):
            BasicHDC(3, 0)

    def test_predict_before_fit_raises(self):
        model = BasicHDC(5, 2, BasicHDCConfig(dimension=32))
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 5)))

    def test_history_has_initial_accuracy(self, fitted):
        _, history = fitted
        assert history.initial_accuracy is not None
        assert 0.0 <= history.initial_accuracy <= 1.0

    def test_history_length_matches_refine_epochs(self, fitted):
        _, history = fitted
        assert history.epochs == 5

    def test_predictions_are_valid_labels(self, fitted, tiny_dataset):
        model, _ = fitted
        predictions = model.predict(tiny_dataset.test_features)
        assert predictions.shape == (tiny_dataset.num_test,)
        assert predictions.min() >= 0
        assert predictions.max() < tiny_dataset.num_classes

    def test_better_than_chance(self, fitted, tiny_dataset):
        model, _ = fitted
        acc = model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
        assert acc > 1.5 / tiny_dataset.num_classes

    def test_single_sample_prediction(self, fitted, tiny_dataset):
        model, _ = fitted
        single = model.predict(tiny_dataset.test_features[0])
        assert single.shape == (1,)

    def test_binary_am_alphabet(self, fitted):
        model, _ = fitted
        am = model.associative_memory
        assert set(np.unique(am)) <= {-1.0, 1.0}

    def test_fp_am_option(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=128, binary_am=False, seed=2),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert not set(np.unique(model.associative_memory)) <= {-1.0, 1.0}

    def test_am_shape(self, fitted, tiny_dataset):
        model, _ = fitted
        assert model.associative_memory.shape == (tiny_dataset.num_classes, 256)

    def test_memory_report_matches_table1(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=512),
        )
        report = model.memory_report()
        assert report.encoder_bits == tiny_dataset.num_features * 512
        assert report.am_bits == tiny_dataset.num_classes * 512

    def test_deterministic_given_seed(self, tiny_dataset):
        def run():
            model = BasicHDC(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                BasicHDCConfig(dimension=128, refine_epochs=2, seed=11),
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.predict(tiny_dataset.test_features)

        assert np.array_equal(run(), run())

    def test_refinement_does_not_hurt_training_accuracy_much(self, tiny_dataset):
        plain = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=256, refine_epochs=0, seed=3),
        )
        refined = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=256, refine_epochs=8, seed=3),
        )
        plain_hist = plain.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        refined_hist = refined.fit(
            tiny_dataset.train_features, tiny_dataset.train_labels
        )
        assert (
            refined_hist.final_train_accuracy
            >= plain_hist.final_train_accuracy - 0.05
        )

    def test_fit_rejects_bad_inputs(self, tiny_dataset):
        model = BasicHDC(tiny_dataset.num_features, tiny_dataset.num_classes)
        with pytest.raises(ValueError):
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels[:-1])
        with pytest.raises(ValueError):
            model.fit(tiny_dataset.train_features[:, :-1].ravel(), tiny_dataset.train_labels)

    def test_validation_history(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=128, refine_epochs=3, seed=4),
        )
        history = model.fit(
            tiny_dataset.train_features,
            tiny_dataset.train_labels,
            validation=(tiny_dataset.test_features, tiny_dataset.test_labels),
        )
        assert len(history.validation_accuracy) == 3

    def test_packed_engine_matches_float(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=100, refine_epochs=2, seed=9),  # odd words
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert np.array_equal(
            model.predict(tiny_dataset.test_features),
            model.predict(tiny_dataset.test_features, engine="packed"),
        )

    def test_packed_engine_requires_binary_am(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=64, binary_am=False, seed=9),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        with pytest.raises(ValueError):
            model.predict(tiny_dataset.test_features, engine="packed")

    def test_unknown_engine_rejected(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=64, seed=9),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        with pytest.raises(ValueError):
            model.predict(tiny_dataset.test_features, engine="analog")
