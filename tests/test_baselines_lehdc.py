"""Unit tests for repro.baselines.lehdc."""

import numpy as np
import pytest

from repro.baselines import LeHDC, LeHDCConfig
from repro.baselines.lehdc import _softmax


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    model = LeHDC(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        LeHDCConfig(dimension=256, num_levels=16, epochs=8, batch_size=32, seed=4),
    )
    history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model, history


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 4))
        probs = _softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stability_with_large_logits(self):
        probs = _softmax(np.array([[1000.0, 999.0]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] > probs[0, 1]

    def test_uniform_for_equal_logits(self):
        probs = _softmax(np.zeros((1, 4)))
        assert np.allclose(probs, 0.25)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0},
            {"num_levels": 1},
            {"epochs": -1},
            {"batch_size": 0},
            {"learning_rate": 0},
            {"momentum": 1.0},
            {"weight_clip": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LeHDCConfig(**kwargs)

    def test_defaults(self):
        config = LeHDCConfig()
        assert config.momentum == 0.9
        assert config.weight_clip == 1.0


class TestLeHDC:
    def test_name(self):
        assert LeHDC(4, 2).name == "LeHDC"

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LeHDC(4, 2, LeHDCConfig(dimension=32, num_levels=4)).predict(
                np.zeros((1, 4))
            )

    def test_binary_am(self, fitted):
        model, _ = fitted
        assert set(np.unique(model.associative_memory)) <= {-1.0, 1.0}

    def test_latent_weights_clipped(self, fitted):
        model, _ = fitted
        assert np.all(np.abs(model._latent) <= model.config.weight_clip + 1e-12)

    def test_training_improves_accuracy(self, fitted):
        _, history = fitted
        assert history.final_train_accuracy >= history.initial_accuracy

    def test_better_than_chance(self, fitted, tiny_dataset):
        model, _ = fitted
        assert (
            model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
            > 1.5 / tiny_dataset.num_classes
        )

    def test_history_length(self, fitted):
        _, history = fitted
        assert history.epochs == 8

    def test_memory_report(self, tiny_dataset):
        model = LeHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            LeHDCConfig(dimension=128, num_levels=16),
        )
        report = model.memory_report()
        assert report.encoder_bits == (tiny_dataset.num_features + 16) * 128
        assert report.am_bits == tiny_dataset.num_classes * 128

    def test_label_out_of_range_raises(self, tiny_dataset):
        model = LeHDC(
            tiny_dataset.num_features,
            2,  # fewer classes than the dataset really has
            LeHDCConfig(dimension=64, num_levels=8, epochs=1),
        )
        with pytest.raises(ValueError):
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)

    def test_deterministic(self, tiny_dataset):
        def run():
            model = LeHDC(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                LeHDCConfig(
                    dimension=64, num_levels=8, epochs=2, batch_size=16, seed=23
                ),
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.predict(tiny_dataset.test_features)

        assert np.array_equal(run(), run())

    def test_validation_history(self, tiny_dataset):
        model = LeHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            LeHDCConfig(dimension=64, num_levels=8, epochs=2, seed=1),
        )
        history = model.fit(
            tiny_dataset.train_features,
            tiny_dataset.train_labels,
            validation=(tiny_dataset.test_features, tiny_dataset.test_labels),
        )
        assert len(history.validation_accuracy) == 2

    def test_gradient_training_beats_single_pass_on_hard_data(self, tiny_hard_dataset):
        """LeHDC's advertised advantage: trained AM beats a bundled AM."""
        from repro.baselines import BasicHDC, BasicHDCConfig

        lehdc = LeHDC(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            LeHDCConfig(dimension=256, num_levels=16, epochs=15, batch_size=32, seed=9),
        )
        basic = BasicHDC(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            BasicHDCConfig(dimension=256, refine_epochs=0, seed=9),
        )
        lehdc.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        basic.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        lehdc_acc = lehdc.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        )
        basic_acc = basic.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        )
        assert lehdc_acc >= basic_acc - 0.05
